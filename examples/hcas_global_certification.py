"""Global certification of an HCAS collision-avoidance monDEQ (Section 6.2).

Run with ``python examples/hcas_global_certification.py``.  The script

1. builds the HCAS policy table by solving the encounter MDP substrate,
2. trains a monDEQ on the (normalised) table,
3. certifies the monDEQ's advisories over a theta-slice of the input space
   with domain splitting, and
4. prints a coarse ASCII rendering of the certified decision regions — the
   textual analogue of Fig. 11.
"""

import numpy as np

from repro.datasets.hcas import ACTION_NAMES
from repro.experiments.global_robustness import policy_slice_table, run_hcas

_SYMBOLS = {"COC": ".", "WL": "l", "WR": "r", "SL": "L", "SR": "R"}


def main(scale: str = "smoke", theta: float = -90.0) -> None:
    print("ground-truth policy slice (theta = %g deg):" % theta)
    xs, ys, labels = policy_slice_table(scale, theta)
    for row in labels[::-1]:
        print("   " + "".join(_SYMBOLS[ACTION_NAMES[label]] for label in row))
    print("   legend: . COC   l WL   r WR   L SL   R SR")

    print("\ntraining the HCAS monDEQ and certifying the slice (this may take a minute)...")
    result = run_hcas(scale=scale, theta=theta)
    print(f"table accuracy of the monDEQ: {result.table_accuracy:.3f}")
    print(f"certified volume fraction of the slice: {result.coverage:.1%} "
          f"({result.certified_cells}/{result.total_cells} cells)")

    print("\ncertified cells (normalised feature coordinates):")
    for cell in result.cells[:10]:
        status = "certified" if cell["certified"] else "NOT certified"
        lower = np.round(cell["lower"][:2], 2).tolist()
        upper = np.round(cell["upper"][:2], 2).tolist()
        print(f"  [{lower}, {upper}] -> {cell['action']:<3} ({status}, depth {cell['depth']})")
    if len(result.cells) > 10:
        print(f"  ... and {len(result.cells) - 10} more cells")


if __name__ == "__main__":
    main()
