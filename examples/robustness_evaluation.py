"""Local robustness evaluation across verifiers (the Table 2 / 3 workload).

Run with ``python examples/robustness_evaluation.py``.  The script evaluates
one model of the zoo on a handful of test samples and compares Craft with
the Box, Kleene-Zonotope, global-Lipschitz and SemiSDP-surrogate baselines,
mirroring the structure of the paper's Tables 2 and 3 at laptop scale.
"""

from repro.core.config import CraftConfig
from repro.experiments.model_zoo import get_model
from repro.mondeq.attacks import PGDConfig
from repro.verify.baselines import (
    BoxVerifier,
    KleeneZonotopeVerifier,
    LipschitzVerifier,
    SemiSDPSurrogate,
)
from repro.verify.robustness import RobustnessVerifier, certify_sample


def main(scale: str = "smoke", epsilon: float = 0.05, samples: int = 4) -> None:
    print(f"training / loading the FCx40 model at scale {scale!r} ...")
    model, dataset = get_model("FCx40", scale)
    config = CraftConfig(slope_optimization="reduced")

    print("\n--- dataset-level evaluation (Table 2 row) ---")
    verifier = RobustnessVerifier(model, config, PGDConfig(steps=10, restarts=2))
    report = verifier.evaluate(dataset.x_test, dataset.y_test, epsilon, max_samples=samples)
    print(report.as_row())

    print("\n--- per-verifier comparison (Table 3 flavour) ---")
    verifiers = {
        "craft": lambda x, y: certify_sample(model, x, y, epsilon, config),
        "box (IBP)": lambda x, y: BoxVerifier(model).certify(x, y, epsilon),
        "kleene-zonotope": lambda x, y: KleeneZonotopeVerifier(model).certify(x, y, epsilon),
        "global Lipschitz": lambda x, y: LipschitzVerifier(model).certify(x, y, epsilon),
        "SemiSDP surrogate": lambda x, y: SemiSDPSurrogate(model).certify(x, y, epsilon),
    }
    header = f"{'sample':>6} {'label':>5} " + " ".join(f"{name:>18}" for name in verifiers)
    print(header)
    for index in range(samples):
        x, label = dataset.x_test[index], int(dataset.y_test[index])
        if model.predict(x) != label:
            print(f"{index:>6} {label:>5}   (misclassified, skipped)")
            continue
        cells = []
        for name, certify in verifiers.items():
            outcome = certify(x, label)
            cells.append(f"{'CERT' if outcome.certified else '----':>18}")
        print(f"{index:>6} {label:>5} " + " ".join(cells))


if __name__ == "__main__":
    main()
