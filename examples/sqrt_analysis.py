"""Abstract interpretation of the Householder square-root program (Section 6.5).

Run with ``python examples/sqrt_analysis.py``.  Reproduces Table 5 / 6 and a
textual version of Fig. 16: the contraction-based analysis (Craft) computes
tight fixpoint-set abstractions for both input intervals, while standard
Kleene iteration is loose on [16, 20] and diverges on [16, 25].
"""

import numpy as np

from repro.numerics.householder import (
    analyze_root_craft,
    analyze_root_kleene,
    exact_root_interval,
    root,
)


def describe(interval):
    low, high = interval
    if not np.isfinite(high):
        return "[0, inf)  (diverged)"
    return f"[{low:.4f}, {high:.4f}]"


def main() -> None:
    print("concrete program:   root(17.0) =", f"{root(17.0):.6f}",
          " (1/sqrt(17) =", f"{1 / np.sqrt(17.0):.6f})")

    for x_low, x_high in ((16.0, 20.0), (16.0, 25.0)):
        print(f"\n=== input interval X = [{x_low:g}, {x_high:g}] ===")
        exact = exact_root_interval(x_low, x_high)
        craft = analyze_root_craft(x_low, x_high)
        kleene = analyze_root_kleene(x_low, x_high)
        print(f"exact fixpoint set (sqrt X):      {describe(exact)}")
        print(f"Craft   ({craft.iterations:>3} iterations):        {describe(craft.root_interval)}")
        if craft.reachable_root_interval:
            print(f"Craft reachable values (App. A):  {describe(craft.reachable_root_interval)}")
        print(f"Kleene  ({kleene.iterations:>3} iterations):        {describe(kleene.root_interval)}"
              f"{'' if kleene.converged else '   <- diverged'}")

        print("first iterations of the abstract analyses (sqrt bounds):")
        for index, (craft_bounds, kleene_bounds) in enumerate(
            zip(craft.s_trace[:6], kleene.s_trace[:6])
        ):
            craft_root = (1 / craft_bounds[1], 1 / craft_bounds[0]) if craft_bounds[0] > 0 else (0, np.inf)
            kleene_root = (1 / kleene_bounds[1], 1 / kleene_bounds[0]) if kleene_bounds[0] > 0 else (0, np.inf)
            print(f"  step {index}: craft {describe(craft_root)}   kleene {describe(kleene_root)}")


if __name__ == "__main__":
    main()
