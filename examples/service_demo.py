"""The certification service end to end: cluster, frontend, streamed verdicts.

Run with ``python examples/service_demo.py``.  The script

1. stands up a local two-worker :class:`~repro.service.cluster.ClusterScheduler`
   — the same TCP transport a multi-machine deployment uses (see
   ``docs/service.md`` for attaching remote workers with
   ``run_cluster_worker``),
2. opens an asyncio :class:`~repro.service.frontend.CertificationFrontend`
   over it with a shared on-disk verdict cache,
3. drives a few seconds of jittered repeat traffic — overlapping region
   batches submitted at random intervals, verdicts streamed back
   per-cell as they resolve, and
4. prints the admission accounting: served/cancelled/expired
   conservation, engine batches after coalescing, and the cache hit rate
   climbing as the traffic repeats itself.

Optionally flip ``INJECT_FAULTS`` to watch a worker get killed
mid-traffic and the cluster recover without losing a verdict.
"""

import asyncio
import tempfile
import time

import numpy as np

from repro import CraftConfig, MonDEQ
from repro.core.config import ServiceConfig
from repro.service import CertificationFrontend, ClusterScheduler, FaultSpec

#: Set True to kill worker 0 after its first claim — the soak battery's
#: scripted fault — and watch the verdicts survive.
INJECT_FAULTS = False

TRAFFIC_SECONDS = 6.0
EPSILON = 0.03
POOL = 24


async def drive(frontend, fingerprint, xs, labels):
    rng = np.random.default_rng(99)
    handles = []
    deadline = time.monotonic() + TRAFFIC_SECONDS
    print(f"\n=== 3. {TRAFFIC_SECONDS:.0f}s of jittered repeat traffic ===")
    while time.monotonic() < deadline:
        cells = int(rng.integers(2, 6))
        rows = rng.choice(POOL, size=cells, replace=False)
        handle = await frontend.submit(fingerprint, xs[rows], labels[rows], EPSILON)
        handles.append(handle)
        await asyncio.sleep(float(rng.uniform(0.05, 0.25)))

    certified = 0
    for handle in handles:
        async for event in handle.events():
            certified += event.certified
    print(f"{len(handles)} requests streamed back, {certified} cells certified")
    return handles


def main() -> None:
    print("=== 1. model and region pool ===")
    model = MonDEQ.random(input_dim=5, latent_dim=6, output_dim=3,
                          monotonicity=8.0, seed=3)
    rng = np.random.default_rng(2023)
    xs = rng.uniform(0.2, 0.8, size=(POOL, 5))
    labels = np.array([int(p) for p in model.predict_batch(xs)])
    config = CraftConfig(slope_optimization="none")
    service = ServiceConfig(
        coalesce_window_seconds=0.02, max_batch_cells=16,
        shard_timeout_seconds=1.5, retry_backoff_seconds=0.05,
        retry_backoff_factor=1.5, heartbeat_seconds=0.1,
        # The cluster scheduler is concurrent-caller-safe: let the
        # frontend run two engine passes against it at once.
        max_concurrent_batches=2,
    )
    faults = (
        FaultSpec(seed=7, scripted=((0, 0, "kill"),)) if INJECT_FAULTS else None
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        print("\n=== 2. two-worker cluster over the TCP transport ===")
        with ClusterScheduler(
            model, config, num_workers=2, batch_size=4, cache_dir=cache_dir,
            service=service, faults=faults, timeout_seconds=300.0,
        ) as scheduler:
            print(f"cluster listening on {scheduler.address}")
            frontend = CertificationFrontend(service=service)
            fingerprint = frontend.register_model(
                model, config, backend=scheduler, cache_dir=cache_dir,
            )
            print(f"registered model {fingerprint}")

            async def session():
                await drive(frontend, fingerprint, xs, labels)
                await frontend.close()
                return frontend.stats

            stats = asyncio.run(session())
            cluster_stats = scheduler.cluster_stats

        print("\n=== 4. accounting ===")
        print(f"frontend: {stats.as_row()}")
        print(f"cluster:  {cluster_stats.as_row()}")
        assert stats.served == stats.submitted, "conservation: nothing lost"
        print(f"cache hit rate over repeat traffic: {stats.hit_rate:.0%}")
        if INJECT_FAULTS:
            print(f"worker respawns after injected kill: {cluster_stats.respawns}")


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
