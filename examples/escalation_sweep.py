"""Per-query domain escalation: one sweep spanning the precision ladder.

Run with ``python examples/escalation_sweep.py``.  The script

1. trains a small monDEQ on a synthetic Gaussian-mixture task,
2. certifies a sweep with the pure CH-Zonotope batched engine (every
   query pays full precision),
3. re-runs the same sweep as a Box → Zonotope → CH-Zonotope **waterfall**
   (``CraftConfig.escalation()``): queries start in the cheapest domain
   and only the unresolved residue climbs — certified counts match, the
   expensive stack shrinks to the hard queries,
4. prints the per-stage accounting (attempted / resolved / escalated and
   the stage-aware batch sizes), and
5. replays the sweep from the on-disk fixpoint cache: cached verdicts
   carry their resolving stage, so nothing re-climbs the ladder.
"""

import tempfile
import time

import numpy as np

from repro import CraftConfig, MonDEQ
from repro.datasets.gaussian import make_gaussian_mixture
from repro.engine import BatchCertificationScheduler
from repro.mondeq.training import TrainingConfig, train


def main() -> None:
    print("=== 1. data and model ===")
    xs, ys = make_gaussian_mixture(num_samples=220, input_dim=5, num_classes=3, seed=7)
    model = MonDEQ.random(input_dim=5, latent_dim=8, output_dim=3, monotonicity=8.0, seed=5)
    train(model, xs[:150], ys[:150],
          TrainingConfig(epochs=15, batch_size=32, learning_rate=5e-3, solver_tol=1e-6),
          seed=0)
    eval_xs, eval_ys = xs[150:198], ys[150:198].astype(int)
    epsilon = 0.05
    print(f"certifying {len(eval_xs)} regions at eps={epsilon}")

    print("\n=== 2. pure CH-Zonotope sweep (every query pays full precision) ===")
    pure_config = CraftConfig(slope_optimization="none")
    start = time.perf_counter()
    pure = BatchCertificationScheduler(model, pure_config).certify(eval_xs, eval_ys, epsilon)
    pure_time = time.perf_counter() - start
    print(f"{pure.num_certified} certified in {pure_time:.2f}s")

    print("\n=== 3. escalation waterfall (cheap domains absorb the easy queries) ===")
    ladder_config = CraftConfig.escalation(slope_optimization="none")
    scheduler = BatchCertificationScheduler(model, ladder_config)
    start = time.perf_counter()
    ladder = scheduler.certify(eval_xs, eval_ys, epsilon)
    ladder_time = time.perf_counter() - start
    flips = sum(
        p.certified and not l.certified for p, l in zip(pure.results, ladder.results)
    )
    chz_row = next(row for row in ladder.stages if row["domain"] == "chzonotope")
    print(f"{ladder.num_certified} certified in {ladder_time:.2f}s — "
          f"certified verdict flips: {flips}")
    print(f"resolving stages: {ladder.stage_counts} — the CH-Zonotope stack "
          f"shrank from {len(pure.results)} queries to the "
          f"{chz_row['attempted']}-query hard residue (on HCAS-scale sweeps "
          f"that is the >2x win benchmarks/bench_escalation.py asserts)")

    print("\n=== 4. per-stage accounting ===")
    print(f"stage-aware batch sizes: {scheduler.stage_batch_sizes}")
    for row in ladder.stages:
        print(f"  {row['domain']:>11}: attempted={row['attempted']:>3} "
              f"resolved={row['resolved']:>3} certified={row['certified']:>3} "
              f"escalated={row['escalated']:>3} ({row['time']:.3f}s)")

    print("\n=== 5. cached verdicts replay at their resolving stage ===")
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = BatchCertificationScheduler(
            model, ladder_config, cache_dir=cache_dir
        ).certify(eval_xs, eval_ys, epsilon)
        warm = BatchCertificationScheduler(
            model, ladder_config, cache_dir=cache_dir
        ).certify(eval_xs, eval_ys, epsilon)
        assert warm.cache_hits == len(eval_xs) and warm.num_batches == 0
        print(f"cold: {cold.num_batches} batches; "
              f"warm: {warm.cache_hits} cache hits, {warm.num_batches} batches "
              f"(no ladder re-climb), stages preserved: "
              f"{warm.stage_counts == cold.stage_counts}")


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
