"""Quickstart: train a small monDEQ and certify its robustness with Craft.

Run with ``python examples/quickstart.py``.  The script

1. generates a synthetic MNIST-like dataset,
2. trains a small fully-connected monDEQ by implicit differentiation,
3. attacks a test sample with PGD (the empirical robustness check), and
4. certifies an l-infinity ball around it with the Craft verifier
   (CH-Zonotope domain, PR containment phase, FB tightening phase).
"""

import numpy as np

from repro import CraftConfig, MonDEQ
from repro.datasets.synthetic import make_mnist_like
from repro.mondeq.attacks import PGDConfig, pgd_attack
from repro.mondeq.training import TrainingConfig, train
from repro.nn.metrics import accuracy
from repro.verify.robustness import certify_sample


def main() -> None:
    print("=== 1. data ===")
    data = make_mnist_like(size=10, num_classes=5, train_per_class=40, test_per_class=8, seed=0)
    print(f"dataset: {data.name}, input dim {data.input_dim}, {data.num_classes} classes")

    print("\n=== 2. training ===")
    model = MonDEQ.random(
        input_dim=data.input_dim, latent_dim=20, output_dim=data.num_classes,
        monotonicity=20.0, seed=0, name="FCx20",
    )
    history = train(
        model, data.x_train, data.y_train,
        TrainingConfig(epochs=30, batch_size=32, learning_rate=5e-3, solver_tol=1e-5),
        seed=0,
    )
    test_accuracy = accuracy(model.predict_batch(data.x_test), data.y_test)
    print(f"final train accuracy {history.train_accuracy[-1]:.3f}, test accuracy {test_accuracy:.3f}")

    print("\n=== 3. PGD attack (empirical robustness) ===")
    epsilon = 0.05
    x, label = data.x_test[0], int(data.y_test[0])
    attack = pgd_attack(model, x, label, epsilon, PGDConfig(steps=20, restarts=2), seed=0)
    print(f"sample 0 (label {label}): PGD {'found' if attack.success else 'found no'} "
          f"adversarial example at eps={epsilon}")

    print("\n=== 4. Craft certification ===")
    config = CraftConfig(slope_optimization="reduced")
    result = certify_sample(model, x, label, epsilon, config)
    print(result.summary())
    if result.certified:
        print(f"certified: every input within ||.||_inf <= {epsilon} of the sample "
              f"is classified {label} (logit margin {result.margin:.4f})")
    else:
        print("not certified at this radius; try a smaller epsilon")

    tiny = certify_sample(model, x, label, 0.01, config)
    print(f"at eps=0.01: {tiny.summary()}")
    assert not (attack.success and result.certified), "soundness violated"


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
