"""Sharded certification: fan a sweep out to a pool of worker processes.

Run with ``python examples/sharded_sweep.py``.  The script

1. trains a small monDEQ on a synthetic Gaussian-mixture task,
2. certifies 48 l-infinity balls with the single-process batched engine,
3. certifies the same balls through the multi-process ``ShardedScheduler``
   (weights shipped to each worker once, shards streamed back as they
   finish) and checks the verdicts agree,
4. shows cache-aware batch sizing: the shard width is derived from the
   phase-two working-set estimate so one shard fits the last-level cache,
   and
5. re-runs the sweep against the shared on-disk fixpoint cache, which all
   workers write concurrently (atomic per-entry publication — no locks).
"""

import os
import tempfile
import time

import numpy as np

from repro import CraftConfig, MonDEQ, ShardedScheduler
from repro.datasets.gaussian import make_gaussian_mixture
from repro.engine import BatchCertificationScheduler
from repro.engine.working_set import auto_batch_size, detect_llc_bytes, phase2_working_set_bytes
from repro.mondeq.training import TrainingConfig, train


def main() -> None:
    print("=== 1. data and model ===")
    xs, ys = make_gaussian_mixture(num_samples=220, input_dim=5, num_classes=3, seed=7)
    model = MonDEQ.random(input_dim=5, latent_dim=8, output_dim=3, monotonicity=8.0, seed=5)
    train(model, xs[:150], ys[:150],
          TrainingConfig(epochs=15, batch_size=32, learning_rate=5e-3, solver_tol=1e-6),
          seed=0)
    eval_xs, eval_ys = xs[150:198], ys[150:198].astype(int)
    epsilon = 0.05
    # Periodic phase-two consolidation bounds the error-term growth, which
    # both tightens the working-set estimate and keeps workers compute-bound.
    config = CraftConfig(slope_optimization="none", tighten_consolidate_every=5)
    print(f"certifying {len(eval_xs)} regions at eps={epsilon}")

    print("\n=== 2. single-process batched engine ===")
    start = time.perf_counter()
    batched = BatchCertificationScheduler(model, config).certify(eval_xs, eval_ys, epsilon)
    batched_time = time.perf_counter() - start
    print(f"{batched.num_certified} certified in {batched_time:.2f}s — {batched.as_row()}")

    print("\n=== 3. sharded scheduler ===")
    workers = min(4, os.cpu_count() or 1)
    with ShardedScheduler(model, config, num_workers=workers) as scheduler:
        start = time.perf_counter()
        sharded = scheduler.certify(eval_xs, eval_ys, epsilon)
        sharded_time = time.perf_counter() - start
    agree = all(b.outcome == s.outcome for b, s in zip(batched.results, sharded.results))
    print(f"{sharded.num_certified} certified in {sharded_time:.2f}s over "
          f"{sharded.num_workers} workers / {sharded.num_batches} shards — "
          f"verdicts agree: {agree}")

    print("\n=== 4. cache-aware batch sizing ===")
    batch = auto_batch_size(model, config)
    print(f"last-level cache: {detect_llc_bytes() / 2**20:.0f} MiB")
    print(f"estimated phase-two working set at batch {batch}: "
          f"{phase2_working_set_bytes(model, config, batch) / 2**20:.1f} MiB")
    print(f"chosen shard width: {batch} (override via CraftConfig.engine_batch_size)")

    print("\n=== 5. shared fixpoint cache across workers ===")
    with tempfile.TemporaryDirectory() as cache_dir:
        with ShardedScheduler(
            model, config, num_workers=workers, cache_dir=cache_dir
        ) as scheduler:
            cold = scheduler.certify(eval_xs, eval_ys, epsilon)
            warm = scheduler.certify(eval_xs, eval_ys, epsilon)
        print(f"cold run: {cold.as_row()}")
        print(f"warm run: {warm.as_row()}")
        assert warm.cache_hits == len(eval_xs)


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
