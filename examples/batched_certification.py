"""Batched certification: sweep many robustness queries in vectorised passes.

Run with ``python examples/batched_certification.py``.  The script

1. trains a small monDEQ on a synthetic Gaussian-mixture task,
2. certifies 32 l-infinity balls with the sequential reference loop,
3. certifies the same balls through the batched engine (one vectorised
   pass, per-sample early exit) and checks the verdicts agree, and
4. re-runs the sweep through the scheduler's on-disk fixpoint cache to
   show that unchanged (weights, region, epsilon) queries are free.
"""

import tempfile
import time

import numpy as np

from repro import BatchedCraft, CraftConfig, MonDEQ
from repro.datasets.gaussian import make_gaussian_mixture
from repro.engine.scheduler import BatchCertificationScheduler
from repro.mondeq.training import TrainingConfig, train
from repro.verify.robustness import certify_local_robustness


def main() -> None:
    print("=== 1. data and model ===")
    xs, ys = make_gaussian_mixture(num_samples=200, input_dim=5, num_classes=3, seed=7)
    model = MonDEQ.random(input_dim=5, latent_dim=8, output_dim=3, monotonicity=8.0, seed=5)
    train(model, xs[:150], ys[:150],
          TrainingConfig(epochs=15, batch_size=32, learning_rate=5e-3, solver_tol=1e-6),
          seed=0)
    eval_xs, eval_ys = xs[150:182], ys[150:182].astype(int)
    epsilon = 0.05
    config = CraftConfig(slope_optimization="none")
    print(f"certifying {len(eval_xs)} regions at eps={epsilon}")

    print("\n=== 2. sequential reference loop ===")
    start = time.perf_counter()
    sequential = certify_local_robustness(
        model, eval_xs, eval_ys, epsilon, config, engine="sequential"
    )
    sequential_time = time.perf_counter() - start
    print(f"{sum(r.certified for r in sequential)} certified in {sequential_time:.2f}s")

    print("\n=== 3. batched engine ===")
    craft = BatchedCraft(model, config)
    start = time.perf_counter()
    batched = craft.certify(eval_xs, eval_ys, epsilon)
    batched_time = time.perf_counter() - start
    agree = all(s.outcome == b.outcome for s, b in zip(sequential, batched))
    print(f"{sum(r.certified for r in batched)} certified in {batched_time:.2f}s "
          f"({sequential_time / batched_time:.1f}x) — verdicts agree: {agree}")

    print("\n=== 4. fixpoint cache ===")
    with tempfile.TemporaryDirectory() as cache_dir:
        scheduler = BatchCertificationScheduler(model, config, batch_size=16, cache_dir=cache_dir)
        cold = scheduler.certify(eval_xs, eval_ys, epsilon)
        warm = scheduler.certify(eval_xs, eval_ys, epsilon)
        print(f"cold run: {cold.as_row()}")
        print(f"warm run: {warm.as_row()}")
        assert warm.cache_hits == len(eval_xs)


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
