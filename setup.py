"""Setuptools shim for environments without PEP-517 build isolation/wheel.

The canonical metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` on offline
machines whose setuptools predates full pyproject support.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Abstract Interpretation of Fixpoint Iterators with "
        "Applications to Neural Networks' (PLDI 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
)
