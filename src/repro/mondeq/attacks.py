"""Projected gradient descent (PGD) attacks on monDEQs (Appendix D.3).

The paper reports ``#Bound`` — the number of test samples empirically
robust to a strong PGD attack — as an upper bound on the certified
accuracy.  This module implements the attack with gradients taken *through
the equilibrium* (implicit function theorem, see
:mod:`repro.mondeq.training`), margin loss (Gowal et al. 2019), random
restarts and an optional targeted sweep over all classes, which is the
setting of Appendix D.3 (modulo the output-diversification warm start,
replaced here by uniformly random restarts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.mondeq.model import MonDEQ
from repro.mondeq.training import input_gradient
from repro.nn.losses import margin_loss, targeted_margin_loss
from repro.utils.rng import SeedLike, as_generator


@dataclass
class PGDConfig:
    """Attack hyper-parameters (defaults scaled down from Appendix D.3)."""

    steps: int = 20
    restarts: int = 3
    step_size_factor: float = 0.25
    targeted: bool = False
    clip_min: Optional[float] = 0.0
    clip_max: Optional[float] = 1.0
    solver: str = "pr"
    solver_alpha: Optional[float] = None
    solver_tol: float = 1e-6
    solver_max_iterations: int = 300


@dataclass
class AttackResult:
    """Outcome of attacking a single sample."""

    success: bool
    adversarial_input: Optional[np.ndarray]
    adversarial_label: Optional[int]
    best_margin: float


def _project(x_adv: np.ndarray, x: np.ndarray, epsilon: float, config: PGDConfig) -> np.ndarray:
    projected = np.clip(x_adv, x - epsilon, x + epsilon)
    if config.clip_min is not None:
        projected = np.maximum(projected, config.clip_min)
    if config.clip_max is not None:
        projected = np.minimum(projected, config.clip_max)
    return projected


def _attack_run(
    model: MonDEQ,
    x: np.ndarray,
    label: int,
    epsilon: float,
    config: PGDConfig,
    rng: np.random.Generator,
    target: Optional[int] = None,
) -> Tuple[bool, Optional[np.ndarray], Optional[int], float]:
    step_size = config.step_size_factor * epsilon
    x_adv = _project(x + rng.uniform(-epsilon, epsilon, size=x.shape), x, epsilon, config)
    best_margin = -np.inf

    for _ in range(config.steps):
        logits = model.forward(
            x_adv, solver=config.solver, alpha=config.solver_alpha,
            tol=config.solver_tol, max_iterations=config.solver_max_iterations,
        )
        if target is None:
            loss_value, logit_gradient = margin_loss(logits[None, :], np.array([label]))
        else:
            loss_value, logit_gradient = targeted_margin_loss(
                logits[None, :], np.array([label]), np.array([target])
            )
        best_margin = max(best_margin, loss_value)
        prediction = int(np.argmax(logits))
        if prediction != label:
            return True, x_adv, prediction, best_margin
        gradient = input_gradient(
            model, x_adv, logit_gradient[0], solver=config.solver,
            alpha=config.solver_alpha, tol=config.solver_tol,
            max_iterations=config.solver_max_iterations,
        )
        x_adv = _project(x_adv + step_size * np.sign(gradient), x, epsilon, config)

    logits = model.forward(
        x_adv, solver=config.solver, alpha=config.solver_alpha,
        tol=config.solver_tol, max_iterations=config.solver_max_iterations,
    )
    prediction = int(np.argmax(logits))
    if prediction != label:
        return True, x_adv, prediction, best_margin
    return False, None, None, best_margin


def pgd_attack(
    model: MonDEQ,
    x: np.ndarray,
    label: int,
    epsilon: float,
    config: Optional[PGDConfig] = None,
    seed: SeedLike = 0,
) -> AttackResult:
    """Attack one sample; ``success=True`` means an adversarial example was found."""
    config = config if config is not None else PGDConfig()
    rng = as_generator(seed)
    x = np.asarray(x, dtype=float).reshape(-1)
    best_margin = -np.inf

    targets = [None]
    if config.targeted:
        targets = [None] + [cls for cls in range(model.output_dim) if cls != label]

    for target in targets:
        for _ in range(config.restarts):
            success, adversarial, adv_label, margin = _attack_run(
                model, x, label, epsilon, config, rng, target=target
            )
            best_margin = max(best_margin, margin)
            if success:
                return AttackResult(True, adversarial, adv_label, best_margin)
    return AttackResult(False, None, None, best_margin)


def empirical_robust_accuracy(
    model: MonDEQ,
    xs: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
    config: Optional[PGDConfig] = None,
    seed: SeedLike = 0,
) -> Tuple[float, np.ndarray]:
    """Fraction of correctly-classified samples surviving the PGD attack.

    Returns the robust accuracy together with a per-sample boolean array
    (``True`` = correctly classified and no adversarial example found) — the
    ``#Bound`` column of Tables 2 and 3.
    """
    config = config if config is not None else PGDConfig()
    rng = as_generator(seed)
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    labels = np.asarray(labels, dtype=int).reshape(-1)
    robust = np.zeros(xs.shape[0], dtype=bool)
    for index, (x, label) in enumerate(zip(xs, labels)):
        if model.predict(x, solver=config.solver, tol=config.solver_tol,
                         max_iterations=config.solver_max_iterations) != label:
            continue
        result = pgd_attack(model, x, int(label), epsilon, config, seed=rng)
        robust[index] = not result.success
    if xs.shape[0] == 0:
        return 0.0, robust
    return float(np.mean(robust)), robust
