"""Concrete operator-splitting fixpoint solvers for monDEQs (Section 5.1).

Iterating ``f(x, z) = ReLU(W z + U x + b)`` directly may diverge (the
running example of the paper does); instead the unique fixpoint is found by
operator splitting:

* **Forward–Backward (FB) splitting** (Eq. 8)::

      s_{n+1} = ReLU((1 - alpha) s_n + alpha (W s_n + U x + b))

  which converges for ``0 < alpha < 2 m / ||I - W||_2^2``.

* **Peaceman–Rachford (PR) splitting** (Eq. 9), which maintains an auxiliary
  state ``u`` and converges for any ``alpha > 0``.

Both are exposed as single-step functions (used by training, attacks and
the abstract transformers) and as a run-to-convergence driver
:func:`solve_fixpoint`.

Both drivers optionally Anderson-accelerate the damped iteration
(``accelerate="anderson"``): a least-squares mixing of the last
``anderson_window`` iterates proposes an extrapolated candidate, and a
residual safeguard accepts it only when its *measured* residual beats the
plain damped step by ``anderson_safeguard_ratio`` — otherwise the solver
falls back to the plain step and restarts the window.  Acceleration only
changes how fast the iteration reaches the fixpoint, never which fixpoint
it converges to (monotone operators have a unique one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.mondeq.model import MonDEQ
from repro.utils.linalg import anderson_mixing, anderson_mixing_batch
from repro.utils.validation import ensure_vector


@dataclass
class SolverResult:
    """Result of running a fixpoint solver to convergence.

    Attributes
    ----------
    z:
        The (approximate) fixpoint ``z*``.
    u:
        The auxiliary Peaceman–Rachford state at convergence (equal to the
        pre-activation); for FB splitting it simply mirrors ``z``.
    iterations:
        Number of solver iterations performed.
    converged:
        Whether the residual dropped below the tolerance.
    residuals:
        The residual trace ``||z_n - z_{n-1}||`` per iteration (for
        accepted Anderson steps, the measured residual of the mixed
        iterate).
    accelerated_steps:
        Number of iterations that accepted an Anderson-mixed candidate
        (0 when acceleration is off).
    safeguard_fallbacks:
        Number of iterations where mixing was attempted but the safeguard
        fell back to the plain damped step (ill-conditioned window or
        residual regression).
    evaluations:
        Total applications of the splitting step; accelerated iterations
        pay one extra evaluation to measure the mixed residual, so this is
        the honest work counter next to ``iterations``.
    """

    z: np.ndarray
    u: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float]
    accelerated_steps: int = 0
    safeguard_fallbacks: int = 0
    evaluations: int = 0


def default_alpha(model: MonDEQ, method: str) -> float:
    """A safe default damping parameter for the given method.

    FB uses half of the convergence bound ``2m / ||I - W||^2``; PR converges
    for any positive alpha, for which the paper's tables use values around
    ``0.05 – 0.1``.
    """
    if method == "fb":
        return 0.5 * model.fb_alpha_bound()
    if method == "pr":
        return 0.1
    raise ConfigurationError(f"unknown solver method {method!r}")


def fb_step(model: MonDEQ, x: np.ndarray, z: np.ndarray, alpha: float) -> np.ndarray:
    """One Forward–Backward iteration ``g^FB_alpha(x, z)`` (Eq. 8)."""
    pre = (1.0 - alpha) * z + alpha * (model.w_matrix @ z + model.u_weight @ x + model.bias)
    return np.maximum(pre, 0.0)


def pr_matrices(model: MonDEQ, alpha: float) -> np.ndarray:
    """The resolvent ``(I + alpha (I - W))^{-1}`` used by PR splitting."""
    latent = model.latent_dim
    return np.linalg.inv(np.eye(latent) + alpha * (np.eye(latent) - model.w_matrix))


def pr_step(
    model: MonDEQ,
    x: np.ndarray,
    z: np.ndarray,
    u: np.ndarray,
    alpha: float,
    resolvent: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One Peaceman–Rachford iteration ``g^PR_alpha(x, [z; u])`` (Eq. 9)."""
    if resolvent is None:
        resolvent = pr_matrices(model, alpha)
    u_half = 2.0 * z - u
    z_half = resolvent @ (u_half + alpha * (model.u_weight @ x + model.bias))
    u_new = 2.0 * z_half - u_half
    z_new = np.maximum(u_new, 0.0)
    return z_new, u_new


def _validate_solver_budget(method: str, max_iterations: int) -> None:
    """Reject non-positive iteration budgets up front.

    A zero budget used to fall through to the failure branch with an empty
    residual trace and crash on ``residuals[-1]``; it is a configuration
    error, not a convergence failure.
    """
    if max_iterations < 1:
        raise ConfigurationError(
            f"max_iterations must be >= 1 for {method!r} splitting, got {max_iterations}"
        )


def _validate_acceleration(
    accelerate: Optional[str], anderson_window: int, anderson_safeguard_ratio: float
) -> bool:
    if accelerate not in (None, "anderson"):
        raise ConfigurationError(
            f"unknown acceleration mode {accelerate!r}; choose None or 'anderson'"
        )
    if accelerate is None:
        return False
    if anderson_window < 2:
        raise ConfigurationError(
            f"anderson_window must be >= 2, got {anderson_window}"
        )
    if anderson_safeguard_ratio <= 0:
        raise ConfigurationError(
            f"anderson_safeguard_ratio must be positive, got {anderson_safeguard_ratio}"
        )
    return True


def solve_fixpoint(
    model: MonDEQ,
    x: np.ndarray,
    method: str = "pr",
    alpha: Optional[float] = None,
    tol: float = 1e-9,
    max_iterations: int = 2000,
    raise_on_failure: bool = False,
    accelerate: Optional[str] = None,
    anderson_window: int = 5,
    anderson_safeguard_ratio: float = 1.0,
) -> SolverResult:
    """Iterate the chosen operator-splitting method until convergence.

    Parameters
    ----------
    model, x:
        The monDEQ and a single input vector.
    method:
        ``"pr"`` (default) or ``"fb"``.
    alpha:
        Damping parameter; ``None`` selects :func:`default_alpha`.
    tol:
        Convergence threshold on ``||z_n - z_{n-1}||``.
    max_iterations:
        Iteration budget (must be at least 1).
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result when the budget is exhausted.
    accelerate:
        ``"anderson"`` enables safeguarded Anderson acceleration over the
        splitting iterates (``None`` keeps the plain damped iteration —
        bit-identical to the historical behaviour).
    anderson_window:
        History-window length ``m`` of the least-squares mixing.
    anderson_safeguard_ratio:
        Accept a mixed candidate only if its measured residual is at most
        this multiple of the plain step's residual; on rejection the
        window restarts from the current plain pair.
    """
    x = ensure_vector(x, "x", dim=model.input_dim)
    if method not in ("pr", "fb"):
        raise ConfigurationError(f"unknown solver method {method!r}")
    _validate_solver_budget(method, max_iterations)
    accelerated = _validate_acceleration(accelerate, anderson_window, anderson_safeguard_ratio)
    if alpha is None:
        alpha = default_alpha(model, method)
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")

    latent = model.latent_dim
    z = np.zeros(latent)
    u = np.zeros(latent)
    residuals: List[float] = []
    resolvent = pr_matrices(model, alpha) if method == "pr" else None

    def step(z_in: np.ndarray, u_in: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if method == "fb":
            z_out = fb_step(model, x, z_in, alpha)
            return z_out, z_out
        return pr_step(model, x, z_in, u_in, alpha, resolvent=resolvent)

    # The mixing state is the full splitting state: [z] for FB, [z; u]
    # for PR (the auxiliary variable is part of the iteration map).
    def pack(z_in: np.ndarray, u_in: np.ndarray) -> np.ndarray:
        return z_in if method == "fb" else np.concatenate([z_in, u_in])

    def unpack(s: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return (s, s) if method == "fb" else (s[:latent], s[latent:])

    history_s: List[np.ndarray] = []
    history_g: List[np.ndarray] = []
    accelerated_steps = 0
    safeguard_fallbacks = 0
    evaluations = 0

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        z_new, u_new = step(z, u)
        evaluations += 1
        residual = float(np.linalg.norm(z_new - z))
        if accelerated:
            history_s.append(pack(z, u))
            history_g.append(pack(z_new, u_new))
            del history_s[:-anderson_window], history_g[:-anderson_window]
            if len(history_s) >= 2:
                mixed, ok = anderson_mixing(np.stack(history_s), np.stack(history_g))
                accepted = False
                if ok:
                    z_mix, u_mix = unpack(mixed)
                    g_z, g_u = step(z_mix, u_mix)
                    evaluations += 1
                    mixed_residual = float(np.linalg.norm(g_z - z_mix))
                    if (
                        np.isfinite(mixed_residual)
                        and mixed_residual <= anderson_safeguard_ratio * residual
                    ):
                        z_new, u_new = g_z, g_u
                        residual = mixed_residual
                        accelerated_steps += 1
                        accepted = True
                        history_s.append(mixed)
                        history_g.append(pack(g_z, g_u))
                        del history_s[:-anderson_window], history_g[:-anderson_window]
                if not accepted:
                    # Safeguard trip: keep the plain step and restart the
                    # window from the current (iterate, image) pair.
                    safeguard_fallbacks += 1
                    del history_s[:-1], history_g[:-1]
        residuals.append(residual)
        z, u = z_new, u_new
        if residual < tol:
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"{method.upper()} splitting did not converge within {max_iterations} iterations "
            f"(last residual {residuals[-1]:.3e})"
        )
    return SolverResult(
        z=z,
        u=u,
        iterations=iterations,
        converged=converged,
        residuals=residuals,
        accelerated_steps=accelerated_steps,
        safeguard_fallbacks=safeguard_fallbacks,
        evaluations=evaluations,
    )


@dataclass
class BatchSolverResult:
    """Result of running a fixpoint solver over a batch of inputs.

    Attributes
    ----------
    z, u:
        Stacked fixpoints / auxiliary states of shape ``(batch, latent)``;
        each row is frozen at the iteration its own residual converged.
    iterations:
        Per-sample iteration counts.
    converged:
        Per-sample convergence flags.
    accelerated_steps, safeguard_fallbacks:
        Per-sample counts of accepted Anderson steps and safeguard
        fallbacks (all zeros when acceleration is off).
    """

    z: np.ndarray
    u: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    accelerated_steps: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))
    safeguard_fallbacks: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))


def solve_fixpoint_batch(
    model: MonDEQ,
    xs: np.ndarray,
    method: str = "pr",
    alpha: Optional[float] = None,
    tol: float = 1e-9,
    max_iterations: int = 2000,
    accelerate: Optional[str] = None,
    anderson_window: int = 5,
    anderson_safeguard_ratio: float = 1.0,
) -> BatchSolverResult:
    """Solve the fixpoints of many inputs in one vectorised iteration.

    Semantically equivalent to calling :func:`solve_fixpoint` per row of
    ``xs`` (including the Anderson options, whose per-sample arithmetic is
    shared through :func:`repro.utils.linalg.anderson_mixing_batch`); the
    whole batch advances through shared matrix products and each sample
    drops out of the active set (its state frozen) as soon as its own
    residual falls below ``tol``, so early converging samples stop paying
    for slow ones.
    """
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    if xs.shape[1] != model.input_dim:
        raise ConfigurationError(
            f"inputs must have shape (batch, {model.input_dim}), got {xs.shape}"
        )
    if method not in ("pr", "fb"):
        raise ConfigurationError(f"unknown solver method {method!r}")
    _validate_solver_budget(method, max_iterations)
    accelerated = _validate_acceleration(accelerate, anderson_window, anderson_safeguard_ratio)
    if alpha is None:
        alpha = default_alpha(model, method)
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")

    batch = xs.shape[0]
    latent = model.latent_dim
    z = np.zeros((batch, latent))
    u = np.zeros((batch, latent))
    iterations = np.zeros(batch, dtype=int)
    converged = np.zeros(batch, dtype=bool)
    accelerated_steps = np.zeros(batch, dtype=int)
    safeguard_fallbacks = np.zeros(batch, dtype=int)
    injection = xs @ model.u_weight.T + model.bias[None, :]
    w_t = model.w_matrix.T
    resolvent_t = pr_matrices(model, alpha).T if method == "pr" else None

    def step(z_in: np.ndarray, u_in: np.ndarray, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if method == "fb":
            pre = (1.0 - alpha) * z_in + alpha * (z_in @ w_t + injection[rows])
            z_out = np.maximum(pre, 0.0)
            return z_out, z_out
        u_half = 2.0 * z_in - u_in
        z_half = (u_half + alpha * injection[rows]) @ resolvent_t
        u_out = 2.0 * z_half - u_half
        z_out = np.maximum(u_out, 0.0)
        return z_out, u_out

    state_dim = latent if method == "fb" else 2 * latent

    def pack(z_in: np.ndarray, u_in: np.ndarray) -> np.ndarray:
        return z_in if method == "fb" else np.concatenate([z_in, u_in], axis=1)

    def unpack(s: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return (s, s) if method == "fb" else (s[:, :latent], s[:, latent:])

    # Full-batch rolling histories indexed by absolute sample id; the last
    # ``window_fill[i]`` slots of sample ``i`` are valid (oldest first).
    if accelerated:
        hist_s = np.zeros((anderson_window, batch, state_dim))
        hist_g = np.zeros((anderson_window, batch, state_dim))
        window_fill = np.zeros(batch, dtype=int)

    def push(samples: np.ndarray, s_vals: np.ndarray, g_vals: np.ndarray) -> None:
        hist_s[:-1, samples] = hist_s[1:, samples]
        hist_g[:-1, samples] = hist_g[1:, samples]
        hist_s[-1, samples] = s_vals
        hist_g[-1, samples] = g_vals
        window_fill[samples] = np.minimum(window_fill[samples] + 1, anderson_window)

    active = np.arange(batch)
    for iteration in range(1, max_iterations + 1):
        if active.size == 0:
            break
        z_a, u_a = z[active], u[active]
        z_new, u_new = step(z_a, u_a, active)
        residual = np.linalg.norm(z_new - z_a, axis=1)
        if accelerated:
            push(active, pack(z_a, u_a), pack(z_new, u_new))
            # Snapshot the fill counts: accepted samples push a second pair
            # below, which must not re-enter a later window-size group.
            fills = window_fill[active].copy()
            mix_rows = np.nonzero(fills >= 2)[0]
            for m in np.unique(fills[mix_rows]):
                rows = mix_rows[fills[mix_rows] == m]
                samples = active[rows]
                mixed, ok = anderson_mixing_batch(
                    np.transpose(hist_s[anderson_window - m :, samples], (1, 0, 2)),
                    np.transpose(hist_g[anderson_window - m :, samples], (1, 0, 2)),
                )
                z_mix, u_mix = unpack(mixed)
                g_z, g_u = step(z_mix, u_mix, samples)
                mixed_residual = np.linalg.norm(g_z - z_mix, axis=1)
                accept = (
                    ok
                    & np.isfinite(mixed_residual)
                    & (mixed_residual <= anderson_safeguard_ratio * residual[rows])
                )
                if accept.any():
                    acc_rows = rows[accept]
                    z_new[acc_rows] = g_z[accept]
                    u_new[acc_rows] = g_u[accept]
                    residual[acc_rows] = mixed_residual[accept]
                    accelerated_steps[samples[accept]] += 1
                    push(samples[accept], mixed[accept], pack(g_z, g_u)[accept])
                if (~accept).any():
                    # Safeguard trip per sample: restart the window from
                    # the just-pushed plain (iterate, image) pair.
                    safeguard_fallbacks[samples[~accept]] += 1
                    window_fill[samples[~accept]] = 1
        z[active], u[active] = z_new, u_new
        iterations[active] = iteration
        done = residual < tol
        converged[active[done]] = True
        active = active[~done]
    return BatchSolverResult(
        z=z,
        u=u,
        iterations=iterations,
        converged=converged,
        accelerated_steps=accelerated_steps,
        safeguard_fallbacks=safeguard_fallbacks,
    )


def iterate_implicit_layer(
    model: MonDEQ, x: np.ndarray, steps: int, z0: Optional[np.ndarray] = None
) -> np.ndarray:
    """Naively iterate ``f(x, .)`` for ``steps`` iterations.

    Provided to reproduce the paper's observation (Section 5.1, example)
    that the raw iteration may diverge while operator splitting converges.
    """
    x = ensure_vector(x, "x", dim=model.input_dim)
    z = np.zeros(model.latent_dim) if z0 is None else ensure_vector(z0, "z0", dim=model.latent_dim)
    for _ in range(steps):
        z = model.implicit_layer(x, z)
    return z
