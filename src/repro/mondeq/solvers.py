"""Concrete operator-splitting fixpoint solvers for monDEQs (Section 5.1).

Iterating ``f(x, z) = ReLU(W z + U x + b)`` directly may diverge (the
running example of the paper does); instead the unique fixpoint is found by
operator splitting:

* **Forward–Backward (FB) splitting** (Eq. 8)::

      s_{n+1} = ReLU((1 - alpha) s_n + alpha (W s_n + U x + b))

  which converges for ``0 < alpha < 2 m / ||I - W||_2^2``.

* **Peaceman–Rachford (PR) splitting** (Eq. 9), which maintains an auxiliary
  state ``u`` and converges for any ``alpha > 0``.

Both are exposed as single-step functions (used by training, attacks and
the abstract transformers) and as a run-to-convergence driver
:func:`solve_fixpoint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.mondeq.model import MonDEQ
from repro.utils.validation import ensure_vector


@dataclass
class SolverResult:
    """Result of running a fixpoint solver to convergence.

    Attributes
    ----------
    z:
        The (approximate) fixpoint ``z*``.
    u:
        The auxiliary Peaceman–Rachford state at convergence (equal to the
        pre-activation); for FB splitting it simply mirrors ``z``.
    iterations:
        Number of solver iterations performed.
    converged:
        Whether the residual dropped below the tolerance.
    residuals:
        The residual trace ``||z_n - z_{n-1}||`` per iteration.
    """

    z: np.ndarray
    u: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float]


def default_alpha(model: MonDEQ, method: str) -> float:
    """A safe default damping parameter for the given method.

    FB uses half of the convergence bound ``2m / ||I - W||^2``; PR converges
    for any positive alpha, for which the paper's tables use values around
    ``0.05 – 0.1``.
    """
    if method == "fb":
        return 0.5 * model.fb_alpha_bound()
    if method == "pr":
        return 0.1
    raise ConfigurationError(f"unknown solver method {method!r}")


def fb_step(model: MonDEQ, x: np.ndarray, z: np.ndarray, alpha: float) -> np.ndarray:
    """One Forward–Backward iteration ``g^FB_alpha(x, z)`` (Eq. 8)."""
    pre = (1.0 - alpha) * z + alpha * (model.w_matrix @ z + model.u_weight @ x + model.bias)
    return np.maximum(pre, 0.0)


def pr_matrices(model: MonDEQ, alpha: float) -> np.ndarray:
    """The resolvent ``(I + alpha (I - W))^{-1}`` used by PR splitting."""
    latent = model.latent_dim
    return np.linalg.inv(np.eye(latent) + alpha * (np.eye(latent) - model.w_matrix))


def pr_step(
    model: MonDEQ,
    x: np.ndarray,
    z: np.ndarray,
    u: np.ndarray,
    alpha: float,
    resolvent: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One Peaceman–Rachford iteration ``g^PR_alpha(x, [z; u])`` (Eq. 9)."""
    if resolvent is None:
        resolvent = pr_matrices(model, alpha)
    u_half = 2.0 * z - u
    z_half = resolvent @ (u_half + alpha * (model.u_weight @ x + model.bias))
    u_new = 2.0 * z_half - u_half
    z_new = np.maximum(u_new, 0.0)
    return z_new, u_new


def solve_fixpoint(
    model: MonDEQ,
    x: np.ndarray,
    method: str = "pr",
    alpha: Optional[float] = None,
    tol: float = 1e-9,
    max_iterations: int = 2000,
    raise_on_failure: bool = False,
) -> SolverResult:
    """Iterate the chosen operator-splitting method until convergence.

    Parameters
    ----------
    model, x:
        The monDEQ and a single input vector.
    method:
        ``"pr"`` (default) or ``"fb"``.
    alpha:
        Damping parameter; ``None`` selects :func:`default_alpha`.
    tol:
        Convergence threshold on ``||z_n - z_{n-1}||``.
    max_iterations:
        Iteration budget.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result when the budget is exhausted.
    """
    x = ensure_vector(x, "x", dim=model.input_dim)
    if method not in ("pr", "fb"):
        raise ConfigurationError(f"unknown solver method {method!r}")
    if alpha is None:
        alpha = default_alpha(model, method)
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")

    latent = model.latent_dim
    z = np.zeros(latent)
    u = np.zeros(latent)
    residuals: List[float] = []
    resolvent = pr_matrices(model, alpha) if method == "pr" else None

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if method == "fb":
            z_new = fb_step(model, x, z, alpha)
            u_new = z_new
        else:
            z_new, u_new = pr_step(model, x, z, u, alpha, resolvent=resolvent)
        residual = float(np.linalg.norm(z_new - z))
        residuals.append(residual)
        z, u = z_new, u_new
        if residual < tol:
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"{method.upper()} splitting did not converge within {max_iterations} iterations "
            f"(last residual {residuals[-1]:.3e})"
        )
    return SolverResult(z=z, u=u, iterations=iterations, converged=converged, residuals=residuals)


@dataclass
class BatchSolverResult:
    """Result of running a fixpoint solver over a batch of inputs.

    Attributes
    ----------
    z, u:
        Stacked fixpoints / auxiliary states of shape ``(batch, latent)``;
        each row is frozen at the iteration its own residual converged.
    iterations:
        Per-sample iteration counts.
    converged:
        Per-sample convergence flags.
    """

    z: np.ndarray
    u: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray


def solve_fixpoint_batch(
    model: MonDEQ,
    xs: np.ndarray,
    method: str = "pr",
    alpha: Optional[float] = None,
    tol: float = 1e-9,
    max_iterations: int = 2000,
) -> BatchSolverResult:
    """Solve the fixpoints of many inputs in one vectorised iteration.

    Semantically equivalent to calling :func:`solve_fixpoint` per row of
    ``xs``; the whole batch advances through shared matrix products and each
    sample drops out of the active set (its state frozen) as soon as its own
    residual falls below ``tol``, so early converging samples stop paying
    for slow ones.
    """
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    if xs.shape[1] != model.input_dim:
        raise ConfigurationError(
            f"inputs must have shape (batch, {model.input_dim}), got {xs.shape}"
        )
    if method not in ("pr", "fb"):
        raise ConfigurationError(f"unknown solver method {method!r}")
    if alpha is None:
        alpha = default_alpha(model, method)
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")

    batch = xs.shape[0]
    latent = model.latent_dim
    z = np.zeros((batch, latent))
    u = np.zeros((batch, latent))
    iterations = np.zeros(batch, dtype=int)
    converged = np.zeros(batch, dtype=bool)
    injection = xs @ model.u_weight.T + model.bias[None, :]
    w_t = model.w_matrix.T
    resolvent_t = pr_matrices(model, alpha).T if method == "pr" else None

    active = np.arange(batch)
    for iteration in range(1, max_iterations + 1):
        if active.size == 0:
            break
        z_a, u_a = z[active], u[active]
        if method == "fb":
            pre = (1.0 - alpha) * z_a + alpha * (z_a @ w_t + injection[active])
            z_new = np.maximum(pre, 0.0)
            u_new = z_new
        else:
            u_half = 2.0 * z_a - u_a
            z_half = (u_half + alpha * injection[active]) @ resolvent_t
            u_new = 2.0 * z_half - u_half
            z_new = np.maximum(u_new, 0.0)
        residual = np.linalg.norm(z_new - z_a, axis=1)
        z[active], u[active] = z_new, u_new
        iterations[active] = iteration
        done = residual < tol
        converged[active[done]] = True
        active = active[~done]
    return BatchSolverResult(z=z, u=u, iterations=iterations, converged=converged)


def iterate_implicit_layer(
    model: MonDEQ, x: np.ndarray, steps: int, z0: Optional[np.ndarray] = None
) -> np.ndarray:
    """Naively iterate ``f(x, .)`` for ``steps`` iterations.

    Provided to reproduce the paper's observation (Section 5.1, example)
    that the raw iteration may diverge while operator splitting converges.
    """
    x = ensure_vector(x, "x", dim=model.input_dim)
    z = np.zeros(model.latent_dim) if z0 is None else ensure_vector(z0, "z0", dim=model.latent_dim)
    for _ in range(steps):
        z = model.implicit_layer(x, z)
    return z
