"""Lipschitz-bound certification baselines for monDEQs (Sections 6.1 / 7, App. D.4).

Two baselines are provided:

* **Global Lipschitz certification** (Pabbaraju et al. 2021): the monotone
  parametrisation implies the global bound
  ``||z*(x1) - z*(x2)||_2 <= (||U||_2 / m) ||x1 - x2||_2``, hence the
  network output is ``(||V||_2 ||U||_2 / m)``-Lipschitz in the l2 norm.
  l-infinity certificates follow via ``||delta||_2 <= sqrt(q) ||delta||_inf``
  (Appendix D.4), which is exactly why this baseline is loose for
  l-infinity perturbations.
* **Local sensitivity certification**: a tighter per-sample bound obtained
  from the implicit-function-theorem Jacobian at the fixpoint,
  ``J = (I - D W)^{-1} D U``.  This mirrors the flavour (per-sample,
  SDP-strength but not sound in general for the whole ball) of the SemiSDP
  "Robustness Model"; the surrogate baseline in
  :mod:`repro.verify.baselines` builds on it and documents the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import solve_fixpoint
from repro.utils.linalg import spectral_norm


@dataclass
class LipschitzCertificate:
    """Result of a Lipschitz-based robustness check for one sample."""

    certified: bool
    margin: float
    lipschitz_bound: float
    perturbation_l2: float


def global_latent_lipschitz(model: MonDEQ) -> float:
    """Global l2 Lipschitz bound of ``x -> z*(x)``: ``||U||_2 / m``."""
    return spectral_norm(model.u_weight) / model.monotonicity


def global_output_lipschitz(model: MonDEQ) -> float:
    """Global l2 Lipschitz bound of ``x -> h(x)``: ``||V||_2 ||U||_2 / m``."""
    return spectral_norm(model.v_weight) * global_latent_lipschitz(model)


def pairwise_output_lipschitz(model: MonDEQ, label: int) -> np.ndarray:
    """Per-class bound on the Lipschitz constant of ``y_label - y_i``."""
    differences = model.v_weight[label][None, :] - model.v_weight
    row_norms = np.linalg.norm(differences, axis=1)
    return row_norms * global_latent_lipschitz(model)


def certify_global_lipschitz(
    model: MonDEQ, x: np.ndarray, label: int, epsilon: float, norm: str = "linf"
) -> LipschitzCertificate:
    """Certify l-infinity (or l2) robustness of one sample via the global bound.

    The sample is certified when every logit margin exceeds the product of
    the pairwise Lipschitz bound and the l2 radius of the perturbation set.
    """
    x = np.asarray(x, dtype=float).reshape(-1)
    if norm == "linf":
        perturbation_l2 = float(np.sqrt(model.input_dim) * epsilon)
    elif norm == "l2":
        perturbation_l2 = float(epsilon)
    else:
        raise ValueError(f"unsupported norm {norm!r}")

    logits = model.forward(x)
    margins = logits[label] - logits
    pairwise = pairwise_output_lipschitz(model, label)
    slack = np.array(
        [
            margins[cls] - pairwise[cls] * perturbation_l2
            for cls in range(model.output_dim)
            if cls != label
        ]
    )
    certified = bool(np.argmax(logits) == label and np.all(slack > 0))
    return LipschitzCertificate(
        certified=certified,
        margin=float(slack.min()) if slack.size else np.inf,
        lipschitz_bound=float(pairwise.max()),
        perturbation_l2=perturbation_l2,
    )


def local_sensitivity_matrix(
    model: MonDEQ, x: np.ndarray, solver: str = "pr", tol: float = 1e-9
) -> np.ndarray:
    """Jacobian ``dz*/dx = (I - D W)^{-1} D U`` at the fixpoint of ``x``.

    ``D`` is the ReLU activation pattern at the fixpoint.  This is an exact
    local derivative (where it exists), *not* a sound bound over a
    neighbourhood; it is used by the SemiSDP surrogate and by diagnostics.
    """
    x = np.asarray(x, dtype=float).reshape(-1)
    result = solve_fixpoint(model, x, method=solver, tol=tol)
    w_matrix = model.w_matrix
    pre_activation = w_matrix @ result.z + model.u_weight @ x + model.bias
    active = (pre_activation > 0).astype(float)
    system = np.eye(model.latent_dim) - active[:, None] * w_matrix
    return np.linalg.solve(system, active[:, None] * model.u_weight)


def local_logit_sensitivity(
    model: MonDEQ, x: np.ndarray, label: int, solver: str = "pr"
) -> np.ndarray:
    """Per-class l1 norm of ``d(y_label - y_i)/dx`` at the fixpoint.

    The l1 norm of the gradient row is the local Lipschitz constant w.r.t.
    l-infinity input perturbations (to first order).
    """
    jacobian = local_sensitivity_matrix(model, x, solver=solver)
    differences = model.v_weight[label][None, :] - model.v_weight
    gradient_rows = differences @ jacobian
    return np.linalg.norm(gradient_rows, ord=1, axis=1)
