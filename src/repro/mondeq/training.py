"""Training monDEQs by implicit differentiation (Winston & Kolter 2020).

The forward pass solves the fixpoint ``z* = ReLU(W z* + U x + b)`` with an
operator-splitting solver; the backward pass differentiates *through the
fixpoint* using the implicit function theorem instead of unrolling solver
iterations.  With ``D = diag(1[W z* + U x + b > 0])`` (the ReLU activation
pattern at the fixpoint) and an upstream gradient ``dL/dz*``, the adjoint

    g = (I - D W^T)^{-1} D  dL/dz*

yields the parameter gradients ``dL/dW = g z*^T``, ``dL/dU = g x^T``,
``dL/db = g`` and the input gradient ``dL/dx = U^T g`` (used by PGD).  The
gradients w.r.t. the free parameters of the monotone parametrisation
``W = (1 - m) I - P^T P + Q - Q^T`` follow by the chain rule:

    dL/dP = -P (G + G^T),      dL/dQ = G - G^T,      with  G = dL/dW.

The defaults follow Appendix D.1 (``m = 20``, minibatch SGD/Adam, 10 epochs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import solve_fixpoint
from repro.nn.losses import cross_entropy_loss
from repro.nn.metrics import accuracy
from repro.nn.optim import Adam, Optimizer
from repro.utils.rng import SeedLike, as_generator


@dataclass
class TrainingConfig:
    """Hyper-parameters of the monDEQ training loop."""

    epochs: int = 10
    batch_size: int = 128
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    solver: str = "pr"
    solver_alpha: Optional[float] = None
    solver_tol: float = 1e-6
    solver_max_iterations: int = 300
    shuffle: bool = True
    verbose: bool = False


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy curves recorded during training."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)


def _fixpoint_and_gradients(
    model: MonDEQ,
    x: np.ndarray,
    logit_gradient: np.ndarray,
    z_star: np.ndarray,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Backward pass for one sample given ``dL/dlogits``.

    Returns the per-sample parameter gradients and the input gradient.
    """
    w_matrix = model.w_matrix
    pre_activation = w_matrix @ z_star + model.u_weight @ x + model.bias
    active = (pre_activation > 0).astype(float)

    dz = model.v_weight.T @ logit_gradient
    # Solve (I - D W^T) g = D dz  for the adjoint g.
    system = np.eye(model.latent_dim) - active[:, None] * w_matrix.T
    try:
        adjoint = np.linalg.solve(system, active * dz)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - degenerate activation
        raise TrainingError("implicit backward system is singular") from exc

    grad_w = np.outer(adjoint, z_star)
    gradients = {
        "U": np.outer(adjoint, x),
        "b": adjoint,
        "P": -model.p_weight @ (grad_w + grad_w.T),
        "Q": grad_w - grad_w.T,
        "V": np.outer(logit_gradient, z_star),
        "v": logit_gradient,
    }
    input_gradient = model.u_weight.T @ adjoint
    return gradients, input_gradient


def batch_gradients(
    model: MonDEQ,
    xs: np.ndarray,
    labels: np.ndarray,
    config: TrainingConfig,
) -> Tuple[float, float, Dict[str, np.ndarray]]:
    """Average loss, accuracy and parameter gradients over a minibatch."""
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    labels = np.asarray(labels, dtype=int).reshape(-1)
    batch = xs.shape[0]

    fixpoints = np.zeros((batch, model.latent_dim))
    logits = np.zeros((batch, model.output_dim))
    for index, x in enumerate(xs):
        result = solve_fixpoint(
            model,
            x,
            method=config.solver,
            alpha=config.solver_alpha,
            tol=config.solver_tol,
            max_iterations=config.solver_max_iterations,
        )
        fixpoints[index] = result.z
        logits[index] = model.readout(result.z)

    loss, logit_gradients = cross_entropy_loss(logits, labels)
    if not np.isfinite(loss):
        raise TrainingError("training loss is not finite")
    batch_accuracy = accuracy(logits.argmax(axis=1), labels)

    totals: Dict[str, np.ndarray] = {
        name: np.zeros_like(value) for name, value in model.parameters().items()
    }
    for index, x in enumerate(xs):
        sample_gradients, _ = _fixpoint_and_gradients(
            model, x, logit_gradients[index], fixpoints[index]
        )
        for name, gradient in sample_gradients.items():
            totals[name] += gradient
    return loss, batch_accuracy, totals


def input_gradient(
    model: MonDEQ,
    x: np.ndarray,
    logit_gradient: np.ndarray,
    solver: str = "pr",
    alpha: Optional[float] = None,
    tol: float = 1e-7,
    max_iterations: int = 500,
) -> np.ndarray:
    """Gradient of a scalar loss w.r.t. the *input* through the equilibrium.

    ``logit_gradient`` is ``dL/dy`` at the current input; this is the
    building block of the PGD attack (:mod:`repro.mondeq.attacks`).
    """
    result = solve_fixpoint(model, x, method=solver, alpha=alpha, tol=tol,
                            max_iterations=max_iterations)
    _, gradient = _fixpoint_and_gradients(model, np.asarray(x, dtype=float), logit_gradient, result.z)
    return gradient


def train(
    model: MonDEQ,
    x_train: np.ndarray,
    y_train: np.ndarray,
    config: Optional[TrainingConfig] = None,
    optimizer: Optional[Optimizer] = None,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    seed: SeedLike = 0,
) -> TrainingHistory:
    """Train ``model`` in place and return the loss/accuracy history."""
    config = config if config is not None else TrainingConfig()
    optimizer = optimizer if optimizer is not None else Adam(
        learning_rate=config.learning_rate, weight_decay=config.weight_decay
    )
    rng = as_generator(seed)
    x_train = np.atleast_2d(np.asarray(x_train, dtype=float))
    y_train = np.asarray(y_train, dtype=int).reshape(-1)
    history = TrainingHistory()
    parameters = model.parameters()

    num_samples = x_train.shape[0]
    for epoch in range(config.epochs):
        order = rng.permutation(num_samples) if config.shuffle else np.arange(num_samples)
        epoch_losses = []
        epoch_accuracies = []
        for start in range(0, num_samples, config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            loss, batch_accuracy, gradients = batch_gradients(
                model, x_train[batch_idx], y_train[batch_idx], config
            )
            optimizer.step(parameters, gradients)
            epoch_losses.append(loss)
            epoch_accuracies.append(batch_accuracy)
        history.train_loss.append(float(np.mean(epoch_losses)))
        history.train_accuracy.append(float(np.mean(epoch_accuracies)))
        if x_val is not None and y_val is not None:
            predictions = model.predict_batch(
                x_val, solver=config.solver, tol=config.solver_tol,
                max_iterations=config.solver_max_iterations,
            )
            history.validation_accuracy.append(accuracy(predictions, y_val))
        if config.verbose:  # pragma: no cover - logging only
            message = (
                f"epoch {epoch + 1}/{config.epochs}: "
                f"loss={history.train_loss[-1]:.4f} acc={history.train_accuracy[-1]:.3f}"
            )
            if history.validation_accuracy:
                message += f" val_acc={history.validation_accuracy[-1]:.3f}"
            print(message)
    return history
