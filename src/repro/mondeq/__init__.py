"""The monotone operator Deep Equilibrium Model (monDEQ) substrate.

monDEQs (Winston & Kolter 2020) are implicit-depth networks whose output is
a *fixpoint* ``z* = ReLU(W z* + U x + b)`` with the monotone parametrisation
``W = (1 - m) I - P^T P + Q - Q^T`` guaranteeing existence and uniqueness of
that fixpoint.  This subpackage provides everything the paper's evaluation
needs around them:

* :mod:`repro.mondeq.model` — the model class (fully-connected and
  convolution-structured variants) and serialisation.
* :mod:`repro.mondeq.solvers` — concrete Forward–Backward and
  Peaceman–Rachford operator-splitting fixpoint solvers (Eq. 8 / 9).
* :mod:`repro.mondeq.abstract_solvers` — sound abstract transformers of one
  solver iteration over the joint (state, input) space, for any abstract
  domain in :mod:`repro.domains`.
* :mod:`repro.mondeq.training` — training by implicit differentiation.
* :mod:`repro.mondeq.attacks` — PGD adversarial attacks (for the
  ``#Bound`` column of Tables 2 and 3).
* :mod:`repro.mondeq.lipschitz` — Lipschitz-bound certification baselines.
* :mod:`repro.mondeq.conv` — convolution-structured weight matrices used by
  the "ConvSmall" architectures.
"""

from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import SolverResult, solve_fixpoint

__all__ = ["MonDEQ", "SolverResult", "solve_fixpoint"]
