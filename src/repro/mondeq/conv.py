"""Convolution-structured monDEQs ("ConvSmall", Table 2).

The paper's convolutional monDEQs apply convolutions inside the implicit
layer; since every linear operator on a flattened feature map is a matrix,
we realise them by *materialising* the convolutions as (dense numpy)
matrices with the usual Toeplitz/block structure and reusing the
fully-connected monDEQ machinery — the abstract transformers, the solvers
and the training loop are all agnostic to the internal structure of
``U, P, Q``.  This mirrors the paper's setting where the ConvSmall latent
state is a single vector of size 648 / 800.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mondeq.model import MonDEQ
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ConvSpec:
    """Shape of a single 2-d convolution applied to a square feature map."""

    in_channels: int
    out_channels: int
    image_size: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 1

    def __post_init__(self):
        if self.kernel_size % 2 == 0:
            raise ConfigurationError("kernel_size must be odd")
        if self.stride < 1:
            raise ConfigurationError("stride must be positive")
        if min(self.in_channels, self.out_channels, self.image_size) < 1:
            raise ConfigurationError("channels and image size must be positive")

    @property
    def output_size(self) -> int:
        return (self.image_size + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def input_dim(self) -> int:
        return self.in_channels * self.image_size**2

    @property
    def output_dim(self) -> int:
        return self.out_channels * self.output_size**2


def conv_matrix(kernel: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Materialise a convolution kernel as a dense matrix.

    Parameters
    ----------
    kernel:
        ``(out_channels, in_channels, kernel_size, kernel_size)`` weights.
    spec:
        The convolution geometry.

    Returns
    -------
    numpy.ndarray
        ``(spec.output_dim, spec.input_dim)`` matrix ``M`` with
        ``conv(x) == M @ x.flatten()`` for channel-major flattening.
    """
    kernel = np.asarray(kernel, dtype=float)
    expected = (spec.out_channels, spec.in_channels, spec.kernel_size, spec.kernel_size)
    if kernel.shape != expected:
        raise ConfigurationError(f"kernel must have shape {expected}, got {kernel.shape}")

    size = spec.image_size
    out_size = spec.output_size
    matrix = np.zeros((spec.output_dim, spec.input_dim))

    def in_index(channel, row, col):
        return channel * size * size + row * size + col

    def out_index(channel, row, col):
        return channel * out_size * out_size + row * out_size + col

    half = spec.kernel_size // 2
    for out_channel in range(spec.out_channels):
        for out_row in range(out_size):
            for out_col in range(out_size):
                anchor_row = out_row * spec.stride - spec.padding + half
                anchor_col = out_col * spec.stride - spec.padding + half
                for in_channel in range(spec.in_channels):
                    for k_row in range(spec.kernel_size):
                        for k_col in range(spec.kernel_size):
                            row = anchor_row + k_row - half
                            col = anchor_col + k_col - half
                            if 0 <= row < size and 0 <= col < size:
                                matrix[
                                    out_index(out_channel, out_row, out_col),
                                    in_index(in_channel, row, col),
                                ] += kernel[out_channel, in_channel, k_row, k_col]
    return matrix


def random_conv_matrix(spec: ConvSpec, scale: float = 0.5, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Random convolution matrix with Glorot-style scaling."""
    rng = rng if rng is not None else np.random.default_rng(0)
    fan_in = spec.in_channels * spec.kernel_size**2
    fan_out = spec.out_channels * spec.kernel_size**2
    limit = scale * np.sqrt(6.0 / (fan_in + fan_out))
    kernel = rng.uniform(
        -limit, limit,
        size=(spec.out_channels, spec.in_channels, spec.kernel_size, spec.kernel_size),
    )
    return conv_matrix(kernel, spec)


def make_conv_mondeq(
    image_size: int,
    in_channels: int,
    latent_channels: int,
    output_dim: int,
    monotonicity: float = 20.0,
    kernel_size: int = 3,
    scale: float = 0.4,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Tuple[MonDEQ, ConvSpec]:
    """Build a convolution-structured monDEQ ("ConvSmall"-style).

    ``U`` is a convolution from the input image to the latent feature map
    and ``P, Q`` are convolutions on the latent feature map; the latent
    state is the flattened ``latent_channels x image_size x image_size``
    feature map.
    """
    rng = as_generator(seed)
    input_spec = ConvSpec(
        in_channels=in_channels, out_channels=latent_channels,
        image_size=image_size, kernel_size=kernel_size,
    )
    latent_spec = ConvSpec(
        in_channels=latent_channels, out_channels=latent_channels,
        image_size=image_size, kernel_size=kernel_size,
    )
    latent_dim = latent_spec.output_dim
    u_weight = random_conv_matrix(input_spec, scale=scale, rng=rng)
    p_weight = random_conv_matrix(latent_spec, scale=scale, rng=rng)
    q_weight = random_conv_matrix(latent_spec, scale=scale, rng=rng)
    limit = np.sqrt(6.0 / (latent_dim + output_dim))
    v_weight = rng.uniform(-limit, limit, size=(output_dim, latent_dim))
    model = MonDEQ(
        u_weight=u_weight,
        p_weight=p_weight,
        q_weight=q_weight,
        bias=np.zeros(latent_dim),
        v_weight=v_weight,
        v_bias=np.zeros(output_dim),
        monotonicity=monotonicity,
        name=name or f"ConvSmall({latent_channels}x{image_size}x{image_size})",
    )
    return model, latent_spec
