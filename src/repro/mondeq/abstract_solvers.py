"""Sound abstract transformers of monDEQ fixpoint-solver iterations.

Following Algorithm 1, the abstract solver state ``S`` covers only the
solver variables —

* ``[z]``      for Forward–Backward splitting (dimension ``p``),
* ``[z ; u]``  for Peaceman–Rachford splitting (dimension ``2p``),

while the input abstraction ``X`` is a separate element that is *injected*
into every abstract step ``g#_alpha(X, S)``.  One step is the composition of

1. an exact affine transformer on the state (the linear part of Eq. 8 for
   FB, or the closed form of Eq. 9 for PR using the resolvent
   ``D = (I + alpha (I - W))^{-1}``),
2. a Minkowski sum with the input-injection element (``alpha U X + alpha b``
   for FB, ``2 alpha D U X + 2 alpha D b`` replicated over the ``z`` and
   ``u`` blocks for PR), and
3. the ReLU transformer on the ``z`` block (the auxiliary block passes
   through).

Treating the state and the input as independent at each step is a sound
over-approximation of the concrete iteration for every ``x`` in the input
region and every ``s`` in the state abstraction, so Theorems 3.1/3.3/5.1
apply unchanged; the number of error terms grows by at most ``k_x + p`` per
step and is periodically reduced by CH-Zonotope error consolidation.

The same construction works for every domain in :mod:`repro.domains`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Type

import numpy as np

from repro.domains.base import AbstractElement
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.relu import default_slopes
from repro.domains.zonotope import Zonotope
from repro.exceptions import ConfigurationError, DomainError
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import pr_matrices

StepFunction = Callable[[AbstractElement], AbstractElement]


@dataclass(frozen=True)
class StateLayout:
    """Layout of the abstract solver state.

    Attributes
    ----------
    latent_dim:
        Dimension ``p`` of the monDEQ latent state.
    has_aux:
        Whether the layout carries the Peaceman–Rachford auxiliary block.
    """

    latent_dim: int
    has_aux: bool

    @property
    def dim(self) -> int:
        """Total dimension of the state abstraction."""
        return (2 if self.has_aux else 1) * self.latent_dim

    @property
    def z_slice(self) -> slice:
        return slice(0, self.latent_dim)

    @property
    def u_slice(self) -> Optional[slice]:
        if not self.has_aux:
            return None
        return slice(self.latent_dim, 2 * self.latent_dim)

    def relu_pass_through(self) -> Optional[np.ndarray]:
        """Mask of dimensions the ReLU does *not* apply to (the aux block)."""
        if not self.has_aux:
            return None
        mask = np.zeros(self.dim, dtype=bool)
        mask[self.u_slice] = True
        return mask

    def z_selector(self) -> np.ndarray:
        """Selection matrix extracting the ``z`` block from a state vector."""
        selector = np.zeros((self.latent_dim, self.dim))
        selector[:, self.z_slice] = np.eye(self.latent_dim)
        return selector


def layout_for(model: MonDEQ, solver: str) -> StateLayout:
    """The state layout induced by the *containment-phase* solver."""
    if solver not in ("pr", "fb"):
        raise ConfigurationError(f"unknown solver {solver!r}")
    return StateLayout(latent_dim=model.latent_dim, has_aux=solver == "pr")


def _coerce_input(input_element: AbstractElement, domain: Type[AbstractElement]) -> AbstractElement:
    """Convert the input abstraction to the requested domain."""
    if isinstance(input_element, domain):
        return input_element
    if domain is CHZonotope:
        if isinstance(input_element, Interval):
            return CHZonotope.from_interval(input_element)
        if isinstance(input_element, Zonotope):
            return CHZonotope.from_zonotope(input_element)
    if issubclass(domain, Zonotope):
        if isinstance(input_element, Interval):
            return domain.from_interval(input_element)
        if isinstance(input_element, Zonotope) and not isinstance(input_element, CHZonotope):
            # Re-typing a plain zonotope into a Zonotope subclass (e.g. the
            # order-bounded ParallelotopeZonotope) keeps the set unchanged.
            return domain(input_element.center, input_element.generators)
    if domain is Interval:
        lower, upper = input_element.concretize_bounds()
        return Interval(lower, upper)
    raise DomainError(
        f"cannot convert {type(input_element).__name__} to {domain.__name__}"
    )


# ----------------------------------------------------------------------
# State-space matrices and input injections of one solver iteration
# ----------------------------------------------------------------------


def fb_state_matrices(model: MonDEQ, alpha: float, layout: StateLayout):
    """State matrix and input-injection map of one FB step.

    Returns ``(state_matrix, input_matrix, bias)`` such that the
    pre-activation of the new state is
    ``state_matrix @ s + input_matrix @ x + bias``.
    """
    p = layout.latent_dim
    m_matrix = (1.0 - alpha) * np.eye(p) + alpha * model.w_matrix
    state_matrix = np.zeros((layout.dim, layout.dim))
    state_matrix[layout.z_slice, layout.z_slice] = m_matrix
    input_matrix = np.zeros((layout.dim, model.input_dim))
    input_matrix[layout.z_slice, :] = alpha * model.u_weight
    bias = np.zeros(layout.dim)
    bias[layout.z_slice] = alpha * model.bias
    if layout.has_aux:
        # An FB step on a PR layout leaves the auxiliary block unchanged;
        # this maps joint fixpoints onto themselves and is therefore still
        # fixpoint-set preserving (Theorem 5.1 applies to the z block).
        state_matrix[layout.u_slice, layout.u_slice] = np.eye(p)
    return state_matrix, input_matrix, bias


def pr_state_matrices(model: MonDEQ, alpha: float, layout: StateLayout):
    """State matrix and input-injection map of one PR step (Eq. 9).

    With the resolvent ``D = (I + alpha (I - W))^{-1}`` the new auxiliary
    state is the affine function

        u' = (4 D - 2 I) z + (I - 2 D) u + 2 alpha D U x + 2 alpha D b

    of the previous state; the new ``z`` is ``ReLU(u')``, so both output
    blocks are set to ``u'`` before the (masked) ReLU.
    """
    if not layout.has_aux:
        raise ConfigurationError("PR steps require a layout with the auxiliary block")
    p = layout.latent_dim
    resolvent = pr_matrices(model, alpha)
    z_coeff = 4.0 * resolvent - 2.0 * np.eye(p)
    u_coeff = np.eye(p) - 2.0 * resolvent
    input_block = 2.0 * alpha * resolvent @ model.u_weight
    bias_block = 2.0 * alpha * resolvent @ model.bias

    state_matrix = np.zeros((layout.dim, layout.dim))
    input_matrix = np.zeros((layout.dim, model.input_dim))
    bias = np.zeros(layout.dim)
    for block in (layout.z_slice, layout.u_slice):
        state_matrix[block, layout.z_slice] = z_coeff
        state_matrix[block, layout.u_slice] = u_coeff
        input_matrix[block, :] = input_block
        bias[block] = bias_block
    return state_matrix, input_matrix, bias


# ----------------------------------------------------------------------
# Step builders
# ----------------------------------------------------------------------


def make_abstract_step(
    model: MonDEQ,
    layout: StateLayout,
    input_element: AbstractElement,
    solver: str,
    alpha: float,
    slope_delta: float = 0.0,
    use_box_component: bool = True,
) -> StepFunction:
    """Build the abstract transformer ``S -> g#_alpha(X, S)``.

    Parameters
    ----------
    model, layout:
        The monDEQ and the state layout fixed by the containment-phase
        solver.
    input_element:
        Abstraction of the input region ``X`` (any domain); the
        input-injection element is precomputed once from it.
    solver, alpha:
        Splitting method (``"fb"`` / ``"pr"``) and damping parameter.
    slope_delta:
        Shift added to the minimum-area ReLU slopes (slope optimisation).
    use_box_component:
        Forwarded to the CH-Zonotope ReLU transformer; ignored by other
        domains.
    """
    if solver == "fb":
        state_matrix, input_matrix, bias = fb_state_matrices(model, alpha, layout)
    elif solver == "pr":
        state_matrix, input_matrix, bias = pr_state_matrices(model, alpha, layout)
    else:
        raise ConfigurationError(f"unknown solver {solver!r}")
    pass_through = layout.relu_pass_through()
    # The injection element carries the whole input contribution (including
    # the bias), so correlations of the input across the z and u blocks are
    # preserved within one step.
    injection = input_element.affine(input_matrix, bias)

    def step(element: AbstractElement) -> AbstractElement:
        if element.dim != layout.dim:
            raise DomainError(
                f"solver state has dimension {element.dim}, expected {layout.dim}"
            )
        propagated = element.affine(state_matrix).sum(injection)
        slopes = None
        if slope_delta != 0.0:
            lower, upper = propagated.concretize_bounds()
            slopes = np.clip(default_slopes(lower, upper) + slope_delta, 0.0, 1.0)
        if isinstance(propagated, CHZonotope):
            return propagated.relu(
                slopes=slopes,
                box_new_errors=use_box_component,
                pass_through=pass_through,
            )
        return propagated.relu(slopes=slopes, pass_through=pass_through)

    return step


class BatchedAbstractStep:
    """The batched abstract transformer ``S -> g#_alpha(X, S)`` over a stack.

    The per-sample semantics are exactly those of the step built by
    :func:`make_abstract_step`; the input-injection element is a
    :class:`~repro.engine.batched_chzonotope.BatchedCHZonotope` precomputed
    from the whole batch of input regions.  :meth:`select` derives the step
    for a sub-batch, which is how the batched Craft driver keeps iterating
    only the still-active samples after early exits.
    """

    def __init__(self, state_matrix, injection, pass_through, slope_delta, use_box_component):
        self._state_matrix = state_matrix
        self._injection = injection
        self._pass_through = pass_through
        self._slope_delta = slope_delta
        self._use_box_component = use_box_component

    @property
    def batch_size(self) -> int:
        return self._injection.batch_size

    def select(self, indices) -> "BatchedAbstractStep":
        """The same step restricted to the given sample rows."""
        return BatchedAbstractStep(
            self._state_matrix,
            self._injection.select(indices),
            self._pass_through,
            self._slope_delta,
            self._use_box_component,
        )

    def __call__(self, state):
        if state.dim != self._state_matrix.shape[0]:
            raise DomainError(
                f"solver state has dimension {state.dim}, "
                f"expected {self._state_matrix.shape[0]}"
            )
        if state.batch_size != self._injection.batch_size:
            raise DomainError(
                f"state batch {state.batch_size} does not match the injection "
                f"batch {self._injection.batch_size}"
            )
        propagated = state.affine(self._state_matrix).sum(self._injection)
        slopes = None
        if self._slope_delta != 0.0:
            slopes = propagated.relu_slopes(self._slope_delta)
        return propagated.relu(
            slopes=slopes,
            box_new_errors=self._use_box_component,
            pass_through=self._pass_through,
        )


def make_batched_abstract_step(
    model: MonDEQ,
    layout: StateLayout,
    batched_input,
    solver: str,
    alpha: float,
    slope_delta: float = 0.0,
    use_box_component: bool = True,
) -> BatchedAbstractStep:
    """Batched counterpart of :func:`make_abstract_step`.

    ``batched_input`` is a ``BatchedCHZonotope`` stacking the input-region
    abstractions of the whole batch (one row per certification query).
    """
    if solver == "fb":
        state_matrix, input_matrix, bias = fb_state_matrices(model, alpha, layout)
    elif solver == "pr":
        state_matrix, input_matrix, bias = pr_state_matrices(model, alpha, layout)
    else:
        raise ConfigurationError(f"unknown solver {solver!r}")
    injection = batched_input.affine(input_matrix, bias)
    # Park the shared step operands on the injection's backend once, so the
    # iteration loop performs no host<->device transfers: every subsequent
    # ``xp.asarray`` inside the transformers adopts them zero-copy.
    xp = injection.xp
    state_matrix = xp.asarray(state_matrix)
    pass_through = layout.relu_pass_through()
    if pass_through is not None:
        pass_through = xp.asarray_bool(pass_through)
    return BatchedAbstractStep(
        state_matrix, injection, pass_through, slope_delta, use_box_component
    )


def build_initial_state(
    model: MonDEQ,
    layout: StateLayout,
    z0: np.ndarray,
    domain: Type[AbstractElement] = CHZonotope,
) -> AbstractElement:
    """Initial state abstraction ``S_0`` (Algorithm 1, line 2).

    The solver blocks are initialised to the singleton ``z0`` — typically
    the concrete fixpoint of the centre input (both the ``z`` and the
    auxiliary block, matching ``S_0 = {[z*(x); z*(x)]}``).
    """
    z0 = np.asarray(z0, dtype=float).reshape(-1)
    if z0.shape[0] != layout.latent_dim:
        raise DomainError(f"z0 must have dimension {layout.latent_dim}")
    blocks = 2 if layout.has_aux else 1
    point = np.concatenate([z0] * blocks)
    if domain is CHZonotope:
        return CHZonotope.from_point(point)
    if issubclass(domain, Zonotope):
        # Covers plain Zonotope and the order-bounded ParallelotopeZonotope
        # (classmethod constructors are type-stable on the subclass).
        return domain.from_point(point)
    if domain is Interval:
        return Interval.from_point(point)
    raise DomainError(f"unsupported domain {domain.__name__}")


def make_output_map(model: MonDEQ, layout: StateLayout) -> Callable[[AbstractElement], AbstractElement]:
    """Map a state abstraction to the output abstraction ``Y = V z + v`` (exact)."""
    selector = model.v_weight @ layout.z_selector()

    def extract(element: AbstractElement) -> AbstractElement:
        return element.affine(selector, model.v_bias)

    return extract


def make_z_extractor(layout: StateLayout) -> Callable[[AbstractElement], AbstractElement]:
    """Map a state abstraction to the abstraction of the ``z`` block (exact)."""
    selector = layout.z_selector()

    def extract(element: AbstractElement) -> AbstractElement:
        return element.affine(selector)

    return extract


def coerce_input_element(input_element: AbstractElement, domain: str) -> AbstractElement:
    """Convert an input abstraction to the domain named in a CraftConfig."""
    from repro.domains.parallelotope import ParallelotopeZonotope

    domain_classes = {
        "chzonotope": CHZonotope,
        "box": Interval,
        "zonotope": Zonotope,
        "parallelotope": ParallelotopeZonotope,
    }
    try:
        target = domain_classes[domain]
    except KeyError:
        raise ConfigurationError(f"unknown domain {domain!r}") from None
    return _coerce_input(input_element, target)
