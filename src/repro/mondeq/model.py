"""The monDEQ model (Winston & Kolter 2020), Section 5.1 of the paper.

A monDEQ classifier consists of

* an implicit layer ``f(x, z) = ReLU(W z + U x + b)`` whose weight matrix is
  parametrised as ``W = (1 - m) I - P^T P + Q - Q^T`` with monotonicity
  parameter ``m > 0`` (this makes ``I - W`` strongly monotone and guarantees
  a unique fixpoint ``z*(x)``), and
* an affine read-out ``y = V z* + v``.

The class stores the *free* parameters ``P, Q, U, b, V, v`` (plus ``m``)
so that training updates preserve monotonicity by construction, and exposes
the derived ``W`` as a property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.linalg import spectral_norm
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_matrix, ensure_vector


@dataclass(frozen=True)
class MonDEQArchitecture:
    """Shape description of a monDEQ: input, latent and output dimensions."""

    input_dim: int
    latent_dim: int
    output_dim: int
    monotonicity: float = 20.0
    name: str = "monDEQ"

    def __post_init__(self):
        if min(self.input_dim, self.latent_dim, self.output_dim) < 1:
            raise ConfigurationError("all dimensions must be positive")
        if self.monotonicity <= 0:
            raise ConfigurationError("the monotonicity parameter m must be positive")


class MonDEQ:
    """Monotone operator Deep Equilibrium Model."""

    def __init__(
        self,
        u_weight: np.ndarray,
        p_weight: np.ndarray,
        q_weight: np.ndarray,
        bias: np.ndarray,
        v_weight: np.ndarray,
        v_bias: np.ndarray,
        monotonicity: float = 20.0,
        name: str = "monDEQ",
    ):
        latent_dim = p_weight.shape[0]
        self.u_weight = ensure_matrix(u_weight, "U", rows=latent_dim)
        self.p_weight = ensure_matrix(p_weight, "P", rows=latent_dim, cols=latent_dim)
        self.q_weight = ensure_matrix(q_weight, "Q", rows=latent_dim, cols=latent_dim)
        self.bias = ensure_vector(bias, "b", dim=latent_dim)
        self.v_weight = ensure_matrix(v_weight, "V", cols=latent_dim)
        self.v_bias = ensure_vector(v_bias, "v", dim=self.v_weight.shape[0])
        if monotonicity <= 0:
            raise ConfigurationError("the monotonicity parameter m must be positive")
        self.monotonicity = float(monotonicity)
        self.name = name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        input_dim: int,
        latent_dim: int,
        output_dim: int,
        monotonicity: float = 20.0,
        scale: float = 0.5,
        seed: SeedLike = None,
        name: Optional[str] = None,
    ) -> "MonDEQ":
        """Randomly initialised monDEQ (Glorot-style scaling).

        The initial ``P`` is scaled such that ``P^T P`` stays moderate, which
        keeps early training iterations well conditioned.
        """
        rng = as_generator(seed)
        architecture_name = name or f"FCx{latent_dim}"

        def glorot(rows, cols, gain=1.0):
            limit = gain * np.sqrt(6.0 / (rows + cols))
            return rng.uniform(-limit, limit, size=(rows, cols))

        u_weight = glorot(latent_dim, input_dim)
        p_weight = scale * glorot(latent_dim, latent_dim)
        q_weight = scale * glorot(latent_dim, latent_dim)
        bias = np.zeros(latent_dim)
        v_weight = glorot(output_dim, latent_dim)
        v_bias = np.zeros(output_dim)
        return cls(
            u_weight, p_weight, q_weight, bias, v_weight, v_bias,
            monotonicity=monotonicity, name=architecture_name,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def input_dim(self) -> int:
        return self.u_weight.shape[1]

    @property
    def latent_dim(self) -> int:
        return self.p_weight.shape[0]

    @property
    def output_dim(self) -> int:
        return self.v_weight.shape[0]

    @property
    def architecture(self) -> MonDEQArchitecture:
        return MonDEQArchitecture(
            input_dim=self.input_dim,
            latent_dim=self.latent_dim,
            output_dim=self.output_dim,
            monotonicity=self.monotonicity,
            name=self.name,
        )

    @property
    def w_matrix(self) -> np.ndarray:
        """The implicit-layer weight ``W = (1 - m) I - P^T P + Q - Q^T``."""
        latent = self.latent_dim
        return (
            (1.0 - self.monotonicity) * np.eye(latent)
            - self.p_weight.T @ self.p_weight
            + self.q_weight
            - self.q_weight.T
        )

    def fb_alpha_bound(self) -> float:
        """The Forward–Backward convergence bound ``2 m / ||I - W||_2^2``."""
        return 2.0 * self.monotonicity / spectral_norm(np.eye(self.latent_dim) - self.w_matrix) ** 2

    def monotonicity_defect(self) -> float:
        """Smallest eigenvalue of ``(I - W + (I - W)^T) / 2 - m I``.

        Non-negative values confirm that ``I - W`` is ``m``-strongly
        monotone, which the parametrisation guarantees up to numerical error
        (the symmetric part equals ``m I + P^T P``).
        """
        w = self.w_matrix
        symmetric_part = 0.5 * ((np.eye(self.latent_dim) - w) + (np.eye(self.latent_dim) - w).T)
        eigenvalues = np.linalg.eigvalsh(symmetric_part - self.monotonicity * np.eye(self.latent_dim))
        return float(eigenvalues.min())

    # ------------------------------------------------------------------
    # Concrete semantics
    # ------------------------------------------------------------------

    def implicit_layer(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """One application of ``f(x, z) = ReLU(W z + U x + b)``."""
        x = ensure_vector(x, "x", dim=self.input_dim)
        z = ensure_vector(z, "z", dim=self.latent_dim)
        return np.maximum(self.w_matrix @ z + self.u_weight @ x + self.bias, 0.0)

    def readout(self, z: np.ndarray) -> np.ndarray:
        """The classification layer ``y = V z + v``."""
        z = ensure_vector(z, "z", dim=self.latent_dim)
        return self.v_weight @ z + self.v_bias

    def readout_batch(self, zs: np.ndarray) -> np.ndarray:
        """The classification layer applied to rows of ``zs``."""
        zs = np.atleast_2d(np.asarray(zs, dtype=float))
        return zs @ self.v_weight.T + self.v_bias[None, :]

    def forward(self, x: np.ndarray, solver: str = "pr", alpha: Optional[float] = None,
                tol: float = 1e-9, max_iterations: int = 2000) -> np.ndarray:
        """Logits of a single input (solves the fixpoint to tolerance ``tol``)."""
        from repro.mondeq.solvers import solve_fixpoint

        result = solve_fixpoint(self, x, method=solver, alpha=alpha, tol=tol,
                                max_iterations=max_iterations)
        return self.readout(result.z)

    def forward_batch(self, xs: np.ndarray, solver: str = "pr", alpha: Optional[float] = None,
                      tol: float = 1e-9, max_iterations: int = 2000) -> np.ndarray:
        """Logits for each row of ``xs`` (one vectorised fixpoint solve)."""
        from repro.mondeq.solvers import solve_fixpoint_batch

        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        result = solve_fixpoint_batch(self, xs, method=solver, alpha=alpha, tol=tol,
                                      max_iterations=max_iterations)
        return self.readout_batch(result.z)

    def predict(self, x: np.ndarray, **kwargs) -> int:
        """Predicted class of a single input."""
        return int(np.argmax(self.forward(x, **kwargs)))

    def predict_batch(self, xs: np.ndarray, **kwargs) -> np.ndarray:
        """Predicted classes for each row of ``xs``."""
        return np.argmax(self.forward_batch(xs, **kwargs), axis=1).astype(int)

    # ------------------------------------------------------------------
    # Parameter access / serialisation
    # ------------------------------------------------------------------

    def parameters(self) -> Dict[str, np.ndarray]:
        """The trainable parameters as a name -> array dictionary (views)."""
        return {
            "U": self.u_weight,
            "P": self.p_weight,
            "Q": self.q_weight,
            "b": self.bias,
            "V": self.v_weight,
            "v": self.v_bias,
        }

    def copy(self) -> "MonDEQ":
        """Deep copy of the model."""
        return MonDEQ(
            self.u_weight.copy(), self.p_weight.copy(), self.q_weight.copy(),
            self.bias.copy(), self.v_weight.copy(), self.v_bias.copy(),
            monotonicity=self.monotonicity, name=self.name,
        )

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Serialisable dictionary (used by ``save``)."""
        data = {name: array.copy() for name, array in self.parameters().items()}
        data["m"] = np.array(self.monotonicity)
        data["name"] = np.array(self.name)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, np.ndarray]) -> "MonDEQ":
        """Inverse of :meth:`to_dict`."""
        return cls(
            data["U"], data["P"], data["Q"], data["b"], data["V"], data["v"],
            monotonicity=float(data["m"]), name=str(data["name"]),
        )

    def save(self, path: str) -> None:
        """Save the model to an ``.npz`` file."""
        np.savez(path, **self.to_dict())

    @classmethod
    def load(cls, path: str) -> "MonDEQ":
        """Load a model previously stored with :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            return cls.from_dict({key: data[key] for key in data.files})

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MonDEQ(name={self.name!r}, input={self.input_dim}, "
            f"latent={self.latent_dim}, output={self.output_dim}, m={self.monotonicity})"
        )
