"""Exception hierarchy shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class DomainError(ReproError):
    """Raised when an abstract element is constructed or used incorrectly."""


class DimensionMismatchError(DomainError):
    """Raised when abstract elements of incompatible dimensions are combined."""


class ImproperZonotopeError(DomainError):
    """Raised when an operation requires a proper (invertible) CH-Zonotope."""


class ConvergenceError(ReproError):
    """Raised when a concrete fixpoint solver fails to converge."""


class AbstractionDivergedError(ReproError):
    """Raised when an abstract fixpoint iteration diverges beyond the abort width."""


class VerificationError(ReproError):
    """Raised when a verification query is malformed."""


class ConfigurationError(ReproError):
    """Raised for invalid configuration values."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or loaded."""


class TrainingError(ReproError):
    """Raised when model training fails (e.g. non-finite loss)."""
