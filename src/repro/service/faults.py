"""Deterministic seeded fault injection for the certification service.

The service's soundness claim — every submitted cell resolves to exactly
one verdict identical to the fault-free run — is only testable if faults
are *reproducible*: the same seed must kill the same worker at the same
task, every run, on every machine.  This module is that source of
faults.  Both the test battery (``tests/service/test_faults.py``) and
the soak benchmark (``benchmarks/bench_service.py``) drive the cluster
through it; production deployments simply leave ``faults=None``.

Fault model (three actions, applied per claimed task):

``kill``
    The worker process exits hard (``os._exit``) *after claiming* a task
    and *before computing* it — the mid-batch crash.  The scheduler's
    lease machinery must reassign the shard and, for local workers,
    respawn the slot at the next generation.
``delay``
    The worker computes the shard, then sleeps ``delay_seconds`` before
    reporting.  With a delay longer than the shard lease this *is* the
    hung worker: the health-check must mark it dead within the lease
    timeout, and its eventually-reported result must be deduplicated
    against the reassigned attempt (exactly-once, first-wins).
``drop``
    The worker computes the shard and silently never reports it — the
    dropped connection.  Indistinguishable from a hang to the scheduler;
    recovery is identical.

Determinism contract
--------------------
A :class:`FaultPlan` draws its actions from
``np.random.default_rng((seed, worker_slot, generation))`` and consumes
**exactly one draw per claimed task** regardless of the action taken, so
the action at ``(slot, generation, task_seq)`` is a pure function of the
spec — independent of scheduling races, wall-clock, or what other
workers do.  ``scripted`` entries pin specific ``(slot, task_seq)``
pairs to specific actions (generation 0 only: a respawned worker does
not replay its predecessor's script) for tests that need a fault at an
exact point rather than a rate.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: The recognised fault actions, in rate-band order.
ACTIONS = ("kill", "delay", "drop", "none")


@dataclass(frozen=True)
class FaultSpec:
    """A reproducible fault schedule for a whole cluster.

    Rates partition ``[0, 1)`` into ``kill | delay | drop | none`` bands
    and must sum to at most 1.  ``scripted`` is a tuple of
    ``(worker_slot, task_seq, action)`` triples overriding the drawn
    action for that worker's ``task_seq``-th claimed task (0-based,
    generation 0 only).  ``max_faults`` caps the injected faults per
    worker plan, so a soak run cannot degenerate into a kill storm.
    """

    seed: int = 0
    kill_rate: float = 0.0
    delay_rate: float = 0.0
    drop_rate: float = 0.0
    delay_seconds: float = 0.05
    scripted: Tuple[Tuple[int, int, str], ...] = ()
    max_faults: Optional[int] = None

    def __post_init__(self):
        for name in ("kill_rate", "delay_rate", "drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate!r}")
        if self.kill_rate + self.delay_rate + self.drop_rate > 1.0 + 1e-12:
            raise ConfigurationError("fault rates must sum to at most 1")
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be non-negative")
        for entry in self.scripted:
            if len(entry) != 3 or entry[2] not in ACTIONS:
                raise ConfigurationError(
                    f"scripted entries must be (slot, task_seq, action) with "
                    f"action in {ACTIONS}, got {entry!r}"
                )
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigurationError("max_faults must be None or non-negative")

    def plan_for(self, worker_slot: int, generation: int) -> "FaultPlan":
        """The deterministic per-worker schedule for one worker process."""
        return FaultPlan(self, worker_slot, generation)


class FaultPlan:
    """One worker process's deterministic sequence of fault actions."""

    def __init__(self, spec: FaultSpec, worker_slot: int, generation: int):
        self.spec = spec
        self.worker_slot = int(worker_slot)
        self.generation = int(generation)
        self._rng = np.random.default_rng(
            (int(spec.seed), self.worker_slot, self.generation)
        )
        self._task_seq = 0
        self.faults_injected = 0
        self._scripted: Dict[int, str] = (
            {seq: action for slot, seq, action in spec.scripted if slot == worker_slot}
            if generation == 0
            else {}
        )

    def next_action(self) -> Tuple[str, float]:
        """The ``(action, delay_seconds)`` for this worker's next task.

        Exactly one rng draw is consumed per call — the schedule never
        shifts with which band (or scripted override) fired earlier.
        """
        seq = self._task_seq
        self._task_seq += 1
        draw = float(self._rng.random())
        spec = self.spec
        action = self._scripted.get(seq)
        if action is None:
            if draw < spec.kill_rate:
                action = "kill"
            elif draw < spec.kill_rate + spec.delay_rate:
                action = "delay"
            elif draw < spec.kill_rate + spec.delay_rate + spec.drop_rate:
                action = "drop"
            else:
                action = "none"
        if action != "none":
            if spec.max_faults is not None and self.faults_injected >= spec.max_faults:
                return "none", 0.0
            self.faults_injected += 1
        return action, (spec.delay_seconds if action == "delay" else 0.0)

    def apply(self, action: str, delay: float) -> bool:
        """Execute an action worker-side; returns whether to report.

        ``kill`` never returns.  ``delay`` sleeps, then reports.
        ``drop`` computes-but-never-reports (the caller skips the result
        put when this returns ``False``).
        """
        if action == "kill":
            # A crash, not an exit: skip atexit/finally machinery exactly
            # like a SIGKILLed process would.
            os._exit(17)
        if action == "delay" and delay > 0:
            time.sleep(delay)
        return action != "drop"


def retry_backoff(
    attempt: int,
    base_seconds: float,
    factor: float,
    seed: int = 0,
    cap_seconds: float = 30.0,
) -> float:
    """The deterministic backoff before requeueing attempt ``attempt``.

    Exponential in the (1-based) attempt number with a seeded jitter in
    ``[0.8, 1.2)`` — jitter decorrelates retry bursts across shards, and
    seeding it on ``(seed, attempt)`` keeps the whole schedule a pure
    function of the spec (the property the retry-determinism test pins).
    """
    if attempt < 1:
        raise ConfigurationError("attempt is 1-based and must be >= 1")
    raw = base_seconds * factor ** (attempt - 1)
    jitter = float(np.random.default_rng((int(seed), int(attempt))).uniform(0.8, 1.2))
    return min(cap_seconds, raw * jitter)
