"""Multi-machine shard fan-out over ``multiprocessing.managers`` TCP.

:class:`~repro.engine.sharded.ShardedScheduler` ends at a single
machine: its transport is a fork/spawn pool.  This module extends the
same escalation waterfall across machines by overriding only the
transport hooks (``_begin_dispatch`` / ``_submit_one`` /
``_next_completed`` / ``_finish_dispatch``) with a TCP work queue — the
shard protocol has been pickle-clean since PR 2, so a shard crosses a
socket exactly as it crossed a pool pipe.

Topology
--------
The scheduler process hosts a :class:`multiprocessing.managers.BaseManager`
server (in a daemon thread — no extra process) exposing three proxies:

``task_queue``
    Shared work queue.  Workers *pull* — work stealing for heterogeneous
    fixpoint costs falls out for free: a worker that drew an easy Box
    shard comes back for more while a neighbour grinds a chzonotope
    straggler.  Nobody is assigned anything.
``result_queue``
    Upstream channel for ``claim`` / ``result`` / ``heartbeat`` /
    ``error`` / ``retired`` messages.
``control``
    One-shot distribution of the pickled ``(model, config, cache_dir,
    keep_abstractions)`` payload — each worker fetches the weights once
    at startup, exactly like the pool initializer.

Local workers are spawned as child processes of the scheduler; remote
workers on other machines join the same server by address/authkey via
:func:`run_cluster_worker` (see ``docs/service.md`` for the recipe).
Both speak the identical protocol — the fault-injection tests exercise
the TCP path even for local workers.

Sweep multiplexing
------------------
Any number of ``certify()`` / ``certify_regions()`` sweeps may run
concurrently on one scheduler (the service frontend's
``max_concurrent_batches`` does exactly that).  Every task is stamped
with a ``(sweep_id, task_id)`` pair — sweep ids are monotone across the
scheduler's lifetime, task ids monotone within a sweep — and a single
long-lived **router thread** drains the result queue, maintains the
per-sweep lease tables and hands each completed shard to the owning
sweep's completion queue.  Workers treat the stamp as an opaque token
they echo in claims and results, so multiplexing needs no worker-side
protocol change.  The exactly-once, work-stealing and fault-recovery
guarantees below hold *per sweep* under arbitrary interleaving, and a
failing sweep (retries exhausted, worker exception, timeout) fails
alone — concurrent sweeps on the same cluster keep running.

Exactly-once verdicts under faults
----------------------------------
Three mechanisms compose, none of which trusts the workers:

* **Leases**: a worker claims a task before computing it; a claim older
  than ``service.shard_timeout_seconds`` without a result marks the
  worker dead (the per-shard timeout machinery of the pool scheduler,
  reused as the health-check) and requeues the task.
* **Retry with deterministic backoff**: each reassignment waits
  :func:`repro.service.faults.retry_backoff` before requeueing; more
  than ``service.retry_max_attempts`` attempts fails the owning sweep
  loudly rather than looping.
* **First-wins dedupe**: results carry their ``(sweep_id, task_id)``
  stamp; the first result for a task resolves it and every later
  duplicate (a hung worker finally reporting after its shard was
  reassigned, or a straggler from an already finished sweep) is counted
  and dropped — no double-counted verdicts.  Shard execution is
  deterministic, so which attempt wins never changes a verdict.

Verdict-losing faults are impossible by construction: a task leaves its
sweep's lease table only when its result is routed to the waterfall (or
the sweep fails).  Dead *local* workers are detected early via process
liveness (no need to wait out the lease) and respawned at the next
generation when ``service.restart_workers``.

Queue-depth autoscaling
-----------------------
With ``service.autoscale.enabled`` the router also runs a
:class:`QueueDepthAutoscaler` tick: the shared task queue staying at or
above ``high_watermark`` for ``dwell_seconds`` grows the local pool by
one worker (bounded by ``max_workers``); staying at or below
``low_watermark`` for the dwell retires one idle worker down to
``min_workers``.  Retirement is a **pill**: a ``("retire",)`` message on
the task queue, consumed by exactly one idle worker, which acknowledges
(``retired``) and exits cleanly — a busy worker never abandons a shard
to retire, so scaling cannot lose or flip verdicts.  Grown and
fault-respawned workers share the per-slot generation counter, so
worker ids stay unique across scale churn.  Scale events surface in
:meth:`ClusterStats.as_row`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Set, Tuple

from multiprocessing.managers import BaseManager, Server

from repro.core.config import AutoscaleConfig, CraftConfig, ServiceConfig
from repro.core.results import VerificationResult
from repro.engine.sharded import (
    ShardedScheduler,
    _Shard,
    _build_worker_state,
    _execute_shard,
    default_start_method,
)
from repro.exceptions import ConfigurationError, VerificationError
from repro.mondeq.model import MonDEQ
from repro.service.faults import FaultSpec

DEFAULT_AUTHKEY = b"repro-certification-cluster"

#: Worker-side poll timeout on the task queue; bounds stop latency and
#: heartbeat cadence jitter.
_POLL_SECONDS = 0.05


class _ClusterControl:
    """Server-side holder of the worker-state payload (fetched once per
    worker over TCP instead of travelling with every task)."""

    def __init__(self, payload: bytes):
        self._payload = payload

    def payload(self) -> bytes:
        return self._payload


class _StoppableServer(Server):
    """A manager server whose accepter thread exits when stopped.

    The stock accepter treats *any* ``OSError`` from ``accept()`` as a
    transient hiccup and retries — after ``listener.close()`` that is a
    busy-spin for the life of the process.  Checking the stop event
    turns "listener closed during shutdown" into a clean exit.
    """

    def accepter(self):
        while True:
            try:
                c = self.listener.accept()
            except OSError:
                if getattr(self, "stop_event", None) is not None and (
                    self.stop_event.is_set()
                ):
                    return
                continue
            t = threading.Thread(target=self.handle_request, args=(c,))
            t.daemon = True
            t.start()


def _make_server_manager(
    task_queue: "queue.Queue",
    result_queue: "queue.Queue",
    control: _ClusterControl,
    address: Tuple[str, int],
    authkey: bytes,
) -> BaseManager:
    """A manager class owning *this* scheduler's queues.

    The registry is class-level state in ``BaseManager``, so each
    scheduler gets a fresh subclass — two live clusters in one process
    must not alias each other's queues.
    """

    class _ServerManager(BaseManager):
        _Server = _StoppableServer

    _ServerManager.register("task_queue", callable=lambda: task_queue)
    _ServerManager.register("result_queue", callable=lambda: result_queue)
    _ServerManager.register("control", callable=lambda: control)
    return _ServerManager(address=address, authkey=authkey)


class _ClientManager(BaseManager):
    """Worker-side connector; proxies only, no callables."""


_ClientManager.register("task_queue")
_ClientManager.register("result_queue")
_ClientManager.register("control")


def _serve_forever(server: Server) -> None:
    """Thread target for the in-process server.  ``serve_forever`` ends
    with ``sys.exit(0)`` (it expects to own a process); swallow the
    ``SystemExit`` so a clean stop is not reported as a thread crash."""
    try:
        server.serve_forever()
    except SystemExit:
        pass


def connect_worker_manager(address: Tuple[str, int], authkey: bytes) -> _ClientManager:
    """Connect to a cluster server; returns the proxy-bearing manager."""
    manager = _ClientManager(address=tuple(address), authkey=authkey)
    manager.connect()
    return manager


def run_cluster_worker(
    address: Tuple[str, int],
    authkey: bytes,
    worker_slot: int,
    generation: int = 0,
    faults: Optional[FaultSpec] = None,
    heartbeat_seconds: float = 0.25,
    poll_seconds: float = _POLL_SECONDS,
) -> int:
    """The cluster worker loop — run on any machine that can reach
    ``address``.

    Fetches the weights payload once, then pulls tasks until the stop
    sentinel (or a retire pill): claim, (maybe) fault, compute via the
    same :func:`~repro.engine.sharded._execute_shard` the pool workers
    run (including worker-side cache admission of final verdicts),
    report.  Task ids are opaque to the worker — it echoes whatever
    stamp the scheduler attached, which is how one worker serves many
    interleaved sweeps without knowing it.  Idle periods emit heartbeats
    so the scheduler can tell "no work" from "dead worker".
    """
    # BaseManager authenticates with the *process* authkey on the worker
    # side of the handshake as well; align it before connecting.
    multiprocessing.current_process().authkey = authkey
    manager = connect_worker_manager(address, authkey)
    tasks = manager.task_queue()
    results = manager.result_queue()
    payload = bytes(manager.control().payload())
    state = _build_worker_state(payload)
    plan = faults.plan_for(worker_slot, generation) if faults is not None else None
    worker_id = f"{worker_slot}:{generation}:{os.getpid()}"
    results.put(("heartbeat", None, worker_id, time.time()))
    last_beat = time.monotonic()
    while True:
        try:
            message = tasks.get(timeout=poll_seconds)
        except queue.Empty:
            now = time.monotonic()
            if now - last_beat >= heartbeat_seconds:
                results.put(("heartbeat", None, worker_id, time.time()))
                last_beat = now
            continue
        if message[0] == "stop":
            # Re-publish the sentinel so sibling workers drain too.
            tasks.put(message)
            return 0
        if message[0] == "retire":
            # A scale-down pill: consumed by exactly one idle worker
            # (never re-published), acknowledged so the scheduler can
            # tell a retirement from a crash, then a clean exit.  A busy
            # worker cannot reach this branch mid-shard.
            results.put(("retired", None, worker_id, time.time()))
            return 0
        _, task_id, attempt, shard = message
        results.put(("claim", task_id, worker_id, time.time()))
        action, delay = plan.next_action() if plan is not None else ("none", 0.0)
        if action == "kill":
            plan.apply(action, delay)  # never returns
        try:
            outcome = _execute_shard(state, shard)
        except Exception as error:  # pragma: no cover - defensive
            results.put(("error", task_id, worker_id, repr(error)))
            continue
        if plan is None or plan.apply(action, delay):
            results.put(("result", task_id, worker_id, outcome))
        last_beat = time.monotonic()


@dataclass
class _TaskState:
    """Scheduler-side lease record of one in-flight shard."""

    shard: _Shard
    attempts: int = 1
    claimed_by: Optional[str] = None
    claim_expires: Optional[float] = None


@dataclass
class _SweepDispatch:
    """Router-side state of one in-flight sweep: its lease table plus
    the completion queue ``_next_completed`` blocks on.  Everything a
    sweep owns hangs off this token, which is how two sweeps interleave
    on one cluster without sharing any retry state."""

    sweep_id: int
    leases: Dict[int, _TaskState] = field(default_factory=dict)
    completions: "queue.Queue" = field(default_factory=queue.Queue)
    next_task_id: int = 0
    failed: bool = False


class QueueDepthAutoscaler:
    """The pure scaling policy: watermarks + dwell over observed depth.

    Stateless apart from the two dwell timers, and fully deterministic
    given the ``observe`` call sequence — the unit battery drives it
    with an injected clock and no cluster at all.  ``observe`` returns
    ``"grow"``, ``"shrink"`` or ``None``; after an action the timers
    re-arm, so consecutive scale events are at least ``dwell_seconds``
    apart.
    """

    def __init__(
        self,
        config: AutoscaleConfig,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config
        self.clock = clock
        self._high_since: Optional[float] = None
        self._low_since: Optional[float] = None

    def observe(self, depth: int, workers: int) -> Optional[str]:
        """Fold in one (queue depth, live workers) sample."""
        config = self.config
        if not config.enabled:
            return None
        now = self.clock()
        if depth >= config.high_watermark and workers < config.max_workers:
            self._low_since = None
            if self._high_since is None:
                self._high_since = now
            elif now - self._high_since >= config.dwell_seconds:
                self._high_since = None
                return "grow"
        elif depth <= config.low_watermark and workers > config.min_workers:
            self._high_since = None
            if self._low_since is None:
                self._low_since = now
            elif now - self._low_since >= config.dwell_seconds:
                self._low_since = None
                return "shrink"
        else:
            self._high_since = None
            self._low_since = None
        return None


@dataclass
class ClusterStats:
    """Fault-recovery and scaling accounting of one :class:`ClusterScheduler`."""

    tasks: int = 0
    retries: int = 0
    duplicates_dropped: int = 0
    respawns: int = 0
    heartbeats: int = 0
    scale_up_events: int = 0
    scale_down_events: int = 0
    dead_workers: Set[str] = field(default_factory=set)

    def as_row(self) -> Dict:
        return {
            "tasks": self.tasks,
            "retries": self.retries,
            "duplicates_dropped": self.duplicates_dropped,
            "respawns": self.respawns,
            "workers_marked_dead": len(self.dead_workers),
            "scale_up_events": self.scale_up_events,
            "scale_down_events": self.scale_down_events,
        }


class ClusterScheduler(ShardedScheduler):
    """The sharded escalation waterfall over a TCP worker cluster.

    Verdict-identical to :class:`ShardedScheduler` (and therefore to the
    sequential engine — the parity contract); only the transport and its
    fault tolerance differ.  ``num_workers`` local workers are spawned
    as child processes speaking the same TCP protocol as remote joiners;
    pass ``spawn_local_workers=False`` to host a server that waits for
    remote machines only.

    ``certify``/``certify_regions`` are safe to call from any number of
    threads at once: each call is one *sweep*, multiplexed over the
    shared worker pool by the router thread (see the module docstring).

    ``timeout_seconds`` keeps its pool meaning — the bound on waiting
    for *any* shard of one sweep to complete — but here expiry first
    exhausts the lease/retry machinery; it fires only when retries are
    exhausted or no worker makes progress at all, and it fails only the
    sweep that timed out.
    """

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        num_workers: int = 2,
        batch_size: Optional[int] = None,
        cache_dir: Optional[str] = None,
        start_method: Optional[str] = None,
        timeout_seconds: float = 600.0,
        keep_abstractions: bool = False,
        service: Optional[ServiceConfig] = None,
        faults: Optional[FaultSpec] = None,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        authkey: bytes = DEFAULT_AUTHKEY,
        spawn_local_workers: bool = True,
    ):
        # Subclass state first: the base constructor eagerly calls
        # _ensure_pool(), which here starts the server + workers.
        self.service = service if service is not None else ServiceConfig()
        self.faults = faults
        self.authkey = authkey
        self.spawn_local_workers = spawn_local_workers
        self._requested_address = tuple(address)
        self.address: Optional[Tuple[str, int]] = None
        self._task_queue: "queue.Queue" = queue.Queue()
        self._result_queue: "queue.Queue" = queue.Queue()
        self._manager = None
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._local_workers: Dict[int, multiprocessing.Process] = {}
        self._generations: Dict[int, int] = {}
        self._worker_ids: Dict[int, str] = {}
        #: Guards every piece of router-shared state below (sweeps,
        #: leases, workers, requeues, stats).  RLock: router helpers
        #: call each other.
        self._lock = threading.RLock()
        self._sweeps: Dict[int, _SweepDispatch] = {}
        self._next_sweep_id = 0
        #: Worker ids whose *process* is confirmed gone (reaped), as
        #: opposed to merely lease-suspected: a suspected-hung worker may
        #: recover and keep contributing — rejecting its future claims
        #: would burn retry attempts on a healthy worker — but a crashed
        #: pid can never claim again, so its in-flight claim is stale by
        #: construction.
        self._crashed: Set[str] = set()
        self._requeue: List[Tuple[float, int, int]] = []
        self._router_thread: Optional[threading.Thread] = None
        self._router_error: Optional[BaseException] = None
        self._workers_started = False
        self._retires_pending = 0
        self._closing = False
        self.cluster_stats = ClusterStats()
        if start_method == "inline":
            raise ConfigurationError(
                "ClusterScheduler has no inline mode — its subject is the "
                "transport; use ShardedScheduler for inline runs"
            )
        self._autoscaler = QueueDepthAutoscaler(self.service.autoscale)
        super().__init__(
            model,
            config=config,
            num_workers=num_workers,
            batch_size=batch_size,
            cache_dir=cache_dir,
            start_method=start_method,
            timeout_seconds=timeout_seconds,
            keep_abstractions=keep_abstractions,
        )

    # ------------------------------------------------------------------
    # Server + worker lifecycle
    # ------------------------------------------------------------------

    @property
    def _inline(self) -> bool:
        # A 1-worker cluster still runs the TCP path — degrading to
        # inline would silently skip the machinery under test.
        return False

    def _ensure_pool(self):
        if self._closing:
            raise VerificationError("ClusterScheduler is closed")
        with self._lock:
            if self._server is None:
                control = _ClusterControl(self._payload())
                self._manager = _make_server_manager(
                    self._task_queue, self._result_queue, control,
                    self._requested_address, self.authkey,
                )
                # In-thread server (get_server), not manager.start(): no
                # extra process, and the queues stay plain local objects the
                # scheduler reads without a proxy round-trip.
                self._server = self._manager.get_server()
                self.address = tuple(self._server.address)
                self._server_thread = threading.Thread(
                    target=_serve_forever,
                    args=(self._server,),
                    name="repro-cluster-server",
                    daemon=True,
                )
                self._server_thread.start()
            if self._router_thread is None:
                self._router_thread = threading.Thread(
                    target=self._router_loop,
                    name="repro-cluster-router",
                    daemon=True,
                )
                self._router_thread.start()
            if self.spawn_local_workers and not self._workers_started:
                # Spawn the initial pool exactly once; afterwards the
                # router owns the population (fault respawns and scaling)
                # — re-filling here would undo a deliberate scale-down.
                self._workers_started = True
                initial = self.num_workers
                if self.service.autoscale.enabled:
                    initial = min(
                        max(initial, self.service.autoscale.min_workers),
                        self.service.autoscale.max_workers,
                    )
                for slot in range(initial):
                    self._spawn_worker(slot)
        return None

    def _spawn_worker(self, slot: int) -> None:
        generation = self._generations.get(slot, -1) + 1
        self._generations[slot] = generation
        context = multiprocessing.get_context(self.start_method)
        process = context.Process(
            target=run_cluster_worker,
            args=(
                self.address, self.authkey, slot, generation, self.faults,
                self.service.heartbeat_seconds,
            ),
            name=f"repro-cluster-worker-{slot}",
            daemon=True,
        )
        process.start()
        self._local_workers[slot] = process
        self._worker_ids[slot] = f"{slot}:{generation}:{process.pid}"

    def close(self) -> None:
        """Stop workers, the router and the TCP server (idempotent)."""
        self._closing = True
        if self._router_thread is not None:
            self._router_thread.join(timeout=5.0)
            self._router_thread = None
        try:
            self._task_queue.put(("stop",))
        except Exception:  # pragma: no cover - queue dead at shutdown
            pass
        for process in self._local_workers.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._local_workers.clear()
        if self._server is not None:
            try:
                if getattr(self._server, "stop_event", None) is not None:
                    self._server.stop_event.set()
                self._server.listener.close()
            except Exception:  # pragma: no cover - best-effort shutdown
                pass
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self._server = None
            self._server_thread = None

    # ------------------------------------------------------------------
    # Transport hooks (the waterfall in the base class drives these;
    # each concurrent certify() call holds its own _SweepDispatch token)
    # ------------------------------------------------------------------

    def _begin_dispatch(self) -> _SweepDispatch:
        with self._lock:
            self._check_router()
            sweep = _SweepDispatch(sweep_id=self._next_sweep_id)
            # Sweep ids are monotone across the scheduler's lifetime, so
            # a straggler result from a finished sweep can never alias a
            # fresh one — it lands in the duplicate bin.
            self._next_sweep_id += 1
            self._sweeps[sweep.sweep_id] = sweep
        return sweep

    def _submit_one(self, sweep: _SweepDispatch, shard: _Shard) -> None:
        with self._lock:
            task_id = sweep.next_task_id
            sweep.next_task_id += 1
            sweep.leases[task_id] = _TaskState(shard=shard)
            self.cluster_stats.tasks += 1
            self._task_queue.put(("task", (sweep.sweep_id, task_id), 1, shard))

    def _next_completed(
        self, sweep: _SweepDispatch
    ) -> Tuple[List[int], List[VerificationResult], str, float, Dict]:
        deadline = time.monotonic() + self.timeout_seconds
        while True:
            try:
                kind, payload = sweep.completions.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                self._check_router()
                if self._closing:
                    raise VerificationError(
                        "ClusterScheduler closed while a sweep was in flight"
                    )
                if time.monotonic() >= deadline:
                    with self._lock:
                        sweep.failed = True
                        sweep.leases.clear()
                    raise VerificationError(
                        f"cluster certification timed out: no shard of sweep "
                        f"{sweep.sweep_id} completed within "
                        f"{self.timeout_seconds}s "
                        f"({len(self._local_workers)} local workers)"
                    ) from None
                continue
            if kind == "result":
                return payload
            # A routed failure: retries exhausted or a worker exception.
            # Only this sweep dies; the cluster keeps serving the others.
            raise VerificationError(payload)

    def _finish_dispatch(self, sweep: _SweepDispatch) -> None:
        with self._lock:
            self._sweeps.pop(sweep.sweep_id, None)
            sweep.leases.clear()

    def _check_router(self) -> None:
        if self._router_error is not None:
            raise VerificationError(
                f"cluster router crashed: {self._router_error!r}"
            )
        if (
            self._router_thread is not None
            and not self._router_thread.is_alive()
            and not self._closing
        ):  # pragma: no cover - defensive
            raise VerificationError("cluster router thread died")

    # ------------------------------------------------------------------
    # The router: one long-lived loop owning leases, health and scaling
    # ------------------------------------------------------------------

    def _router_loop(self) -> None:
        try:
            while not self._closing:
                with self._lock:
                    self._flush_requeues()
                    self._expire_leases()
                    self._reap_local_workers()
                    self._autoscale_tick()
                try:
                    message = self._result_queue.get(timeout=_POLL_SECONDS)
                except queue.Empty:
                    continue
                with self._lock:
                    self._route_message(message)
        except BaseException as error:  # pragma: no cover - defensive
            with self._lock:
                self._router_error = error
                for sweep in self._sweeps.values():
                    sweep.completions.put(
                        ("failure", f"cluster router crashed: {error!r}")
                    )

    def _route_message(self, message: Tuple) -> None:
        kind = message[0]
        if kind == "heartbeat":
            self.cluster_stats.heartbeats += 1
            return
        if kind == "retired":
            self._finish_retirement(message[2])
            return
        if kind == "claim":
            _, key, worker_id, _stamp = message
            sweep, state = self._lease_for(key)
            if state is None:
                return
            if worker_id in self._crashed:
                # The claimer was reaped before its claim drained
                # (a crash right after claiming): reassign now
                # instead of waiting out a lease nobody holds.
                self._schedule_retry(sweep, key[1], state)
            else:
                state.claimed_by = worker_id
                state.claim_expires = (
                    time.monotonic() + self.service.shard_timeout_seconds
                )
            return
        if kind == "error":
            _, key, worker_id, detail = message
            sweep, state = self._lease_for(key)
            if sweep is None:
                return
            self._fail_sweep(
                sweep,
                f"cluster worker {worker_id} failed shard {key[1]} of sweep "
                f"{sweep.sweep_id}: {detail}",
            )
            return
        # "result"
        _, key, worker_id, outcome = message
        sweep = self._sweeps.get(key[0])
        state = sweep.leases.pop(key[1], None) if sweep is not None else None
        if state is None:
            # A reassigned shard's original owner finally reported
            # (hang/drop recovery), or the owning sweep already finished
            # or failed: first result won, drop this one.
            self.cluster_stats.duplicates_dropped += 1
            return
        sweep.completions.put(("result", outcome))

    def _lease_for(
        self, key: Tuple[int, int]
    ) -> Tuple[Optional[_SweepDispatch], Optional[_TaskState]]:
        sweep = self._sweeps.get(key[0])
        if sweep is None:
            return None, None
        return sweep, sweep.leases.get(key[1])

    def _fail_sweep(self, sweep: _SweepDispatch, message: str) -> None:
        """Fail one sweep, leaving every other sweep (and the cluster
        itself) running.  Clearing the lease table turns the sweep's
        in-flight results into counted duplicates."""
        if sweep.failed:
            return
        sweep.failed = True
        sweep.leases.clear()
        sweep.completions.put(("failure", message))

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------

    def _expire_leases(self) -> None:
        """The health-check: a claim without a result inside the shard
        timeout marks its worker dead and reassigns the shard (plus any
        other shards that worker holds — no point waiting them out)."""
        now = time.monotonic()
        expired = [
            state
            for sweep in self._sweeps.values()
            for state in sweep.leases.values()
            if state.claim_expires is not None and now >= state.claim_expires
        ]
        for state in expired:
            self._mark_worker_dead(state.claimed_by)

    def _mark_worker_dead(self, worker_id: Optional[str]) -> None:
        if worker_id is None:  # pragma: no cover - defensive
            return
        self.cluster_stats.dead_workers.add(worker_id)
        for sweep in list(self._sweeps.values()):
            for task_id, state in list(sweep.leases.items()):
                if state.claimed_by == worker_id:
                    self._schedule_retry(sweep, task_id, state)

    def _reap_local_workers(self) -> None:
        """Fast path for crashed *local* workers: process liveness beats
        waiting out the lease.  Respawns the slot at the next generation
        when the service config allows.  A zero exit code is a clean
        leave — the stop sentinel or a retire pill — never a crash, so
        it is neither marked dead nor respawned (this is what keeps the
        reaper from resurrecting a deliberately retired worker when it
        notices the death before the ``retired`` message drains)."""
        if self._closing:
            return
        for slot, process in list(self._local_workers.items()):
            if process.is_alive():
                continue
            del self._local_workers[slot]
            if process.exitcode == 0:
                continue
            worker_id = self._worker_ids.get(slot)
            if worker_id is not None:
                self._crashed.add(worker_id)
            self._mark_worker_dead(worker_id)
            if self.spawn_local_workers and self.service.restart_workers:
                self._spawn_worker(slot)
                self.cluster_stats.respawns += 1

    def _schedule_retry(
        self, sweep: _SweepDispatch, task_id: int, state: _TaskState
    ) -> None:
        from repro.service.faults import retry_backoff

        if state.attempts >= self.service.retry_max_attempts:
            self._fail_sweep(
                sweep,
                f"shard {task_id} of sweep {sweep.sweep_id} failed after "
                f"{state.attempts} attempts (last worker: {state.claimed_by}) "
                f"— giving up",
            )
            return
        state.attempts += 1
        state.claimed_by = None
        state.claim_expires = None
        delay = retry_backoff(
            state.attempts - 1,
            self.service.retry_backoff_seconds,
            self.service.retry_backoff_factor,
            seed=self.faults.seed if self.faults is not None else 0,
        )
        self.cluster_stats.retries += 1
        heappush(
            self._requeue, (time.monotonic() + delay, sweep.sweep_id, task_id)
        )

    def _flush_requeues(self) -> None:
        now = time.monotonic()
        while self._requeue and self._requeue[0][0] <= now:
            _, sweep_id, task_id = heappop(self._requeue)
            sweep = self._sweeps.get(sweep_id)
            state = sweep.leases.get(task_id) if sweep is not None else None
            if state is None:
                continue  # resolved (or sweep gone) while waiting out the backoff
            self._task_queue.put(
                ("task", (sweep_id, task_id), state.attempts, state.shard)
            )

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------

    def _autoscale_tick(self) -> None:
        config = self.service.autoscale
        if not config.enabled or not self.spawn_local_workers or self._closing:
            return
        # Pills in flight occupy queue slots and still-live-but-leaving
        # workers occupy the pool; correct both out of the observation so
        # a pending retirement is never double-counted.
        depth = max(0, self._task_queue.qsize() - self._retires_pending)
        workers = len(self._local_workers) - self._retires_pending
        action = self._autoscaler.observe(depth, workers)
        if action == "grow":
            free = [
                slot
                for slot in range(max(config.max_workers, self.num_workers))
                if slot not in self._local_workers
            ]
            if not free:  # pragma: no cover - pending retires hold slots
                return
            self._spawn_worker(min(free))
            self.cluster_stats.scale_up_events += 1
        elif action == "shrink":
            self._retires_pending += 1
            self._task_queue.put(("retire",))
            self.cluster_stats.scale_down_events += 1

    def _finish_retirement(self, worker_id: str) -> None:
        self._retires_pending = max(0, self._retires_pending - 1)
        slot = int(worker_id.split(":", 1)[0])
        if self._worker_ids.get(slot) == worker_id:
            process = self._local_workers.pop(slot, None)
            if process is not None:
                # The worker exits right after acknowledging; reap it so
                # the slot is immediately reusable by a later grow.
                process.join(timeout=2.0)
