"""Multi-machine shard fan-out over ``multiprocessing.managers`` TCP.

:class:`~repro.engine.sharded.ShardedScheduler` ends at a single
machine: its transport is a fork/spawn pool.  This module extends the
same escalation waterfall across machines by overriding only the
transport hooks (``_begin_dispatch`` / ``_submit_one`` /
``_next_completed``) with a TCP work queue — the shard protocol has been
pickle-clean since PR 2, so a shard crosses a socket exactly as it
crossed a pool pipe.

Topology
--------
The scheduler process hosts a :class:`multiprocessing.managers.BaseManager`
server (in a daemon thread — no extra process) exposing three proxies:

``task_queue``
    Shared work queue.  Workers *pull* — work stealing for heterogeneous
    fixpoint costs falls out for free: a worker that drew an easy Box
    shard comes back for more while a neighbour grinds a chzonotope
    straggler.  Nobody is assigned anything.
``result_queue``
    Upstream channel for ``claim`` / ``result`` / ``heartbeat`` /
    ``error`` messages.
``control``
    One-shot distribution of the pickled ``(model, config, cache_dir,
    keep_abstractions)`` payload — each worker fetches the weights once
    at startup, exactly like the pool initializer.

Local workers are spawned as child processes of the scheduler; remote
workers on other machines join the same server by address/authkey via
:func:`run_cluster_worker` (see ``docs/service.md`` for the recipe).
Both speak the identical protocol — the fault-injection tests exercise
the TCP path even for local workers.

Exactly-once verdicts under faults
----------------------------------
Three mechanisms compose, none of which trusts the workers:

* **Leases**: a worker claims a task before computing it; a claim older
  than ``service.shard_timeout_seconds`` without a result marks the
  worker dead (the per-shard timeout machinery of the pool scheduler,
  reused as the health-check) and requeues the task.
* **Retry with deterministic backoff**: each reassignment waits
  :func:`repro.service.faults.retry_backoff` before requeueing; more
  than ``service.retry_max_attempts`` attempts fails the sweep loudly
  rather than looping.
* **First-wins dedupe**: results carry their task id; the first result
  for a task resolves it and every later duplicate (a hung worker
  finally reporting after its shard was reassigned) is counted and
  dropped — no double-counted verdicts.  Shard execution is
  deterministic, so which attempt wins never changes a verdict.

Verdict-losing faults are impossible by construction: a task leaves the
lease table only when its result is returned to the waterfall (or the
sweep fails).  Dead *local* workers are detected early via process
liveness (no need to wait out the lease) and respawned at the next
generation when ``service.restart_workers``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from multiprocessing.managers import BaseManager, Server

from repro.core.config import CraftConfig, ServiceConfig
from repro.core.results import VerificationResult
from repro.engine.sharded import (
    ShardedScheduler,
    _Shard,
    _build_worker_state,
    _execute_shard,
    default_start_method,
)
from repro.exceptions import ConfigurationError, VerificationError
from repro.mondeq.model import MonDEQ
from repro.service.faults import FaultSpec

DEFAULT_AUTHKEY = b"repro-certification-cluster"

#: Worker-side poll timeout on the task queue; bounds stop latency and
#: heartbeat cadence jitter.
_POLL_SECONDS = 0.05


class _ClusterControl:
    """Server-side holder of the worker-state payload (fetched once per
    worker over TCP instead of travelling with every task)."""

    def __init__(self, payload: bytes):
        self._payload = payload

    def payload(self) -> bytes:
        return self._payload


class _StoppableServer(Server):
    """A manager server whose accepter thread exits when stopped.

    The stock accepter treats *any* ``OSError`` from ``accept()`` as a
    transient hiccup and retries — after ``listener.close()`` that is a
    busy-spin for the life of the process.  Checking the stop event
    turns "listener closed during shutdown" into a clean exit.
    """

    def accepter(self):
        while True:
            try:
                c = self.listener.accept()
            except OSError:
                if getattr(self, "stop_event", None) is not None and (
                    self.stop_event.is_set()
                ):
                    return
                continue
            t = threading.Thread(target=self.handle_request, args=(c,))
            t.daemon = True
            t.start()


def _make_server_manager(
    task_queue: "queue.Queue",
    result_queue: "queue.Queue",
    control: _ClusterControl,
    address: Tuple[str, int],
    authkey: bytes,
) -> BaseManager:
    """A manager class owning *this* scheduler's queues.

    The registry is class-level state in ``BaseManager``, so each
    scheduler gets a fresh subclass — two live clusters in one process
    must not alias each other's queues.
    """

    class _ServerManager(BaseManager):
        _Server = _StoppableServer

    _ServerManager.register("task_queue", callable=lambda: task_queue)
    _ServerManager.register("result_queue", callable=lambda: result_queue)
    _ServerManager.register("control", callable=lambda: control)
    return _ServerManager(address=address, authkey=authkey)


class _ClientManager(BaseManager):
    """Worker-side connector; proxies only, no callables."""


_ClientManager.register("task_queue")
_ClientManager.register("result_queue")
_ClientManager.register("control")


def _serve_forever(server: Server) -> None:
    """Thread target for the in-process server.  ``serve_forever`` ends
    with ``sys.exit(0)`` (it expects to own a process); swallow the
    ``SystemExit`` so a clean stop is not reported as a thread crash."""
    try:
        server.serve_forever()
    except SystemExit:
        pass


def connect_worker_manager(address: Tuple[str, int], authkey: bytes) -> _ClientManager:
    """Connect to a cluster server; returns the proxy-bearing manager."""
    manager = _ClientManager(address=tuple(address), authkey=authkey)
    manager.connect()
    return manager


def run_cluster_worker(
    address: Tuple[str, int],
    authkey: bytes,
    worker_slot: int,
    generation: int = 0,
    faults: Optional[FaultSpec] = None,
    heartbeat_seconds: float = 0.25,
    poll_seconds: float = _POLL_SECONDS,
) -> int:
    """The cluster worker loop — run on any machine that can reach
    ``address``.

    Fetches the weights payload once, then pulls tasks until the stop
    sentinel: claim, (maybe) fault, compute via the same
    :func:`~repro.engine.sharded._execute_shard` the pool workers run
    (including worker-side cache admission of final verdicts), report.
    Idle periods emit heartbeats so the scheduler can tell "no work"
    from "dead worker".
    """
    # BaseManager authenticates with the *process* authkey on the worker
    # side of the handshake as well; align it before connecting.
    multiprocessing.current_process().authkey = authkey
    manager = connect_worker_manager(address, authkey)
    tasks = manager.task_queue()
    results = manager.result_queue()
    payload = bytes(manager.control().payload())
    state = _build_worker_state(payload)
    plan = faults.plan_for(worker_slot, generation) if faults is not None else None
    worker_id = f"{worker_slot}:{generation}:{os.getpid()}"
    results.put(("heartbeat", None, worker_id, time.time()))
    last_beat = time.monotonic()
    while True:
        try:
            message = tasks.get(timeout=poll_seconds)
        except queue.Empty:
            now = time.monotonic()
            if now - last_beat >= heartbeat_seconds:
                results.put(("heartbeat", None, worker_id, time.time()))
                last_beat = now
            continue
        if message[0] == "stop":
            # Re-publish the sentinel so sibling workers drain too.
            tasks.put(message)
            return 0
        _, task_id, attempt, shard = message
        results.put(("claim", task_id, worker_id, time.time()))
        action, delay = plan.next_action() if plan is not None else ("none", 0.0)
        if action == "kill":
            plan.apply(action, delay)  # never returns
        try:
            outcome = _execute_shard(state, shard)
        except Exception as error:  # pragma: no cover - defensive
            results.put(("error", task_id, worker_id, repr(error)))
            continue
        if plan is None or plan.apply(action, delay):
            results.put(("result", task_id, worker_id, outcome))
        last_beat = time.monotonic()


@dataclass
class _TaskState:
    """Scheduler-side lease record of one in-flight shard."""

    shard: _Shard
    attempts: int = 1
    claimed_by: Optional[str] = None
    claim_expires: Optional[float] = None


@dataclass
class ClusterStats:
    """Fault-recovery accounting of one :class:`ClusterScheduler`."""

    tasks: int = 0
    retries: int = 0
    duplicates_dropped: int = 0
    respawns: int = 0
    heartbeats: int = 0
    dead_workers: Set[str] = field(default_factory=set)

    def as_row(self) -> Dict:
        return {
            "tasks": self.tasks,
            "retries": self.retries,
            "duplicates_dropped": self.duplicates_dropped,
            "respawns": self.respawns,
            "workers_marked_dead": len(self.dead_workers),
        }


class ClusterScheduler(ShardedScheduler):
    """The sharded escalation waterfall over a TCP worker cluster.

    Verdict-identical to :class:`ShardedScheduler` (and therefore to the
    sequential engine — the parity contract); only the transport and its
    fault tolerance differ.  ``num_workers`` local workers are spawned
    as child processes speaking the same TCP protocol as remote joiners;
    pass ``spawn_local_workers=False`` to host a server that waits for
    remote machines only.

    ``timeout_seconds`` keeps its pool meaning — the bound on waiting
    for *any* shard to complete — but here expiry first exhausts the
    lease/retry machinery; it fires only when retries are exhausted or
    no worker makes progress at all.
    """

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        num_workers: int = 2,
        batch_size: Optional[int] = None,
        cache_dir: Optional[str] = None,
        start_method: Optional[str] = None,
        timeout_seconds: float = 600.0,
        keep_abstractions: bool = False,
        service: Optional[ServiceConfig] = None,
        faults: Optional[FaultSpec] = None,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        authkey: bytes = DEFAULT_AUTHKEY,
        spawn_local_workers: bool = True,
    ):
        # Subclass state first: the base constructor eagerly calls
        # _ensure_pool(), which here starts the server + workers.
        self.service = service if service is not None else ServiceConfig()
        self.faults = faults
        self.authkey = authkey
        self.spawn_local_workers = spawn_local_workers
        self._requested_address = tuple(address)
        self.address: Optional[Tuple[str, int]] = None
        self._task_queue: "queue.Queue" = queue.Queue()
        self._result_queue: "queue.Queue" = queue.Queue()
        self._manager = None
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._local_workers: Dict[int, multiprocessing.Process] = {}
        self._generations: Dict[int, int] = {}
        self._worker_ids: Dict[int, str] = {}
        self._leases: Dict[int, _TaskState] = {}
        #: Worker ids whose *process* is confirmed gone (reaped), as
        #: opposed to merely lease-suspected: a suspected-hung worker may
        #: recover and keep contributing — rejecting its future claims
        #: would burn retry attempts on a healthy worker — but a crashed
        #: pid can never claim again, so its in-flight claim is stale by
        #: construction.
        self._crashed: Set[str] = set()
        self._requeue: List[Tuple[float, int]] = []
        self._next_task_id = 0
        self._closing = False
        self.cluster_stats = ClusterStats()
        if start_method == "inline":
            raise ConfigurationError(
                "ClusterScheduler has no inline mode — its subject is the "
                "transport; use ShardedScheduler for inline runs"
            )
        super().__init__(
            model,
            config=config,
            num_workers=num_workers,
            batch_size=batch_size,
            cache_dir=cache_dir,
            start_method=start_method,
            timeout_seconds=timeout_seconds,
            keep_abstractions=keep_abstractions,
        )

    # ------------------------------------------------------------------
    # Server + worker lifecycle
    # ------------------------------------------------------------------

    @property
    def _inline(self) -> bool:
        # A 1-worker cluster still runs the TCP path — degrading to
        # inline would silently skip the machinery under test.
        return False

    def _ensure_pool(self):
        if self._closing:
            raise VerificationError("ClusterScheduler is closed")
        if self._server is None:
            control = _ClusterControl(self._payload())
            self._manager = _make_server_manager(
                self._task_queue, self._result_queue, control,
                self._requested_address, self.authkey,
            )
            # In-thread server (get_server), not manager.start(): no
            # extra process, and the queues stay plain local objects the
            # scheduler reads without a proxy round-trip.
            self._server = self._manager.get_server()
            self.address = tuple(self._server.address)
            self._server_thread = threading.Thread(
                target=_serve_forever,
                args=(self._server,),
                name="repro-cluster-server",
                daemon=True,
            )
            self._server_thread.start()
        if self.spawn_local_workers:
            for slot in range(self.num_workers):
                if slot not in self._local_workers:
                    self._spawn_worker(slot)
        return None

    def _spawn_worker(self, slot: int) -> None:
        generation = self._generations.get(slot, -1) + 1
        self._generations[slot] = generation
        context = multiprocessing.get_context(self.start_method)
        process = context.Process(
            target=run_cluster_worker,
            args=(
                self.address, self.authkey, slot, generation, self.faults,
                self.service.heartbeat_seconds,
            ),
            name=f"repro-cluster-worker-{slot}",
            daemon=True,
        )
        process.start()
        self._local_workers[slot] = process
        self._worker_ids[slot] = f"{slot}:{generation}:{process.pid}"

    def close(self) -> None:
        """Stop workers and the TCP server (idempotent, like the pool)."""
        self._closing = True
        try:
            self._task_queue.put(("stop",))
        except Exception:  # pragma: no cover - queue dead at shutdown
            pass
        for process in self._local_workers.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._local_workers.clear()
        if self._server is not None:
            try:
                if getattr(self._server, "stop_event", None) is not None:
                    self._server.stop_event.set()
                self._server.listener.close()
            except Exception:  # pragma: no cover - best-effort shutdown
                pass
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self._server = None
            self._server_thread = None

    # ------------------------------------------------------------------
    # Transport hooks (the waterfall in the base class drives these)
    # ------------------------------------------------------------------

    def _begin_dispatch(self) -> None:
        # Task ids are monotone across the scheduler's lifetime, so a
        # straggler result from a *previous* sweep can never alias a
        # fresh lease — it lands in the duplicate bin.
        self._leases.clear()
        self._requeue.clear()

    def _submit_one(self, shard: _Shard) -> None:
        task_id = self._next_task_id
        self._next_task_id += 1
        self._leases[task_id] = _TaskState(shard=shard)
        self.cluster_stats.tasks += 1
        self._task_queue.put(("task", task_id, 1, shard))

    def _next_completed(
        self,
    ) -> Tuple[List[int], List[VerificationResult], str, float, Dict]:
        deadline = time.monotonic() + self.timeout_seconds
        while True:
            self._flush_requeues()
            self._expire_leases()
            self._reap_local_workers()
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if time.monotonic() >= deadline:
                    self.close()
                    raise VerificationError(
                        f"cluster certification timed out: no shard completed "
                        f"within {self.timeout_seconds}s "
                        f"({self.num_workers} local workers) — cluster stopped"
                    ) from None
                continue
            kind = message[0]
            if kind == "heartbeat":
                self.cluster_stats.heartbeats += 1
                continue
            if kind == "claim":
                _, task_id, worker_id, _stamp = message
                state = self._leases.get(task_id)
                if state is not None:
                    if worker_id in self._crashed:
                        # The claimer was reaped before its claim drained
                        # (a crash right after claiming): reassign now
                        # instead of waiting out a lease nobody holds.
                        self._schedule_retry(task_id, state)
                    else:
                        state.claimed_by = worker_id
                        state.claim_expires = (
                            time.monotonic() + self.service.shard_timeout_seconds
                        )
                continue
            if kind == "error":
                _, task_id, worker_id, detail = message
                self.close()
                raise VerificationError(
                    f"cluster worker {worker_id} failed shard {task_id}: {detail}"
                )
            _, task_id, worker_id, outcome = message
            state = self._leases.pop(task_id, None)
            if state is None:
                # A reassigned shard's original owner finally reported
                # (hang/drop recovery): first result won, drop this one.
                self.cluster_stats.duplicates_dropped += 1
                continue
            return outcome

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------

    def _expire_leases(self) -> None:
        """The health-check: a claim without a result inside the shard
        timeout marks its worker dead and reassigns the shard (plus any
        other shards that worker holds — no point waiting them out)."""
        now = time.monotonic()
        expired = [
            (task_id, state)
            for task_id, state in self._leases.items()
            if state.claim_expires is not None and now >= state.claim_expires
        ]
        for task_id, state in expired:
            self._mark_worker_dead(state.claimed_by)

    def _mark_worker_dead(self, worker_id: Optional[str]) -> None:
        if worker_id is None:  # pragma: no cover - defensive
            return
        self.cluster_stats.dead_workers.add(worker_id)
        for task_id, state in list(self._leases.items()):
            if state.claimed_by == worker_id:
                self._schedule_retry(task_id, state)

    def _reap_local_workers(self) -> None:
        """Fast path for crashed *local* workers: process liveness beats
        waiting out the lease.  Respawns the slot at the next generation
        when the service config allows."""
        if self._closing:
            return
        for slot, process in list(self._local_workers.items()):
            if process.is_alive():
                continue
            del self._local_workers[slot]
            worker_id = self._worker_ids.get(slot)
            if worker_id is not None:
                self._crashed.add(worker_id)
            self._mark_worker_dead(worker_id)
            if self.spawn_local_workers and self.service.restart_workers:
                self._spawn_worker(slot)
                self.cluster_stats.respawns += 1

    def _schedule_retry(self, task_id: int, state: _TaskState) -> None:
        from repro.service.faults import retry_backoff

        if state.attempts >= self.service.retry_max_attempts:
            self.close()
            raise VerificationError(
                f"shard {task_id} failed after {state.attempts} attempts "
                f"(last worker: {state.claimed_by}) — giving up"
            )
        state.attempts += 1
        state.claimed_by = None
        state.claim_expires = None
        delay = retry_backoff(
            state.attempts - 1,
            self.service.retry_backoff_seconds,
            self.service.retry_backoff_factor,
            seed=self.faults.seed if self.faults is not None else 0,
        )
        self.cluster_stats.retries += 1
        heappush(self._requeue, (time.monotonic() + delay, task_id))

    def _flush_requeues(self) -> None:
        now = time.monotonic()
        while self._requeue and self._requeue[0][0] <= now:
            _, task_id = heappop(self._requeue)
            state = self._leases.get(task_id)
            if state is None:
                continue  # resolved while waiting out the backoff
            self._task_queue.put(("task", task_id, state.attempts, state.shard))
