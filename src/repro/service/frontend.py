"""The async admission frontend of the certification service.

A long-lived :class:`CertificationFrontend` accepts certification
requests — ``(model fingerprint, region batch, epsilon, deadline,
budget)`` — from any number of concurrent clients, and stands between
them and the engines:

Admission
    Every cell is first looked up in this process's
    :class:`~repro.engine.cache.TieredVerdictCache` view (LRU →
    disk → dominance; the view auto-refreshes on the mtime staleness
    bound, so entries published by cluster workers or *other* service
    processes are served without an engine touch).  Hits stream back
    immediately; misses are queued for dispatch.
Coalescing
    Queued cells are grouped by **batch signature** — ``(model
    fingerprint, config signature, epsilon, clip bounds)`` — and held
    for ``service.coalesce_window_seconds`` so compatible requests
    arriving together merge into one engine pass (up to
    ``service.max_batch_cells``).  Cells of *different* signatures are
    never merged: a batch is assembled from exactly one group, so the
    coalescing invariant is structural, and ``dispatch_log`` records
    every assembled batch for the property tests to audit.
Deadlines and budgets
    A request's deadline bounds its *queueing*: cells not started by the
    deadline resolve as ``expired`` (no verdict — an expired cell is
    never reported as anything else, in particular never as a
    certificate).  Cells already inside an engine when the deadline
    passes complete and serve late — an engine pass is not preemptible.
    A request's budget caps the *engine* cells it may consume: cache
    hits are free, and admissions beyond the budget resolve as
    ``cancelled`` (reason ``"budget"``) at submit time.  Client
    cancellation removes the request's unstarted cells from the queues —
    cells of other requests coalesced into the same group stay queued
    (that is the "requeue" contract: cancelling one client never drops
    a neighbour's work).

Conservation
    Every admitted cell resolves to exactly one terminal event:
    ``served + cancelled + expired + failed == submitted`` (``failed``
    only on backend exceptions).  The hypothesis battery in
    ``tests/service/test_frontend.py`` drives arbitrary interleavings of
    admissions, cancellations and deadline expiries against this
    invariant.

The frontend is transport-agnostic about execution: a *backend* is
anything with the scheduler ``certify(xs, labels, epsilon, clip_min,
clip_max) -> EngineReport`` contract —
:class:`~repro.engine.scheduler.BatchCertificationScheduler` (default),
:class:`~repro.engine.sharded.ShardedScheduler`, or
:class:`~repro.service.cluster.ClusterScheduler` for multi-machine
fan-out.  Engine calls run in the event loop's executor, so the loop
keeps admitting and streaming while engines grind; a per-backend
semaphore bounds them at ``service.max_concurrent_batches``
simultaneous passes, so distinct coalescing groups — different models,
epsilons or clip ranges — certify in parallel when the backend is
concurrent-caller-safe (every scheduler above is), without ever turning
the executor into an unbounded free-for-all.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CraftConfig, ServiceConfig
from repro.core.results import VerificationResult
from repro.engine.cache import (
    RegionQuery,
    TieredVerdictCache,
    config_fingerprint,
    weights_hash,
)
from repro.exceptions import ConfigurationError, VerificationError
from repro.mondeq.model import MonDEQ

#: Terminal cell states, in event ``status`` form.
TERMINAL_STATUSES = ("served", "cancelled", "expired", "failed")

#: Default staleness bound of the frontend's cache view when the model's
#: own :class:`~repro.core.config.CacheConfig` leaves ``refresh_seconds``
#: unset — a long-lived frontend must not serve a snapshot frozen at
#: registration time.
DEFAULT_VIEW_REFRESH_SECONDS = 0.25


@dataclass(frozen=True)
class VerdictEvent:
    """One streamed per-cell resolution."""

    request_id: str
    #: Position of the cell inside its request's batch.
    index: int
    #: One of :data:`TERMINAL_STATUSES`.
    status: str
    #: The verdict for ``served`` cells; ``None`` otherwise — an expired
    #: or cancelled cell has *no* verdict, certified or not.
    result: Optional[VerificationResult]
    reason: str = ""
    #: Which tier answered a served cell without an engine pass
    #: (``"lru"``/``"disk"``/``"dominance"``), or ``None`` for engine
    #: verdicts.
    cache_tier: Optional[str] = None
    latency_seconds: float = 0.0

    @property
    def certified(self) -> bool:
        return self.result is not None and self.result.certified


class RequestHandle:
    """A client's view of one submitted request: an event stream plus
    terminal-state accounting."""

    def __init__(self, request_id: str, total: int):
        self.request_id = request_id
        self.total = total
        self.counts: Dict[str, int] = {status: 0 for status in TERMINAL_STATUSES}
        self._events: "asyncio.Queue[VerdictEvent]" = asyncio.Queue()
        self._resolved = 0
        self.done = asyncio.Event()
        if total == 0:
            self.done.set()

    @property
    def served(self) -> int:
        return self.counts["served"]

    @property
    def cancelled(self) -> int:
        return self.counts["cancelled"]

    @property
    def expired(self) -> int:
        return self.counts["expired"]

    @property
    def failed(self) -> int:
        return self.counts["failed"]

    @property
    def resolved(self) -> int:
        return self._resolved

    def conserved(self) -> bool:
        """The conservation invariant, as a predicate on this request."""
        return sum(self.counts.values()) == self._resolved <= self.total

    def _push(self, event: VerdictEvent) -> None:
        self.counts[event.status] += 1
        self._resolved += 1
        self._events.put_nowait(event)
        if self._resolved >= self.total:
            self.done.set()

    async def events(self):
        """Async-iterate the request's events until every cell resolved."""
        delivered = 0
        while delivered < self.total:
            yield await self._events.get()
            delivered += 1

    async def collect(self) -> List[VerdictEvent]:
        """Await completion; returns all events (arrival order)."""
        return [event async for event in self.events()]


@dataclass
class _Cell:
    """One admitted (center, target) query on its way to a verdict."""

    request_id: str
    index: int
    query: RegionQuery
    group: Tuple
    handle: RequestHandle
    admitted_at: float
    #: Absolute (clock) expiry, or ``None`` for no deadline.
    deadline: Optional[float]
    started: bool = False


@dataclass
class _ModelEntry:
    """One registered (model, config, backend) the frontend serves."""

    fingerprint: str
    model: MonDEQ
    config: CraftConfig
    backend: object
    signature: str
    cache: Optional[TieredVerdictCache]


@dataclass
class FrontendStats:
    """Service-level accounting across all requests."""

    submitted: int = 0
    served: int = 0
    cancelled: int = 0
    expired: int = 0
    failed: int = 0
    cache_hits: int = 0
    engine_cells: int = 0
    engine_batches: int = 0
    #: Most engine passes ever in flight at once (across all backends);
    #: ``service.max_concurrent_batches`` bounds it per backend.
    concurrent_batches_peak: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.submitted if self.submitted else 0.0

    def as_row(self) -> Dict:
        return {
            "submitted": self.submitted,
            "served": self.served,
            "cancelled": self.cancelled,
            "expired": self.expired,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "engine_cells": self.engine_cells,
            "engine_batches": self.engine_batches,
            "concurrent_batches_peak": self.concurrent_batches_peak,
            "hit_rate": round(self.hit_rate, 4),
        }


class CertificationFrontend:
    """Async admission queue in front of the certification engines.

    ``clock`` is injectable (monotonic seconds) so the deadline/budget
    semantics are testable without wall-clock sleeps; production leaves
    the default.
    """

    def __init__(
        self,
        service: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.service = service if service is not None else ServiceConfig()
        self.clock = clock
        self.stats = FrontendStats()
        #: Engine batches assembled, for coalescing-invariant audits:
        #: ``{"group", "cells", "request_ids"}`` rows.  Bounded by
        #: ``service.dispatch_log_limit`` (oldest rows evicted) so a
        #: long-lived frontend does not grow without bound.
        self.dispatch_log: Deque[Dict] = deque(
            maxlen=self.service.dispatch_log_limit
        )
        self._entries: Dict[str, _ModelEntry] = {}
        self._groups: Dict[Tuple, List[_Cell]] = {}
        self._group_opened_at: Dict[Tuple, float] = {}
        #: Handles of *unresolved* requests only — popped on terminal
        #: resolution, so request state never accumulates.
        self._handles: Dict[str, RequestHandle] = {}
        self._dispatcher: Optional[asyncio.Task] = None
        self._batches: set = set()
        #: One semaphore per registered backend object, lazily built:
        #: ``service.max_concurrent_batches`` engine passes may run at
        #: once per backend (two models sharing one backend share its
        #: bound; distinct backends run independently).
        self._batch_slots: Dict[int, asyncio.Semaphore] = {}
        self._inflight_batches = 0
        self._wake: Optional[asyncio.Event] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_model(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        backend: Optional[object] = None,
        cache_dir: Optional[str] = None,
    ) -> str:
        """Register a (model, config) pair; returns its fingerprint.

        The fingerprint hashes the weights *and* the config signature —
        two registrations of the same weights under different
        verification configs are distinct models to the service, so
        their traffic can never coalesce.  ``backend`` defaults to a
        :class:`~repro.engine.scheduler.BatchCertificationScheduler`
        over ``cache_dir``.
        """
        config = config if config is not None else CraftConfig()
        signature = config_fingerprint(config)
        fingerprint = f"{weights_hash(model)[:16]}-{signature[:16]}"
        if backend is None:
            from repro.engine.scheduler import BatchCertificationScheduler

            backend = BatchCertificationScheduler(model, config, cache_dir=cache_dir)
        cache = None
        if cache_dir is not None:
            # The frontend's own cache view: the backend's cache lives on
            # executor threads, and TieredVerdictCache is not
            # thread-safe — so the event loop consults a separate view
            # over the same directory, armed with the staleness bound.
            cache_config = config.cache
            if cache_config.refresh_seconds is None:
                cache_config = replace(
                    cache_config, refresh_seconds=DEFAULT_VIEW_REFRESH_SECONDS
                )
            cache = TieredVerdictCache(
                cache_dir, config, weights_hash(model), cache_config=cache_config
            )
        self._entries[fingerprint] = _ModelEntry(
            fingerprint=fingerprint, model=model, config=config,
            backend=backend, signature=signature, cache=cache,
        )
        return fingerprint

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    async def submit(
        self,
        fingerprint: str,
        centers: np.ndarray,
        targets: Sequence[int],
        epsilon: float,
        deadline_seconds: Optional[float] = None,
        budget_cells: Optional[int] = None,
        clip_min: Optional[float] = 0.0,
        clip_max: Optional[float] = 1.0,
    ) -> RequestHandle:
        """Admit one request; returns its streaming handle immediately.

        Cache hits resolve before this returns; everything else resolves
        through the handle's event stream.
        """
        if self._closed:
            raise VerificationError("frontend is closed")
        entry = self._entries.get(fingerprint)
        if entry is None:
            raise ConfigurationError(f"unknown model fingerprint {fingerprint!r}")
        if deadline_seconds is None:
            deadline_seconds = self.service.default_deadline_seconds
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ConfigurationError("deadline_seconds must be non-negative")
        if budget_cells is None:
            budget_cells = self.service.default_budget_cells
        centers = np.atleast_2d(np.asarray(centers, dtype=float))
        targets = np.asarray(targets, dtype=int).reshape(-1)
        if centers.shape[0] != targets.shape[0]:
            raise VerificationError("centers and targets must have matching lengths")

        request_id = uuid.uuid4().hex[:12]
        handle = RequestHandle(request_id, total=centers.shape[0])
        self._handles[request_id] = handle
        engine_cells_admitted = 0
        self.stats.submitted += handle.total
        now = self.clock()
        deadline = now + deadline_seconds if deadline_seconds is not None else None
        group = (fingerprint, entry.signature, float(epsilon), clip_min, clip_max)

        for index in range(handle.total):
            query = RegionQuery(
                center=centers[index], epsilon=epsilon, target=int(targets[index]),
                clip_min=clip_min, clip_max=clip_max,
            )
            if entry.cache is not None:
                cached = entry.cache.lookup(query)
                if cached is not None:
                    self.stats.cache_hits += 1
                    self._resolve(
                        handle,
                        VerdictEvent(
                            request_id=request_id, index=index, status="served",
                            result=cached, cache_tier=cached.cache_tier,
                            latency_seconds=self.clock() - now,
                        ),
                    )
                    continue
            if budget_cells is not None and engine_cells_admitted >= budget_cells:
                self._resolve(
                    handle,
                    VerdictEvent(
                        request_id=request_id, index=index, status="cancelled",
                        result=None, reason="budget",
                        latency_seconds=self.clock() - now,
                    ),
                )
                continue
            engine_cells_admitted += 1
            cell = _Cell(
                request_id=request_id, index=index, query=query, group=group,
                handle=handle, admitted_at=now, deadline=deadline,
            )
            queue = self._groups.setdefault(group, [])
            if not queue:
                self._group_opened_at[group] = now
            queue.append(cell)
        self._ensure_dispatcher()
        if self._wake is not None:
            self._wake.set()
        if handle.done.is_set():
            # Fully resolved at admission (all hits, empty, or budget):
            # nothing left to track.
            self._handles.pop(request_id, None)
        return handle

    async def cancel(self, request_id: str) -> int:
        """Cancel a request's *unstarted* cells; returns how many were
        removed.  Started cells complete and serve late; neighbouring
        requests' cells in the same coalescing group are untouched."""
        removed = 0
        handle = self._handles.get(request_id)
        if handle is None:
            return 0
        for group, cells in list(self._groups.items()):
            kept: List[_Cell] = []
            for cell in cells:
                if cell.request_id == request_id and not cell.started:
                    removed += 1
                    self._resolve(
                        handle,
                        VerdictEvent(
                            request_id=request_id, index=cell.index,
                            status="cancelled", result=None, reason="cancelled",
                            latency_seconds=self.clock() - cell.admitted_at,
                        ),
                    )
                else:
                    kept.append(cell)
            if kept:
                self._groups[group] = kept
            else:
                self._groups.pop(group, None)
                self._group_opened_at.pop(group, None)
        return removed

    async def close(self) -> None:
        """Drain in-flight engine batches, cancel queued cells, stop."""
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._batches:
            await asyncio.gather(*list(self._batches), return_exceptions=True)
        for cells in list(self._groups.values()):
            for cell in cells:
                self._resolve(
                    cell.handle,
                    VerdictEvent(
                        request_id=cell.request_id, index=cell.index,
                        status="cancelled", result=None, reason="shutdown",
                        latency_seconds=self.clock() - cell.admitted_at,
                    ),
                )
        self._groups.clear()
        self._group_opened_at.clear()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or self._dispatcher.done():
            self._wake = asyncio.Event()
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    def _poll_timeout(self) -> Optional[float]:
        """Exact sleep until the next scheduled event.

        With no queued cells the dispatcher parks on the wake event.
        Otherwise it sleeps precisely until the earliest of (a) a
        group's coalescing window closing (``opened_at + window`` — the
        moment the group becomes dispatchable) and (b) a queued cell's
        deadline (the moment it must expire).  New admissions set the
        wake event, so sleeping the full distance is safe — no periodic
        polling.
        """
        if not self._groups:
            return None
        now = self.clock()
        window = self.service.coalesce_window_seconds
        due = min(
            self._group_opened_at.get(group, now) + window
            for group in self._groups
        )
        for cells in self._groups.values():
            for cell in cells:
                if cell.deadline is not None and cell.deadline < due:
                    due = cell.deadline
        return max(0.0, due - now)

    async def _dispatch_loop(self) -> None:
        while not self._closed:
            timeout = self._poll_timeout()
            try:
                if timeout is None:
                    await self._wake.wait()
                else:
                    await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            if self._closed:
                return
            self._expire_deadlines()
            self._launch_ready_groups()

    def _expire_deadlines(self) -> None:
        now = self.clock()
        for group, cells in list(self._groups.items()):
            kept: List[_Cell] = []
            for cell in cells:
                if cell.deadline is not None and now >= cell.deadline:
                    # Unstarted past its deadline: expired, verdict-free.
                    self._resolve(
                        cell.handle,
                        VerdictEvent(
                            request_id=cell.request_id, index=cell.index,
                            status="expired", result=None, reason="deadline",
                            latency_seconds=now - cell.admitted_at,
                        ),
                    )
                else:
                    kept.append(cell)
            if kept:
                self._groups[group] = kept
            else:
                self._groups.pop(group, None)
                self._group_opened_at.pop(group, None)

    def _launch_ready_groups(self) -> None:
        now = self.clock()
        window = self.service.coalesce_window_seconds
        for group in list(self._groups):
            if now - self._group_opened_at.get(group, now) < window:
                continue
            cells = self._groups.pop(group)
            self._group_opened_at.pop(group, None)
            while cells:
                batch = cells[: self.service.max_batch_cells]
                cells = cells[self.service.max_batch_cells :]
                for cell in batch:
                    cell.started = True
                self.dispatch_log.append(
                    {
                        "group": group,
                        "cells": len(batch),
                        "request_ids": sorted({c.request_id for c in batch}),
                    }
                )
                task = asyncio.get_running_loop().create_task(
                    self._run_batch(group, batch)
                )
                self._batches.add(task)
                task.add_done_callback(self._batches.discard)

    def _batch_slot(self, backend: object) -> asyncio.Semaphore:
        slot = self._batch_slots.get(id(backend))
        if slot is None:
            slot = asyncio.Semaphore(self.service.max_concurrent_batches)
            self._batch_slots[id(backend)] = slot
        return slot

    async def _run_batch(self, group: Tuple, batch: List[_Cell]) -> None:
        fingerprint, _signature, epsilon, clip_min, clip_max = group
        entry = self._entries[fingerprint]
        xs = np.stack([cell.query.center for cell in batch])
        labels = np.array([cell.query.target for cell in batch], dtype=int)
        loop = asyncio.get_running_loop()
        try:
            # The per-backend semaphore bounds simultaneous engine
            # passes at service.max_concurrent_batches — a scheduling
            # bound, not a global executor free-for-all: other backends
            # proceed, cache hits keep streaming, and at the default of
            # 1 the pre-concurrency serialised behaviour is reproduced.
            async with self._batch_slot(entry.backend):
                self._inflight_batches += 1
                self.stats.concurrent_batches_peak = max(
                    self.stats.concurrent_batches_peak, self._inflight_batches
                )
                try:
                    report = await loop.run_in_executor(
                        None,
                        lambda: entry.backend.certify(
                            xs, labels, epsilon,
                            clip_min=clip_min, clip_max=clip_max,
                        ),
                    )
                finally:
                    self._inflight_batches -= 1
        except Exception as error:
            for cell in batch:
                self._resolve(
                    cell.handle,
                    VerdictEvent(
                        request_id=cell.request_id, index=cell.index,
                        status="failed", result=None, reason=repr(error),
                        latency_seconds=self.clock() - cell.admitted_at,
                    ),
                )
            return
        self.stats.engine_batches += 1
        self.stats.engine_cells += len(batch)
        now = self.clock()
        for cell, result in zip(batch, report.results):
            self._resolve(
                cell.handle,
                VerdictEvent(
                    request_id=cell.request_id, index=cell.index, status="served",
                    result=result,
                    cache_tier=result.cache_tier if result.cached else None,
                    latency_seconds=now - cell.admitted_at,
                ),
            )

    # ------------------------------------------------------------------

    def _resolve(self, handle: RequestHandle, event: VerdictEvent) -> None:
        setattr(
            self.stats, event.status, getattr(self.stats, event.status) + 1
        )
        handle._push(event)
        if handle.done.is_set():
            # Terminal resolution reclaims the request's frontend state;
            # the caller keeps streaming from the handle it already holds.
            self._handles.pop(handle.request_id, None)
