"""Long-lived certification service: async frontend, TCP cluster, faults.

Three layers, composable but independent (see ``docs/service.md``):

* :mod:`repro.service.frontend` — the asyncio admission queue
  (:class:`CertificationFrontend`): cache-first, coalescing, deadlines,
  budgets, per-cell verdict streaming.
* :mod:`repro.service.cluster` — :class:`ClusterScheduler`, the sharded
  escalation waterfall over a ``multiprocessing.managers`` TCP worker
  cluster with work stealing, lease health-checks and exactly-once
  verdict recovery under worker faults.
* :mod:`repro.service.faults` — :class:`FaultSpec`, the deterministic
  seeded fault injection both the test battery and the soak benchmark
  drive.

:func:`serve_sweep` is the synchronous convenience wrapper behind
``certify_local_robustness(..., engine="service")``: one sweep admitted
through a fresh frontend, identical verdicts to every other engine.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import AutoscaleConfig, CraftConfig, ServiceConfig
from repro.engine.results import EngineReport
from repro.service.cluster import (
    ClusterScheduler,
    QueueDepthAutoscaler,
    run_cluster_worker,
)
from repro.service.faults import FaultSpec, retry_backoff
from repro.service.frontend import (
    CertificationFrontend,
    FrontendStats,
    RequestHandle,
    VerdictEvent,
)

__all__ = [
    "AutoscaleConfig",
    "CertificationFrontend",
    "ClusterScheduler",
    "FaultSpec",
    "FrontendStats",
    "QueueDepthAutoscaler",
    "RequestHandle",
    "ServiceConfig",
    "VerdictEvent",
    "retry_backoff",
    "run_cluster_worker",
    "serve_sweep",
]


def serve_sweep(
    model,
    xs: np.ndarray,
    labels: Sequence[int],
    epsilon: float,
    config: Optional[CraftConfig] = None,
    clip_min: Optional[float] = 0.0,
    clip_max: Optional[float] = 1.0,
    cache_dir: Optional[str] = None,
    backend: Optional[object] = None,
    service: Optional[ServiceConfig] = None,
) -> EngineReport:
    """Run one sweep through the service stack, synchronously.

    Spins up a :class:`CertificationFrontend` (zero coalescing window —
    a single sweep has nothing to coalesce with), admits the whole sweep
    as one request with no deadline or budget, awaits every streamed
    verdict and reassembles them into the familiar
    :class:`~repro.engine.results.EngineReport` — the engine-parity
    shape ``certify_local_robustness(engine="service")`` compares
    against the other engines.
    """
    if service is None:
        service = ServiceConfig(coalesce_window_seconds=0.0)

    async def _run() -> EngineReport:
        import time

        start = time.perf_counter()
        frontend = CertificationFrontend(service=service)
        fingerprint = frontend.register_model(
            model, config=config, backend=backend, cache_dir=cache_dir
        )
        handle = await frontend.submit(
            fingerprint, xs, labels, epsilon, clip_min=clip_min, clip_max=clip_max
        )
        events = await handle.collect()
        await frontend.close()
        if handle.failed or handle.served != handle.total:
            failures = [e.reason for e in events if e.status == "failed"]
            raise RuntimeError(f"service sweep did not serve every cell: {failures}")
        results: List = [None] * handle.total
        for event in events:
            results[event.index] = event.result
        return EngineReport(
            results=results,
            # Frontend-view hits and backend hits both surface as cached
            # results, so counting cached results counts each hit once.
            cache_hits=sum(1 for r in results if r.cached),
            cache_dominance_hits=sum(
                1 for r in results if r.cache_tier == "dominance"
            ),
            num_batches=frontend.stats.engine_batches,
            elapsed_seconds=time.perf_counter() - start,
            num_workers=1,
        )

    return asyncio.run(_run())
