"""Random-number-generator handling.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`.
This module provides the single conversion point so behaviour is uniform.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh entropy, an ``int`` for a deterministic stream,
        or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used by experiment harnesses that fan out over samples so that results
    do not depend on evaluation order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
