"""Shared utilities: linear algebra helpers, RNG handling, validation."""

from repro.utils.linalg import (
    pca_basis,
    safe_inverse,
    solve_with_fallback,
    spectral_norm,
    complete_to_basis,
)
from repro.utils.rng import as_generator
from repro.utils.validation import (
    ensure_matrix,
    ensure_nonnegative_vector,
    ensure_square_matrix,
    ensure_vector,
)

__all__ = [
    "as_generator",
    "complete_to_basis",
    "ensure_matrix",
    "ensure_nonnegative_vector",
    "ensure_square_matrix",
    "ensure_vector",
    "pca_basis",
    "safe_inverse",
    "solve_with_fallback",
    "spectral_norm",
]
