"""Input validation helpers shared by the abstract-domain implementations."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, DomainError


def ensure_vector(value, name: str, dim: int = None) -> np.ndarray:
    """Return ``value`` as a 1-d float array, optionally checking its length."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise DomainError(f"{name} must be a vector, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionMismatchError(
            f"{name} must have length {dim}, got {arr.shape[0]}"
        )
    return arr


def ensure_matrix(value, name: str, rows: int = None, cols: int = None) -> np.ndarray:
    """Return ``value`` as a 2-d float array with optional shape checks."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2:
        raise DomainError(f"{name} must be a matrix, got shape {arr.shape}")
    if rows is not None and arr.shape[0] != rows:
        raise DimensionMismatchError(
            f"{name} must have {rows} rows, got {arr.shape[0]}"
        )
    if cols is not None and arr.shape[1] != cols:
        raise DimensionMismatchError(
            f"{name} must have {cols} columns, got {arr.shape[1]}"
        )
    return arr


def ensure_square_matrix(value, name: str, dim: int = None) -> np.ndarray:
    """Return ``value`` as a square 2-d float array."""
    arr = ensure_matrix(value, name)
    if arr.shape[0] != arr.shape[1]:
        raise DomainError(f"{name} must be square, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionMismatchError(
            f"{name} must be {dim}x{dim}, got {arr.shape[0]}x{arr.shape[1]}"
        )
    return arr


def ensure_nonnegative_vector(value, name: str, dim: int = None) -> np.ndarray:
    """Return ``value`` as a 1-d float array with all entries >= 0."""
    arr = ensure_vector(value, name, dim)
    if np.any(arr < 0):
        raise DomainError(f"{name} must be element-wise non-negative")
    return arr


def ensure_finite(value, name: str) -> np.ndarray:
    """Raise :class:`DomainError` unless all entries of ``value`` are finite."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise DomainError(f"{name} contains non-finite entries")
    return arr
