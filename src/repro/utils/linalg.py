"""Linear-algebra helpers used by the abstract domains and the monDEQ substrate.

The helpers here are deliberately small and dependency-free (numpy only) so
that the abstract-domain code stays readable:

* :func:`pca_basis` — the PCA basis of an error matrix, used by error
  consolidation (Kopetzki et al. 2017, as adopted in Section 4 of the paper).
* :func:`pooled_gram_basis` / :func:`randomized_range_basis` /
  :func:`shared_pca_basis` — one orthonormal basis for a whole *stack* of
  error matrices, used by the shared-basis consolidation mode of the
  batched engines (a batch shares the model weights, so a pooled basis
  replaces O(batch) per-sample SVDs with one factorisation plus BLAS-3
  projections).  Soundness never depends on the basis choice — Theorem 4.1
  holds for any invertible basis — only precision does.
* :func:`safe_inverse` / :func:`solve_with_fallback` — robust inversion with
  a diagnostic error when a "proper" CH-Zonotope turns out to be singular.
* :func:`spectral_norm` — ||I - W||_2 used for the FB step-size bound
  0 < alpha < 2m / ||I - W||_2^2.
* :func:`complete_to_basis` — completes a rank-deficient error matrix to a
  full basis, needed when consolidating an element with fewer than ``p``
  error terms (Section 4, "if k <= p, we pick a subset with full rank and
  complete it to a basis").
"""

from __future__ import annotations

import numpy as np

from repro.backend.numpy_backend import NUMPY_BACKEND
from repro.exceptions import ImproperZonotopeError


def pca_basis(error_matrix: np.ndarray, jitter: float = 1e-12) -> np.ndarray:
    """Return an orthonormal basis aligned with the principal directions of
    the columns of ``error_matrix``.

    The basis is the matrix of left singular vectors of the error matrix,
    completed to a full orthonormal basis of R^p.  It is always invertible
    (orthogonal), which is what Theorem 4.1 requires of the new basis.

    Parameters
    ----------
    error_matrix:
        ``(p, k)`` matrix whose columns are the error directions.
    jitter:
        Added to the diagonal before the decomposition when the matrix is
        numerically rank deficient, ensuring a well-defined basis.
    """
    matrix = np.asarray(error_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("error_matrix must be 2-dimensional")
    p = matrix.shape[0]
    if matrix.size == 0 or not np.any(matrix):
        return np.eye(p)
    # With k >= p the economy SVD already yields all p left singular
    # vectors; the full decomposition would additionally build the (k, k)
    # right factor, which is quadratic in the error-term count — ruinous in
    # the tightening phase, where k reaches thousands.  (The batched
    # counterpart applies the identical rule, keeping engine parity.)
    full = matrix.shape[1] < p
    try:
        u, _, _ = np.linalg.svd(matrix, full_matrices=full)
    except np.linalg.LinAlgError:
        u, _, _ = np.linalg.svd(matrix + jitter * np.eye(p, matrix.shape[1]), full_matrices=full)
    return u


#: ``B * k`` threshold above which :func:`shared_pca_basis` prefers the
#: randomized range finder over the exact pooled Gram: past this point the
#: sketch's single fused einsum (no per-sample Gram accumulation) wins on
#: memory traffic, and the basis quality difference is immaterial because
#: consolidation is sound for any orthonormal basis.
RANDOMIZED_BASIS_THRESHOLD = 1 << 16


def pooled_gram_basis(generator_stack, xp=None, search: bool = False):
    """Orthonormal basis of the pooled second-moment of a generator stack.

    Accumulates the pooled Gram matrix ``G = sum_i G_i G_i^T`` over the
    ``(B, p, k)`` stack in one einsum and eigendecomposes it — the
    eigenvectors, sorted by descending eigenvalue, are the principal
    directions of the *union* of all samples' error columns.  This is the
    exact shared counterpart of the per-sample PCA basis: for ``B = 1``
    the returned subspaces coincide with :func:`pca_basis` (eigenvectors
    of ``G G^T`` are the left singular vectors of ``G``).

    Cost: one ``O(B p^2 k)`` BLAS pass plus a single ``O(p^3)``
    symmetric eigendecomposition — independent of the batch size where
    the per-sample path pays ``B`` dense SVDs.

    ``xp`` selects the array backend (numpy default — bit-identical to the
    historical implementation); ``search=True`` runs the Gram accumulation
    and eigendecomposition in float32 under the documented search-dtype
    policy (sound: consolidation holds for any invertible basis; the basis
    is returned in float64 and the projection/inversion stay full
    precision).
    """
    xp = NUMPY_BACKEND if xp is None else xp
    stack = xp.asarray(generator_stack)
    if stack.ndim != 3:
        raise ValueError("generator_stack must have shape (batch, p, k)")
    p = stack.shape[1]
    if _stack_is_empty(xp, stack):
        return xp.eye(p)
    if search:
        stack = xp.f32(stack)
    gram = xp.einsum("bik,bjk->ij", stack, stack)
    gram = 0.5 * (gram + xp.transpose(gram, (1, 0)))
    eigenvalues, eigenvectors = xp.eigh(gram)
    # eigh orders ascending; consolidation conventions (and pca_basis)
    # put the dominant direction first.
    order = xp.flip(xp.argsort(eigenvalues))
    basis = xp.ascontiguous(eigenvectors[:, order])
    return xp.f64(basis) if search else basis


def _stack_is_empty(xp, stack) -> bool:
    """True for zero-sized or all-zero stacks (basis defaults to identity)."""
    if 0 in tuple(stack.shape):
        return True
    return not bool(xp.any(stack != 0.0))


def randomized_range_basis(
    generator_stack, oversample: int = 8, seed: int = 0, xp=None, search: bool = False
):
    """Randomized range-finder basis for a large generator stack.

    Halko–Martinsson–Tropp style sketch of the pooled error matrix
    ``M = [G_1 | ... | G_B]``: the stack is compressed through a seeded
    Gaussian test matrix in a single fused einsum (``Y = M Omega``, with
    ``Omega`` drawn per-sample so the ``(p, B k)`` pooled matrix is never
    materialised), and the sketch's left singular vectors — completed to
    a full orthonormal basis of ``R^p`` by :func:`pca_basis` — become the
    shared consolidation basis.  The seed is fixed so repeated sweeps and
    worker processes derive identical bases.

    Any orthonormal basis yields a *sound* consolidation; the sketch only
    trades a little alignment quality for one pass over the stack, which
    is what the shared-basis mode wants once ``B * k`` gets large.

    The Gaussian test matrix is always drawn with numpy's seeded generator
    — on every backend — so sweeps on different devices (and worker
    processes) derive identical sketches; only the fused einsum runs on
    ``xp``.  ``search=True`` evaluates the sketch in float32 (basis
    returned in float64; see :func:`pooled_gram_basis`).
    """
    xp = NUMPY_BACKEND if xp is None else xp
    stack = xp.asarray(generator_stack)
    if stack.ndim != 3:
        raise ValueError("generator_stack must have shape (batch, p, k)")
    batch, p, k = stack.shape
    if _stack_is_empty(xp, stack):
        return xp.eye(p)
    rng = np.random.default_rng(seed)
    width = p + max(0, int(oversample))
    omega = xp.asarray(rng.standard_normal((batch, k, width)))
    if search:
        stack, omega = xp.f32(stack), xp.f32(omega)
    sketch = xp.einsum("bpk,bkw->pw", stack, omega)
    # The (p, p + oversample) sketch is tiny; the SVD completion runs on
    # the host through the sequential helper on every backend.
    return xp.asarray(pca_basis(np.asarray(xp.to_numpy(sketch), dtype=float)))


def shared_pca_basis(generator_stack, method: str = "auto", xp=None, search: bool = False):
    """One orthonormal consolidation basis shared by a whole generator stack.

    ``method`` selects the kernel: ``"gram"`` (exact pooled Gram,
    :func:`pooled_gram_basis`), ``"randomized"``
    (:func:`randomized_range_basis`) or ``"auto"`` (the default), which
    uses the exact pooled Gram until the stack's total column count
    ``B * k`` crosses :data:`RANDOMIZED_BASIS_THRESHOLD` and the sketch
    becomes the cheaper route.  ``xp``/``search`` dispatch the kernel onto
    an array backend and the float32 search-dtype policy (see
    :func:`pooled_gram_basis`).
    """
    xp = NUMPY_BACKEND if xp is None else xp
    stack = xp.asarray(generator_stack)
    if stack.ndim != 3:
        raise ValueError("generator_stack must have shape (batch, p, k)")
    if method == "auto":
        total_columns = stack.shape[0] * stack.shape[2]
        method = "randomized" if total_columns > RANDOMIZED_BASIS_THRESHOLD else "gram"
    if method == "gram":
        return pooled_gram_basis(stack, xp=xp, search=search)
    if method == "randomized":
        return randomized_range_basis(stack, xp=xp, search=search)
    raise ValueError(
        f"method must be one of ('auto', 'gram', 'randomized'), got {method!r}"
    )


def safe_inverse(matrix: np.ndarray, context: str = "matrix") -> np.ndarray:
    """Invert ``matrix``, raising :class:`ImproperZonotopeError` when singular."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ImproperZonotopeError(f"{context} must be square to be inverted")
    try:
        return np.linalg.inv(matrix)
    except np.linalg.LinAlgError as exc:
        raise ImproperZonotopeError(f"{context} is singular and cannot be inverted") from exc


def solve_with_fallback(matrix: np.ndarray, rhs: np.ndarray, context: str = "matrix") -> np.ndarray:
    """Solve ``matrix @ x = rhs``, falling back to least squares if singular.

    The least-squares fallback is only used for *diagnostic* paths (e.g.
    visualisation); soundness-critical code uses :func:`safe_inverse` which
    fails loudly instead.
    """
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError:
        solution, _, _, _ = np.linalg.lstsq(matrix, rhs, rcond=None)
        if not np.all(np.isfinite(solution)):
            raise ImproperZonotopeError(f"{context} system could not be solved")
        return solution


def spectral_norm(matrix: np.ndarray) -> float:
    """Return the spectral norm (largest singular value) of ``matrix``."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.size == 0:
        return 0.0
    return float(np.linalg.norm(matrix, ord=2))


def complete_to_basis(columns: np.ndarray, dim: int, tol: float = 1e-10) -> np.ndarray:
    """Return an invertible ``(dim, dim)`` matrix whose leading columns span
    the column space of ``columns``.

    A rank-revealing QR-style procedure: we orthonormalise the given columns,
    then append standard-basis directions orthogonal to the span until the
    basis is complete.  The returned matrix mixes the original (scaled)
    directions with the appended ones, which is exactly what consolidation
    needs when an improper CH-Zonotope has fewer than ``dim`` error terms.
    """
    columns = np.asarray(columns, dtype=float)
    if columns.ndim != 2 or columns.shape[0] != dim:
        raise ValueError(f"columns must have shape ({dim}, k)")
    basis_vectors = []
    for j in range(columns.shape[1]):
        candidate = columns[:, j].astype(float)
        for existing in basis_vectors:
            candidate = candidate - np.dot(existing, candidate) * existing
        norm = np.linalg.norm(candidate)
        if norm > tol:
            basis_vectors.append(candidate / norm)
        if len(basis_vectors) == dim:
            break
    for j in range(dim):
        if len(basis_vectors) == dim:
            break
        candidate = np.zeros(dim)
        candidate[j] = 1.0
        for existing in basis_vectors:
            candidate = candidate - np.dot(existing, candidate) * existing
        norm = np.linalg.norm(candidate)
        if norm > tol:
            basis_vectors.append(candidate / norm)
    return np.column_stack(basis_vectors)


def project_to_psd_cone(matrix: np.ndarray, epsilon: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the cone of PSD matrices.

    Used by the monDEQ substrate when checking / repairing the monotone
    parametrisation numerically.
    """
    symmetric = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    eigenvalues = np.clip(eigenvalues, epsilon, None)
    return (eigenvectors * eigenvalues) @ eigenvectors.T


def relative_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Return ||a - b|| / max(1, ||b||), used in convergence diagnostics."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.linalg.norm(a - b) / max(1.0, np.linalg.norm(b)))


def anderson_mixing_batch(
    iterates,
    images,
    regularization: float = 1e-10,
    xp=None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Type-II Anderson mixing over a batch of fixpoint-iteration histories.

    Parameters
    ----------
    iterates, images:
        ``(batch, m, dim)`` stacks of the last ``m`` iterates ``s_j`` and
        their images ``g(s_j)`` under the fixpoint map, oldest first.
    regularization:
        Tikhonov term added to the normal equations (scaled by the Gram
        trace) so near-collinear residual histories stay solvable.

    Returns
    -------
    (mixed, ok):
        ``mixed`` is the ``(batch, dim)`` extrapolated candidate
        ``sum_j theta_j g(s_j)`` with ``sum_j theta_j = 1``, obtained by
        minimising ``||sum_j theta_j r_j||`` over the affine combination of
        window residuals ``r_j = g(s_j) - s_j`` (solved in the
        residual-difference parametrisation).  ``ok`` is a ``(batch,)``
        boolean mask; rows where the solve failed or produced non-finite
        values carry the plain image ``g(s_{m-1})`` and ``ok=False`` so the
        caller can fall back to the damped step.

    ``xp`` selects the array backend (numpy default, bit-identical to the
    historical kernel).  Anderson mixing is *search* in the firewall sense
    — every mixed candidate is safeguarded by an exact evaluation at the
    caller — but the kernel still runs in the backend's working precision
    (float64) because the safeguard costs one extra map application when
    a sloppy candidate is rejected.
    """
    xp = NUMPY_BACKEND if xp is None else xp
    iterates = xp.asarray(iterates)
    images = xp.asarray(images)
    if iterates.ndim != 3 or tuple(iterates.shape) != tuple(images.shape):
        raise ValueError(
            "anderson mixing expects matching (batch, m, dim) stacks, got "
            f"{tuple(iterates.shape)} and {tuple(images.shape)}"
        )
    batch, window, _ = iterates.shape
    plain = images[:, -1, :]
    if window < 2:
        return xp.copy(plain), xp.asarray_bool(np.zeros(batch, dtype=bool))
    residuals = images - iterates
    dr = residuals[:, 1:, :] - residuals[:, :-1, :]  # (batch, m-1, dim)
    gram = dr @ xp.transpose(dr, (0, 2, 1))  # (batch, m-1, m-1)
    trace = xp.trace(gram, axis1=1, axis2=2)
    scale = regularization * (trace / max(window - 1, 1) + 1.0)
    gram = gram + scale[:, None, None] * xp.eye(window - 1)[None, :, :]
    rhs = xp.einsum("bmd,bd->bm", dr, residuals[:, -1, :])
    try:
        gamma = xp.solve(gram, rhs[:, :, None])[:, :, 0]
    except xp.linalg_error:
        return xp.copy(plain), xp.asarray_bool(np.zeros(batch, dtype=bool))
    dg = images[:, 1:, :] - images[:, :-1, :]
    mixed = plain - xp.einsum("bm,bmd->bd", gamma, dg)
    ok = xp.all(xp.isfinite(mixed), axis=1) & xp.all(xp.isfinite(gamma), axis=1)
    mixed = xp.where(ok[:, None], mixed, plain)
    return mixed, ok


def anderson_mixing(
    iterates: np.ndarray,
    images: np.ndarray,
    regularization: float = 1e-10,
) -> "tuple[np.ndarray, bool]":
    """Single-history Anderson mixing; see :func:`anderson_mixing_batch`.

    Runs the batched kernel with ``batch=1`` so the sequential and batched
    solvers share bit-identical mixing arithmetic.
    """
    mixed, ok = anderson_mixing_batch(
        np.asarray(iterates, dtype=float)[None, :, :],
        np.asarray(images, dtype=float)[None, :, :],
        regularization=regularization,
    )
    return mixed[0], bool(ok[0])
