"""Linear-algebra helpers used by the abstract domains and the monDEQ substrate.

The helpers here are deliberately small and dependency-free (numpy only) so
that the abstract-domain code stays readable:

* :func:`pca_basis` — the PCA basis of an error matrix, used by error
  consolidation (Kopetzki et al. 2017, as adopted in Section 4 of the paper).
* :func:`safe_inverse` / :func:`solve_with_fallback` — robust inversion with
  a diagnostic error when a "proper" CH-Zonotope turns out to be singular.
* :func:`spectral_norm` — ||I - W||_2 used for the FB step-size bound
  0 < alpha < 2m / ||I - W||_2^2.
* :func:`complete_to_basis` — completes a rank-deficient error matrix to a
  full basis, needed when consolidating an element with fewer than ``p``
  error terms (Section 4, "if k <= p, we pick a subset with full rank and
  complete it to a basis").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ImproperZonotopeError


def pca_basis(error_matrix: np.ndarray, jitter: float = 1e-12) -> np.ndarray:
    """Return an orthonormal basis aligned with the principal directions of
    the columns of ``error_matrix``.

    The basis is the matrix of left singular vectors of the error matrix,
    completed to a full orthonormal basis of R^p.  It is always invertible
    (orthogonal), which is what Theorem 4.1 requires of the new basis.

    Parameters
    ----------
    error_matrix:
        ``(p, k)`` matrix whose columns are the error directions.
    jitter:
        Added to the diagonal before the decomposition when the matrix is
        numerically rank deficient, ensuring a well-defined basis.
    """
    matrix = np.asarray(error_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("error_matrix must be 2-dimensional")
    p = matrix.shape[0]
    if matrix.size == 0 or not np.any(matrix):
        return np.eye(p)
    # With k >= p the economy SVD already yields all p left singular
    # vectors; the full decomposition would additionally build the (k, k)
    # right factor, which is quadratic in the error-term count — ruinous in
    # the tightening phase, where k reaches thousands.  (The batched
    # counterpart applies the identical rule, keeping engine parity.)
    full = matrix.shape[1] < p
    try:
        u, _, _ = np.linalg.svd(matrix, full_matrices=full)
    except np.linalg.LinAlgError:
        u, _, _ = np.linalg.svd(matrix + jitter * np.eye(p, matrix.shape[1]), full_matrices=full)
    return u


def safe_inverse(matrix: np.ndarray, context: str = "matrix") -> np.ndarray:
    """Invert ``matrix``, raising :class:`ImproperZonotopeError` when singular."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ImproperZonotopeError(f"{context} must be square to be inverted")
    try:
        return np.linalg.inv(matrix)
    except np.linalg.LinAlgError as exc:
        raise ImproperZonotopeError(f"{context} is singular and cannot be inverted") from exc


def solve_with_fallback(matrix: np.ndarray, rhs: np.ndarray, context: str = "matrix") -> np.ndarray:
    """Solve ``matrix @ x = rhs``, falling back to least squares if singular.

    The least-squares fallback is only used for *diagnostic* paths (e.g.
    visualisation); soundness-critical code uses :func:`safe_inverse` which
    fails loudly instead.
    """
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError:
        solution, _, _, _ = np.linalg.lstsq(matrix, rhs, rcond=None)
        if not np.all(np.isfinite(solution)):
            raise ImproperZonotopeError(f"{context} system could not be solved")
        return solution


def spectral_norm(matrix: np.ndarray) -> float:
    """Return the spectral norm (largest singular value) of ``matrix``."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.size == 0:
        return 0.0
    return float(np.linalg.norm(matrix, ord=2))


def complete_to_basis(columns: np.ndarray, dim: int, tol: float = 1e-10) -> np.ndarray:
    """Return an invertible ``(dim, dim)`` matrix whose leading columns span
    the column space of ``columns``.

    A rank-revealing QR-style procedure: we orthonormalise the given columns,
    then append standard-basis directions orthogonal to the span until the
    basis is complete.  The returned matrix mixes the original (scaled)
    directions with the appended ones, which is exactly what consolidation
    needs when an improper CH-Zonotope has fewer than ``dim`` error terms.
    """
    columns = np.asarray(columns, dtype=float)
    if columns.ndim != 2 or columns.shape[0] != dim:
        raise ValueError(f"columns must have shape ({dim}, k)")
    basis_vectors = []
    for j in range(columns.shape[1]):
        candidate = columns[:, j].astype(float)
        for existing in basis_vectors:
            candidate = candidate - np.dot(existing, candidate) * existing
        norm = np.linalg.norm(candidate)
        if norm > tol:
            basis_vectors.append(candidate / norm)
        if len(basis_vectors) == dim:
            break
    for j in range(dim):
        if len(basis_vectors) == dim:
            break
        candidate = np.zeros(dim)
        candidate[j] = 1.0
        for existing in basis_vectors:
            candidate = candidate - np.dot(existing, candidate) * existing
        norm = np.linalg.norm(candidate)
        if norm > tol:
            basis_vectors.append(candidate / norm)
    return np.column_stack(basis_vectors)


def project_to_psd_cone(matrix: np.ndarray, epsilon: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the cone of PSD matrices.

    Used by the monDEQ substrate when checking / repairing the monotone
    parametrisation numerically.
    """
    symmetric = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    eigenvalues = np.clip(eigenvalues, epsilon, None)
    return (eigenvectors * eigenvalues) @ eigenvectors.T


def relative_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Return ||a - b|| / max(1, ||b||), used in convergence diagnostics."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.linalg.norm(a - b) / max(1.0, np.linalg.norm(b)))
