"""Verification front-ends: specifications, local robustness, global
certification via domain splitting, and the baseline verifiers."""

from repro.verify.robustness import RobustnessVerifier, certify_sample
from repro.verify.specs import ClassificationSpec, LinfBall

__all__ = [
    "ClassificationSpec",
    "LinfBall",
    "RobustnessVerifier",
    "certify_sample",
]
