"""Global certification via domain splitting (Section 6.2, HCAS).

To certify a property over a *large* input region (rather than a small
perturbation ball around one sample), the paper applies domain splitting
(Wang et al. 2018): the region is recursively bisected, and for each cell
Craft tries to certify that every input in the cell is classified to the
class predicted at the cell's centre.  Cells that cannot be certified up to
a maximum depth remain uncovered; the paper reports 82.8 % coverage of the
relevant HCAS input region.

By default the splitting loop is a breadth-first frontier whose levels are
certified by the batched engine (:mod:`repro.engine`) — every cell of a
depth level shares the model weights, so a whole level is one vectorised
pass.  ``engine="sharded"`` additionally fans each level out over a pool
of worker processes (:class:`~repro.engine.sharded.ShardedScheduler`);
``engine="sequential"`` (or the legacy ``use_engine=False``) restores the
depth-first recursion, kept as the reference implementation.  All engines
produce the same cell decomposition (up to ordering of the cell list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import CraftConfig
from repro.core.craft import CraftVerifier
from repro.domains.interval import Interval
from repro.exceptions import ConfigurationError
from repro.mondeq.model import MonDEQ
from repro.verify.robustness import build_fixpoint_problem
from repro.verify.specs import ClassificationSpec, LinfBall


@dataclass
class CertifiedCell:
    """One input-region cell together with its certification status."""

    region: Interval
    predicted_class: int
    certified: bool
    depth: int

    @property
    def volume(self) -> float:
        return self.region.volume


@dataclass
class GlobalCertificationResult:
    """Outcome of the domain-splitting certification of a region."""

    cells: List[CertifiedCell] = field(default_factory=list)

    @property
    def certified_volume(self) -> float:
        return float(sum(cell.volume for cell in self.cells if cell.certified))

    @property
    def total_volume(self) -> float:
        return float(sum(cell.volume for cell in self.cells))

    @property
    def coverage(self) -> float:
        """Fraction of the region's volume whose prediction is certified."""
        total = self.total_volume
        return self.certified_volume / total if total > 0 else 0.0

    def certified_cells(self) -> List[CertifiedCell]:
        return [cell for cell in self.cells if cell.certified]

    def uncertified_cells(self) -> List[CertifiedCell]:
        return [cell for cell in self.cells if not cell.certified]


class DomainSplittingCertifier:
    """Exhaustively certify predictions over a box-shaped input region.

    ``engine`` selects how the BFS frontier levels are certified:

    * ``"batched"`` (default) — one vectorised :class:`BatchedCraft` pass
      per level.
    * ``"sharded"`` — each level is fanned out over ``num_workers``
      processes through :class:`~repro.engine.sharded.ShardedScheduler`;
      the worker pool persists across levels and an optional ``cache_dir``
      lets re-runs (e.g. refined HCAS grids) reuse cell verdicts.
      ``timeout_seconds`` bounds every wait on the pool (default 600 s).
    * ``"sequential"`` — the reference depth-first recursion.

    ``engine=None`` derives the choice from the legacy ``use_engine`` flag.
    Every ``config.domain`` (``"chzonotope"``, ``"box"``, ``"zonotope"``)
    runs through every engine — the batched stack is resolved by
    :func:`repro.engine.batched_domains.batched_domain_for`, which raises
    :class:`~repro.exceptions.ConfigurationError` for unknown names rather
    than silently downgrading to the sequential recursion.  All engines
    produce the same cell decomposition (up to ordering of the cell list).
    """

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        max_depth: int = 4,
        min_cell_width: float = 1e-3,
        use_engine: bool = True,
        engine: Optional[str] = None,
        num_workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        timeout_seconds: Optional[float] = None,
    ):
        self.model = model
        self.config = config if config is not None else CraftConfig()
        self.max_depth = max_depth
        self.min_cell_width = min_cell_width
        self._stage_configs = self.config.stage_configs()
        # Built on first use: only the sequential recursion needs them (an
        # engine handles all certification on the other paths).
        self._stage_verifiers: Optional[List[CraftVerifier]] = None
        if engine is None:
            engine = "batched" if use_engine else "sequential"
        if engine not in ("sequential", "batched", "sharded"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; choose 'sequential', 'batched' or 'sharded'"
            )
        self.engine = engine
        self._num_workers = num_workers
        self._cache_dir = cache_dir
        self._engine = None
        if engine == "batched":
            from repro.engine.escalation import EscalationLadder

            # The ladder degrades to a single BatchedCraft stage for
            # singleton configs, and runs the per-cell domain waterfall for
            # escalation configs — either way one vectorised pass per
            # frontier level.
            self._engine = EscalationLadder(model, self.config)
        elif engine == "sharded":
            from repro.engine.sharded import ShardedScheduler

            # The frontier loop only reads the certified flag, so the
            # abstraction elements never need to cross the pool pipe.
            extra = {} if timeout_seconds is None else {"timeout_seconds": timeout_seconds}
            self._engine = ShardedScheduler(
                model, self.config, num_workers=num_workers, cache_dir=cache_dir,
                keep_abstractions=False, **extra,
            )

    def close(self) -> None:
        """Release the sharded worker pool (no-op for other engines)."""
        if self.engine == "sharded" and self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "DomainSplittingCertifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def certify_region(self, region: Interval) -> GlobalCertificationResult:
        """Certify ``region``; returns the full cell decomposition.

        With an engine enabled (default) the decomposition proceeds
        breadth-first, certifying every cell of a depth level in one
        batched (possibly sharded) pass; otherwise the reference
        depth-first recursion runs.
        """
        result = GlobalCertificationResult()
        if self._engine is None:
            self._certify_recursive(region, depth=0, result=result)
            return result
        self._certify_frontier(region, result)
        return result

    # ------------------------------------------------------------------

    def _cell_prediction(self, region: Interval) -> int:
        return int(self.model.predict(region.center))

    def _cell_ball(self, region: Interval) -> LinfBall:
        # A box region is an l-infinity ball around its centre with per-dim
        # radius; LinfBall only supports a scalar radius, so the cell is
        # over-approximated by the enclosing ball (sound: a superset).
        radius = float(np.max(region.radius))
        return LinfBall(center=region.center, epsilon=radius, clip_min=None, clip_max=None)

    def _can_split(self, region: Interval, depth: int) -> bool:
        return depth < self.max_depth and float(np.max(region.width)) > 2 * self.min_cell_width

    def _frontier_predictions(
        self, frontier: List[Tuple[Interval, int]]
    ) -> Tuple[List[int], Optional[np.ndarray]]:
        """Predicted classes of the cell centres, solved as one batch.

        Also returns the solved fixpoints as phase-zero anchors when the
        configuration uses exactly the prediction-pass solver parameters,
        so ``certify_regions`` does not re-solve the same centres.
        """
        from repro.engine.craft import anchor_reuse_valid
        from repro.mondeq.solvers import solve_fixpoint_batch

        centers = np.stack([cell.center for cell, _ in frontier])
        fixpoints = solve_fixpoint_batch(self.model, centers, method="pr")
        predictions = [
            int(p) for p in self.model.readout_batch(fixpoints.z).argmax(axis=1)
        ]
        anchors = fixpoints.z if anchor_reuse_valid(self.model, self.config) else None
        return predictions, anchors

    def _certify_frontier(self, region: Interval, result: GlobalCertificationResult) -> None:
        frontier: List[Tuple[Interval, int]] = [(region, 0)]
        while frontier:
            predictions, anchors = self._frontier_predictions(frontier)
            balls = [self._cell_ball(cell) for cell, _ in frontier]
            specs = [
                ClassificationSpec(target=predicted, num_classes=self.model.output_dim)
                for predicted in predictions
            ]
            outcomes = self._engine.certify_regions(balls, specs, anchors)
            next_frontier: List[Tuple[Interval, int]] = []
            for (cell, depth), predicted, outcome in zip(frontier, predictions, outcomes):
                if outcome.certified:
                    result.cells.append(
                        CertifiedCell(region=cell, predicted_class=predicted, certified=True, depth=depth)
                    )
                elif self._can_split(cell, depth):
                    left, right = cell.split()
                    next_frontier.append((left, depth + 1))
                    next_frontier.append((right, depth + 1))
                else:
                    result.cells.append(
                        CertifiedCell(region=cell, predicted_class=predicted, certified=False, depth=depth)
                    )
            frontier = next_frontier

    def _certify_cell(self, region: Interval, predicted: int) -> bool:
        from repro.engine.escalation import should_escalate

        if self._stage_verifiers is None:
            self._stage_verifiers = [CraftVerifier(cfg) for cfg in self._stage_configs]
        spec = ClassificationSpec(target=predicted, num_classes=self.model.output_dim)
        ball = self._cell_ball(region)
        # Sequential counterpart of the engine waterfall: the cell climbs
        # the ladder while its verdict stays unresolved (singleton ladders
        # collapse to a single verifier).
        for stage_config, verifier in zip(self._stage_configs, self._stage_verifiers):
            problem = build_fixpoint_problem(self.model, ball, spec, stage_config)
            outcome = verifier.solve(problem)
            if not should_escalate(outcome):
                break
        return outcome.certified

    def _certify_recursive(
        self, region: Interval, depth: int, result: GlobalCertificationResult
    ) -> None:
        predicted = self._cell_prediction(region)
        if self._certify_cell(region, predicted):
            result.cells.append(
                CertifiedCell(region=region, predicted_class=predicted, certified=True, depth=depth)
            )
            return
        if not self._can_split(region, depth):
            result.cells.append(
                CertifiedCell(region=region, predicted_class=predicted, certified=False, depth=depth)
            )
            return
        left, right = region.split()
        self._certify_recursive(left, depth + 1, result)
        self._certify_recursive(right, depth + 1, result)
