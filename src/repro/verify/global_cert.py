"""Global certification via domain splitting (Section 6.2, HCAS).

To certify a property over a *large* input region (rather than a small
perturbation ball around one sample), the paper applies domain splitting
(Wang et al. 2018): the region is recursively bisected, and for each cell
Craft tries to certify that every input in the cell is classified to the
class predicted at the cell's centre.  Cells that cannot be certified up to
a maximum depth remain uncovered; the paper reports 82.8 % coverage of the
relevant HCAS input region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import CraftConfig
from repro.core.craft import CraftVerifier
from repro.domains.interval import Interval
from repro.mondeq.model import MonDEQ
from repro.verify.robustness import build_fixpoint_problem
from repro.verify.specs import ClassificationSpec, LinfBall


@dataclass
class CertifiedCell:
    """One input-region cell together with its certification status."""

    region: Interval
    predicted_class: int
    certified: bool
    depth: int

    @property
    def volume(self) -> float:
        return self.region.volume


@dataclass
class GlobalCertificationResult:
    """Outcome of the domain-splitting certification of a region."""

    cells: List[CertifiedCell] = field(default_factory=list)

    @property
    def certified_volume(self) -> float:
        return float(sum(cell.volume for cell in self.cells if cell.certified))

    @property
    def total_volume(self) -> float:
        return float(sum(cell.volume for cell in self.cells))

    @property
    def coverage(self) -> float:
        """Fraction of the region's volume whose prediction is certified."""
        total = self.total_volume
        return self.certified_volume / total if total > 0 else 0.0

    def certified_cells(self) -> List[CertifiedCell]:
        return [cell for cell in self.cells if cell.certified]

    def uncertified_cells(self) -> List[CertifiedCell]:
        return [cell for cell in self.cells if not cell.certified]


class DomainSplittingCertifier:
    """Exhaustively certify predictions over a box-shaped input region."""

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        max_depth: int = 4,
        min_cell_width: float = 1e-3,
    ):
        self.model = model
        self.config = config if config is not None else CraftConfig()
        self.max_depth = max_depth
        self.min_cell_width = min_cell_width
        self._verifier = CraftVerifier(self.config)

    def certify_region(self, region: Interval) -> GlobalCertificationResult:
        """Recursively certify ``region``; returns the full cell decomposition."""
        result = GlobalCertificationResult()
        self._certify_recursive(region, depth=0, result=result)
        return result

    # ------------------------------------------------------------------

    def _cell_prediction(self, region: Interval) -> int:
        return int(self.model.predict(region.center))

    def _certify_cell(self, region: Interval, predicted: int) -> bool:
        spec = ClassificationSpec(target=predicted, num_classes=self.model.output_dim)
        # A box region is an l-infinity ball around its centre with per-dim
        # radius; LinfBall only supports a scalar radius, so the cell is
        # over-approximated by the enclosing ball (sound: a superset).
        radius = float(np.max(region.radius))
        ball = LinfBall(
            center=region.center, epsilon=radius, clip_min=None, clip_max=None
        )
        problem = build_fixpoint_problem(self.model, ball, spec, self.config)
        outcome = self._verifier.solve(problem)
        return outcome.certified

    def _certify_recursive(
        self, region: Interval, depth: int, result: GlobalCertificationResult
    ) -> None:
        predicted = self._cell_prediction(region)
        if self._certify_cell(region, predicted):
            result.cells.append(
                CertifiedCell(region=region, predicted_class=predicted, certified=True, depth=depth)
            )
            return
        can_split = depth < self.max_depth and float(np.max(region.width)) > 2 * self.min_cell_width
        if not can_split:
            result.cells.append(
                CertifiedCell(region=region, predicted_class=predicted, certified=False, depth=depth)
            )
            return
        left, right = region.split()
        self._certify_recursive(left, depth + 1, result)
        self._certify_recursive(right, depth + 1, result)
