"""Pre- and postcondition specifications (Section 2 / Section 5.2).

The paper focuses on local l-infinity robustness: the precondition
``phi(x) = { x' : ||x - x'||_inf <= eps }`` (optionally intersected with the
valid input range) and the postcondition
``psi = h_t(x') - h_i(x') > 0 for all i != t`` (classification to class
``t``).  Both are represented here as small objects that can build abstract
elements / evaluate themselves on output abstractions, so Craft stays
independent of the concrete property being verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.results import PostconditionCheck
from repro.domains.base import AbstractElement
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import VerificationError


@dataclass(frozen=True)
class LinfBall:
    """The l-infinity ball precondition ``{ x' : ||x - x'||_inf <= epsilon }``.

    Attributes
    ----------
    center:
        The anchor input ``x``.
    epsilon:
        The perturbation radius.
    clip_min, clip_max:
        Optional valid input range (e.g. ``[0, 1]`` for images); the ball is
        intersected with it, matching the evaluation setting of the paper.
    """

    center: np.ndarray
    epsilon: float
    clip_min: Optional[float] = 0.0
    clip_max: Optional[float] = 1.0

    def __post_init__(self):
        object.__setattr__(self, "center", np.asarray(self.center, dtype=float).reshape(-1))
        if self.epsilon < 0:
            raise VerificationError("epsilon must be non-negative")
        if (
            self.clip_min is not None
            and self.clip_max is not None
            and self.clip_min > self.clip_max
        ):
            raise VerificationError("clip_min must not exceed clip_max")

    @property
    def dim(self) -> int:
        return self.center.shape[0]

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Element-wise bounds of the (clipped) ball."""
        lower = self.center - self.epsilon
        upper = self.center + self.epsilon
        if self.clip_min is not None:
            lower = np.maximum(lower, self.clip_min)
            upper = np.maximum(upper, self.clip_min)
        if self.clip_max is not None:
            lower = np.minimum(lower, self.clip_max)
            upper = np.minimum(upper, self.clip_max)
        return lower, upper

    def to_interval(self) -> Interval:
        lower, upper = self.bounds()
        return Interval(lower, upper)

    def to_zonotope(self) -> Zonotope:
        return Zonotope.from_interval(self.to_interval())

    def to_chzonotope(self) -> CHZonotope:
        return CHZonotope.from_interval(self.to_interval())

    def to_parallelotope(self) -> "AbstractElement":
        from repro.domains.parallelotope import ParallelotopeZonotope

        return ParallelotopeZonotope.from_interval(self.to_interval())

    def to_element(self, domain: str) -> AbstractElement:
        """Build the precondition abstraction in the named domain."""
        builders = {
            "box": self.to_interval,
            "zonotope": self.to_zonotope,
            "parallelotope": self.to_parallelotope,
            "chzonotope": self.to_chzonotope,
        }
        try:
            return builders[domain]()
        except KeyError:
            raise VerificationError(f"unknown domain {domain!r}") from None

    def contains(self, point: np.ndarray) -> bool:
        """True when ``point`` lies inside the (clipped) ball."""
        return self.to_interval().contains_point(np.asarray(point, dtype=float).reshape(-1))


@dataclass(frozen=True)
class ClassificationSpec:
    """The postcondition "classified to class ``target``".

    Evaluating the spec on an output abstraction computes sound lower bounds
    of the logit differences ``y_target - y_i`` (via one exact affine
    transformer) and reports the minimum as the margin; the property is
    proven when the margin is strictly positive.
    """

    target: int
    num_classes: int

    def __post_init__(self):
        if not 0 <= self.target < self.num_classes:
            raise VerificationError(
                f"target class {self.target} out of range for {self.num_classes} classes"
            )
        if self.num_classes < 2:
            raise VerificationError("classification requires at least two classes")

    def difference_matrix(self) -> np.ndarray:
        """Matrix ``C`` with rows ``e_target - e_i`` for every ``i != target``."""
        rows = []
        for cls in range(self.num_classes):
            if cls == self.target:
                continue
            row = np.zeros(self.num_classes)
            row[self.target] = 1.0
            row[cls] = -1.0
            rows.append(row)
        return np.vstack(rows)

    def evaluate(self, output_element: AbstractElement) -> PostconditionCheck:
        """Check the postcondition on an abstraction of the network output."""
        if output_element.dim != self.num_classes:
            raise VerificationError(
                f"output abstraction has dimension {output_element.dim}, "
                f"expected {self.num_classes}"
            )
        differences = output_element.affine(self.difference_matrix())
        lower, _ = differences.concretize_bounds()
        margin = float(lower.min()) if lower.size else np.inf
        return PostconditionCheck(holds=margin > 0.0, margin=margin, lower_bounds=lower)

    def holds_concretely(self, logits: np.ndarray) -> bool:
        """Concrete counterpart, used for sanity checks and the attack harness."""
        logits = np.asarray(logits, dtype=float).reshape(-1)
        return bool(np.argmax(logits) == self.target)
