"""Baseline verifiers compared against Craft in the evaluation.

* :class:`BoxVerifier` — interval bound propagation through the abstract
  fixpoint iteration (the "Box" rows of Table 1 / Table 4 / Fig. 13):
  Craft's engine instantiated with the Box domain.
* :class:`KleeneZonotopeVerifier` — the standard-AI baseline of Section 2.2:
  Kleene iteration with joins and semantic unrolling on the Zonotope domain.
* :class:`LipschitzVerifier` — global-Lipschitz-bound certification
  (Pabbaraju et al. 2021), Appendix D.4.
* :class:`SemiSDPSurrogate` — a stand-in for the SemiSDP "Robustness Model"
  of Chen et al. 2021 (Table 3).  No SDP solver is available in this
  offline environment, so the surrogate combines (i) a *measured* local
  sensitivity bound at the fixpoint with a calibrated slack factor
  reproducing the published precision ordering (close to Craft at small
  eps, clearly below it at larger eps), (ii) the published latent-size cap
  of 87 neurons, and (iii) a runtime model fitted to the published
  per-sample runtimes.  The substitution is documented in DESIGN.md and
  EXPERIMENTS.md; all Craft-side numbers in Table 3 remain fully measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import CraftConfig, KleeneSettings
from repro.core.craft import CraftVerifier
from repro.core.kleene import KleeneEngine
from repro.core.results import VerificationOutcome, VerificationResult
from repro.domains.zonotope import Zonotope
from repro.mondeq.abstract_solvers import (
    build_initial_state,
    layout_for,
    make_abstract_step,
    make_output_map,
)
from repro.mondeq.lipschitz import certify_global_lipschitz, local_logit_sensitivity
from repro.mondeq.model import MonDEQ
from repro.verify.robustness import build_fixpoint_problem
from repro.verify.specs import ClassificationSpec, LinfBall


class BoxVerifier:
    """Craft's engine instantiated with the Box domain (Table 4, "No Zono")."""

    def __init__(self, model: MonDEQ, config: Optional[CraftConfig] = None):
        base = config if config is not None else CraftConfig()
        self.model = model
        self.config = base.with_updates(domain="box", slope_optimization="none")

    def certify(self, x: np.ndarray, label: int, epsilon: float) -> VerificationResult:
        ball = LinfBall(center=np.asarray(x, dtype=float).reshape(-1), epsilon=epsilon)
        spec = ClassificationSpec(target=int(label), num_classes=self.model.output_dim)
        problem = build_fixpoint_problem(self.model, ball, spec, self.config)
        return CraftVerifier(self.config).solve(problem)


class KleeneZonotopeVerifier:
    """Kleene iteration with joins on the Zonotope domain (Section 2.2).

    The solver state abstraction starts from the zero initialisation of the
    concrete solver (not from the concrete fixpoint — Kleene abstracts *all*
    reachable loop-head states) and is joined with its successor each step.
    """

    def __init__(
        self,
        model: MonDEQ,
        settings: Optional[KleeneSettings] = None,
        solver: str = "fb",
        alpha: Optional[float] = None,
    ):
        self.model = model
        self.settings = settings if settings is not None else KleeneSettings()
        self.solver = solver
        self.alpha = alpha if alpha is not None else 0.5 * model.fb_alpha_bound()

    def certify(self, x: np.ndarray, label: int, epsilon: float) -> VerificationResult:
        start = time.perf_counter()
        layout = layout_for(self.model, self.solver)
        ball = LinfBall(center=np.asarray(x, dtype=float).reshape(-1), epsilon=epsilon)
        spec = ClassificationSpec(target=int(label), num_classes=self.model.output_dim)
        initial = build_initial_state(
            self.model, layout, np.zeros(self.model.latent_dim), domain=Zonotope,
        )
        step = make_abstract_step(self.model, layout, ball.to_zonotope(), self.solver, self.alpha)
        engine = KleeneEngine(self.settings)
        kleene = engine.run(step, initial)
        output = make_output_map(self.model, layout)(kleene.state)
        check = spec.evaluate(output)
        elapsed = time.perf_counter() - start
        outcome = VerificationOutcome.VERIFIED if (kleene.converged and check.holds) else (
            VerificationOutcome.DIVERGED if kleene.diverged else VerificationOutcome.UNKNOWN
        )
        return VerificationResult(
            outcome=outcome,
            contained=kleene.converged,
            certified=bool(kleene.converged and check.holds),
            margin=check.margin,
            iterations_phase1=kleene.iterations,
            iterations_phase2=0,
            time_seconds=elapsed,
            output_element=output,
            notes="Kleene iteration baseline",
        )


class LipschitzVerifier:
    """Global-Lipschitz-bound certification (Pabbaraju et al. 2021)."""

    def __init__(self, model: MonDEQ):
        self.model = model

    def certify(self, x: np.ndarray, label: int, epsilon: float) -> VerificationResult:
        start = time.perf_counter()
        certificate = certify_global_lipschitz(self.model, x, int(label), epsilon, norm="linf")
        elapsed = time.perf_counter() - start
        outcome = VerificationOutcome.VERIFIED if certificate.certified else VerificationOutcome.UNKNOWN
        return VerificationResult(
            outcome=outcome,
            contained=True,
            certified=certificate.certified,
            margin=certificate.margin,
            iterations_phase1=0,
            iterations_phase2=0,
            time_seconds=elapsed,
            notes=f"global Lipschitz bound {certificate.lipschitz_bound:.3f}",
        )


@dataclass
class SemiSDPSurrogateConfig:
    """Calibration of the SemiSDP surrogate (see module docstring).

    ``slack_factor`` multiplies the measured local l-infinity sensitivity to
    model the looseness of the SDP relaxation relative to an exact local
    analysis; ``latent_cap`` and the runtime coefficients encode the
    published scalability limits (Chen et al. 2021, Table 3 of the paper).
    """

    slack_factor: float = 1.6
    latent_cap: int = 87
    runtime_coefficient: float = 1.11
    runtime_exponent: float = 1.6
    simulate_runtime: bool = False


class SemiSDPSurrogate:
    """Calibrated stand-in for the SemiSDP 'Robustness Model'."""

    def __init__(self, model: MonDEQ, config: Optional[SemiSDPSurrogateConfig] = None):
        self.model = model
        self.config = config if config is not None else SemiSDPSurrogateConfig()

    def modelled_runtime(self) -> float:
        """Per-sample runtime (seconds) predicted by the published scaling."""
        return float(
            self.config.runtime_coefficient * self.model.latent_dim**self.config.runtime_exponent
        )

    def certify(self, x: np.ndarray, label: int, epsilon: float) -> VerificationResult:
        start = time.perf_counter()
        if self.model.latent_dim > self.config.latent_cap:
            return VerificationResult(
                outcome=VerificationOutcome.UNKNOWN,
                contained=False,
                certified=False,
                margin=-np.inf,
                iterations_phase1=0,
                iterations_phase2=0,
                time_seconds=0.0,
                notes=(
                    f"SemiSDP surrogate: latent size {self.model.latent_dim} exceeds the "
                    f"published solver cap of {self.config.latent_cap} neurons"
                ),
            )
        x = np.asarray(x, dtype=float).reshape(-1)
        logits = self.model.forward(x)
        margins = logits[int(label)] - logits
        sensitivity = local_logit_sensitivity(self.model, x, int(label))
        slack = np.array(
            [
                margins[cls] - self.config.slack_factor * sensitivity[cls] * epsilon
                for cls in range(self.model.output_dim)
                if cls != int(label)
            ]
        )
        certified = bool(np.argmax(logits) == int(label) and np.all(slack > 0))
        elapsed = time.perf_counter() - start
        reported_time = self.modelled_runtime() if self.config.simulate_runtime else elapsed
        return VerificationResult(
            outcome=VerificationOutcome.VERIFIED if certified else VerificationOutcome.UNKNOWN,
            contained=True,
            certified=certified,
            margin=float(slack.min()) if slack.size else np.inf,
            iterations_phase1=0,
            iterations_phase2=0,
            time_seconds=reported_time,
            notes="SemiSDP surrogate (calibrated local-sensitivity model, see DESIGN.md)",
        )
