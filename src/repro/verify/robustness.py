"""Local robustness certification of monDEQs with Craft (Section 6.1).

This module wires the generic Craft verifier (:mod:`repro.core.craft`) to
the monDEQ substrate: it builds the joint-space abstract solver steps, the
initial state (the concrete fixpoint of the centre input, Algorithm 1
line 2), the output map and the classification postcondition, then runs the
two phases and reports a :class:`~repro.core.results.VerificationResult`.

It also provides the dataset-level evaluation harness used by Tables 2
and 3: natural accuracy, the PGD upper bound (``#Bound``), containment
count (``#Cont.``), certified count (``#Cert.``) and mean runtime.

Sweeps over many regions route through the batched certification engine
(:mod:`repro.engine`) by default — see :func:`certify_local_robustness`;
the per-sample :func:`certify_sample` loop is kept as the reference
implementation the engine's parity tests compare against.  Every abstract
domain (CH-Zonotope, Box, plain Zonotope) runs through every engine — the
batched element stack is resolved per ``CraftConfig.domain`` by
:func:`repro.engine.batched_domains.batched_domain_for`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import CraftConfig
from repro.core.craft import CraftVerifier, FixpointProblem
from repro.core.results import VerificationOutcome, VerificationResult
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.parallelotope import ParallelotopeZonotope
from repro.domains.zonotope import Zonotope
from repro.exceptions import VerificationError
from repro.mondeq.abstract_solvers import (
    build_initial_state,
    layout_for,
    make_abstract_step,
    make_output_map,
    make_z_extractor,
)
from repro.mondeq.attacks import PGDConfig, pgd_attack
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import solve_fixpoint
from repro.utils.rng import SeedLike, as_generator
from repro.verify.specs import ClassificationSpec, LinfBall

_DOMAIN_CLASSES = {
    "chzonotope": CHZonotope,
    "box": Interval,
    "zonotope": Zonotope,
    "parallelotope": ParallelotopeZonotope,
}

_logger = logging.getLogger(__name__)


def backend_label(config: CraftConfig) -> str:
    """Compact backend column for sweep rows: ``"numpy"``, ``"torch:cpu"``,
    ``"torch:cuda"``, plus ``"/f32-search"`` under the float32 search
    policy."""
    label = config.backend
    if config.backend != "numpy":
        label = f"{config.backend}:{config.backend_device}"
    if config.backend_search_dtype == "float32":
        label = f"{label}/f32-search"
    return label

#: (engine, domain) pairs whose dispatch decision has already been logged —
#: sweeps run thousands of queries, so the choice is announced once per
#: process instead of once per call.
_LOGGED_ENGINE_CHOICES: set = set()


def _log_engine_choice(engine: str, domain: str) -> None:
    key = (engine, domain)
    if key not in _LOGGED_ENGINE_CHOICES:
        _LOGGED_ENGINE_CHOICES.add(key)
        _logger.info(
            "certification sweep dispatching to engine=%r for domain=%r", engine, domain
        )


def build_fixpoint_problem(
    model: MonDEQ,
    ball: LinfBall,
    spec: Optional[ClassificationSpec],
    config: CraftConfig,
) -> FixpointProblem:
    """Construct the :class:`FixpointProblem` for one robustness query."""
    if ball.dim != model.input_dim:
        raise VerificationError(
            f"precondition dimension {ball.dim} does not match the model input "
            f"dimension {model.input_dim}"
        )
    layout = layout_for(model, config.solver1)
    if config.solver1 == "fb" and config.solver2 == "pr":
        raise VerificationError(
            "tightening with PR after an FB containment phase is not supported: "
            "the auxiliary PR state was never computed (Section 6.3)"
        )

    input_element = ball.to_element(config.domain)
    concrete = solve_fixpoint(
        model,
        ball.center,
        method=config.solver1,
        alpha=config.alpha1 if config.solver1 == "pr" else None,
        tol=config.concrete_tol,
        max_iterations=config.concrete_max_iterations,
    )
    domain_cls = _DOMAIN_CLASSES[config.domain]
    initial_state = build_initial_state(model, layout, concrete.z, domain=domain_cls)

    contraction_step = make_abstract_step(
        model, layout, input_element, config.solver1, config.alpha1,
        use_box_component=config.use_box_component,
    )

    def tightening_factory(solver: str, alpha: float, slope_delta: float):
        return make_abstract_step(
            model, layout, input_element, solver, alpha, slope_delta=slope_delta,
            use_box_component=config.use_box_component,
        )

    output_map = make_output_map(model, layout)
    postcondition = spec.evaluate if spec is not None else None
    return FixpointProblem(
        input_element=input_element,
        initial_state=initial_state,
        contraction_step=contraction_step,
        tightening_step_factory=tightening_factory,
        extract_output=output_map,
        postcondition=postcondition,
        description=f"{model.name}: robustness eps={ball.epsilon} target={getattr(spec, 'target', None)}",
    )


def certify_sample(
    model: MonDEQ,
    x: np.ndarray,
    label: int,
    epsilon: float,
    config: Optional[CraftConfig] = None,
    clip_min: Optional[float] = 0.0,
    clip_max: Optional[float] = 1.0,
) -> VerificationResult:
    """Certify l-infinity robustness of a single sample with Craft.

    If the model misclassifies ``x`` the result is ``MISCLASSIFIED`` without
    running the abstract analysis (the property is trivially false).

    Escalation-ladder configurations run the per-sample waterfall: the
    sample is certified in the cheapest configured domain first and climbs
    to the next stage while the verdict stays unresolved (the sequential
    reference semantics the engine ladders are parity-tested against).
    """
    from dataclasses import replace as _replace

    config = config if config is not None else CraftConfig()
    x = np.asarray(x, dtype=float).reshape(-1)
    prediction = model.predict(x)
    if prediction != label:
        return VerificationResult(
            outcome=VerificationOutcome.MISCLASSIFIED,
            contained=False,
            certified=False,
            margin=-np.inf,
            iterations_phase1=0,
            iterations_phase2=0,
            time_seconds=0.0,
            notes=f"model predicts class {prediction}, expected {label}",
        )
    from repro.engine.escalation import should_escalate

    ball = LinfBall(center=x, epsilon=epsilon, clip_min=clip_min, clip_max=clip_max)
    spec = ClassificationSpec(target=int(label), num_classes=model.output_dim)
    result = None
    for stage_config in config.stage_configs():
        problem = build_fixpoint_problem(model, ball, spec, stage_config)
        result = CraftVerifier(stage_config).solve(problem)
        result = _replace(result, stage=stage_config.domain)
        if not should_escalate(result):
            break
    return result


def fixpoint_set_abstraction(
    model: MonDEQ,
    x: np.ndarray,
    epsilon: float,
    config: Optional[CraftConfig] = None,
    tighten_iterations: int = 20,
    clip_min: Optional[float] = 0.0,
    clip_max: Optional[float] = 1.0,
):
    """Sound abstraction of the latent fixpoint set ``Z*`` for an input ball.

    Used by the width-trace (Fig. 13), HCAS and running-example experiments.
    Returns the :class:`~repro.core.results.FixpointAbstraction` over the
    *joint* space plus an extractor mapping it to the ``z`` block.
    """
    config = config if config is not None else CraftConfig()
    x = np.asarray(x, dtype=float).reshape(-1)
    ball = LinfBall(center=x, epsilon=epsilon, clip_min=clip_min, clip_max=clip_max)
    problem = build_fixpoint_problem(model, ball, None, config)
    verifier = CraftVerifier(config)
    abstraction = verifier.compute_fixpoint_set(problem, tighten_iterations=tighten_iterations)
    layout = layout_for(model, config.solver1)
    return abstraction, make_z_extractor(layout)


def certify_local_robustness(
    model: MonDEQ,
    xs: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
    config: Optional[CraftConfig] = None,
    engine: str = "batched",
    batch_size: Optional[int] = None,
    cache_dir: Optional[str] = None,
    clip_min: Optional[float] = 0.0,
    clip_max: Optional[float] = 1.0,
    num_workers: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
    keep_abstractions: bool = True,
) -> List[VerificationResult]:
    """Certify l-infinity robustness for every (row of ``xs``, label) query.

    Parameters
    ----------
    model:
        The monDEQ whose predictions are being certified.
    xs, labels, epsilon:
        Query centres (one row per query), their expected classes, and the
        shared l-infinity perturbation radius.
    config:
        The :class:`~repro.core.config.CraftConfig` controlling domain,
        solvers and budgets.  Every ``config.domain`` — ``"chzonotope"``,
        ``"box"``, ``"zonotope"`` and ``"parallelotope"`` — runs through
        every engine; the batched stack class is resolved by
        :func:`repro.engine.batched_domains.batched_domain_for`, and an
        unknown domain name raises
        :class:`~repro.exceptions.ConfigurationError` (never a silent
        sequential fallback).  The chosen (engine, domain) dispatch is
        logged once per process on the ``repro.verify.robustness`` logger.

        An **escalation ladder** (``config.domains`` with several stages,
        e.g. ``CraftConfig.escalation()``) makes the domain choice
        per-query on every engine: each query starts in the cheapest
        stage, certified/falsified verdicts exit early, unresolved ones
        climb (:mod:`repro.engine.escalation`).  Each result's ``stage``
        field names the resolving domain.
    engine:
        Execution strategy:

        * ``"batched"`` (default) routes through the vectorised
          certification engine (:mod:`repro.engine`): the whole sweep
          shares one
          :class:`~repro.engine.scheduler.BatchCertificationScheduler`,
          which certifies up to ``batch_size`` regions per pass and
          optionally persists verdicts to ``cache_dir``.
        * ``"sharded"`` additionally fans the batches out to
          ``num_workers`` worker processes
          (:class:`~repro.engine.sharded.ShardedScheduler`) — the scale-up
          path for large sweeps; weights are shipped to each worker once
          and the on-disk cache is shared across workers.
        * ``"sequential"`` maps :func:`certify_sample` over the queries —
          the reference implementation the engine's parity tests compare
          against.
        * ``"service"`` admits the sweep through the long-lived
          certification service's async frontend
          (:func:`repro.service.serve_sweep`): cache-first admission,
          coalescing, and per-cell verdict streaming, backed by a
          batched scheduler.  Same verdicts as every other engine — this
          is the parity entry point for the service stack; long-lived
          deployments construct a
          :class:`~repro.service.CertificationFrontend` directly.
    batch_size:
        Regions per batched pass.  ``None`` (default) sizes batches from
        the phase-two working-set estimate so one batch fits the
        last-level cache (:func:`repro.engine.working_set.auto_batch_size`);
        an explicit ``config.engine_batch_size`` takes precedence either
        way.  Batch sizing never changes verdicts, only memory locality.
    cache_dir:
        Optional on-disk fixpoint-cache directory; re-running a sweep with
        unchanged weights/config answers repeated queries from the cache.
    num_workers, timeout_seconds, keep_abstractions:
        Sharded-engine knobs: worker-pool size (default: available CPUs),
        the bound on every wait for a shard result (default 600 s — a hung
        worker fails the sweep fast), and whether workers ship the
        abstraction elements back (``False`` strips them before they cross
        the pool pipe; verdict-only consumers should strip).

    Returns
    -------
    list of VerificationResult
        Per-query results in input order.  All engines return identical
        verdicts and margins/bounds within 1e-9 (the engine parity
        contract, enforced by ``tests/engine/test_parity.py`` and the
        differential fuzzing suite).
    """
    config = config if config is not None else CraftConfig()
    if engine not in ("batched", "sequential", "sharded", "service"):
        raise VerificationError(
            f"unknown engine {engine!r}; choose 'batched', 'sharded', "
            f"'sequential' or 'service'"
        )
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if xs.shape[0] != labels.shape[0]:
        raise VerificationError(
            f"xs and labels must have matching lengths, got {xs.shape[0]} vs {labels.shape[0]}"
        )
    _log_engine_choice(engine, " -> ".join(config.domains))
    if engine == "sharded":
        from repro.engine.sharded import ShardedScheduler

        extra = {} if timeout_seconds is None else {"timeout_seconds": timeout_seconds}
        with ShardedScheduler(
            model, config, num_workers=num_workers, batch_size=batch_size,
            cache_dir=cache_dir, keep_abstractions=keep_abstractions, **extra,
        ) as scheduler:
            return scheduler.certify(
                xs, labels, epsilon, clip_min=clip_min, clip_max=clip_max
            ).results
    if engine == "service":
        from repro.service import serve_sweep

        return serve_sweep(
            model, xs, labels, epsilon, config=config,
            clip_min=clip_min, clip_max=clip_max, cache_dir=cache_dir,
        ).results
    if engine == "batched":
        from repro.engine.scheduler import BatchCertificationScheduler

        scheduler = BatchCertificationScheduler(
            model, config, batch_size=batch_size, cache_dir=cache_dir
        )
        return scheduler.certify(xs, labels, epsilon, clip_min=clip_min, clip_max=clip_max).results
    return [
        certify_sample(model, x, int(label), epsilon, config, clip_min=clip_min, clip_max=clip_max)
        for x, label in zip(xs, labels)
    ]


@dataclass
class SampleRecord:
    """Per-sample record of the dataset-level evaluation (Tables 2 / 3)."""

    index: int
    label: int
    predicted: int
    correct: bool
    empirically_robust: Optional[bool]
    contained: bool
    certified: bool
    margin: float
    time_seconds: float
    outcome: str
    #: Resolving ladder stage (abstract domain) of the verdict; ``None``
    #: for misclassified samples (never enter the waterfall).
    stage: Optional[str] = None
    #: Whether the verdict was replayed from the fixpoint cache.
    cached: bool = False
    #: Which cache tier answered (``"lru"``/``"disk"``/``"dominance"``,
    #: ``None`` for live verdicts); ``"dominance"`` marks verdicts served
    #: from a dominating entry — this exact query was never computed.
    cache_tier: Optional[str] = None
    #: Measured peak error-term count of the query (``None`` when the
    #: abstract analysis never ran — misclassification short-circuits).
    peak_error_terms: Optional[int] = None
    #: Phase-one containment-search iterations the verdict ran — the
    #: quantity the acceleration proposer shrinks.
    iterations_phase1: int = 0
    #: Whether phase one exited through an accepted acceleration proposal.
    accelerated: bool = False
    #: Acceleration proposals tried for this query (accepted or not).
    accel_proposals: int = 0


@dataclass
class RobustnessReport:
    """Aggregated results over an evaluation set (one table row)."""

    model_name: str
    epsilon: float
    records: List[SampleRecord] = field(default_factory=list)
    #: Analytic per-stage peak error-term estimates
    #: (:func:`repro.engine.working_set.stage_error_term_estimates`),
    #: surfaced next to the measured peaks by :meth:`as_row` so sweep
    #: output shows how tight the working-set model is on this workload.
    error_term_estimates: Dict[str, int] = field(default_factory=dict)
    #: Array-backend triple the sweep ran on (``"numpy"``,
    #: ``"torch:cpu"``, ``"torch:cuda"``, with ``"/f32-search"`` appended
    #: under the float32 search policy) — rows from different backends
    #: must be distinguishable in sweep output.
    backend: str = "numpy"

    @property
    def num_samples(self) -> int:
        return len(self.records)

    @property
    def num_correct(self) -> int:
        return sum(record.correct for record in self.records)

    @property
    def num_bound(self) -> int:
        return sum(bool(record.empirically_robust) for record in self.records)

    @property
    def num_contained(self) -> int:
        return sum(record.contained for record in self.records)

    @property
    def num_certified(self) -> int:
        return sum(record.certified for record in self.records)

    @property
    def mean_time_correct(self) -> float:
        times = [record.time_seconds for record in self.records if record.correct]
        return float(np.mean(times)) if times else 0.0

    @property
    def cache_hits(self) -> int:
        """Verdicts replayed from the on-disk fixpoint cache."""
        return sum(record.cached for record in self.records)

    @property
    def cache_misses(self) -> int:
        """Verdicts computed live (including misclassification shortcuts)."""
        return self.num_samples - self.cache_hits

    @property
    def cache_dominance_hits(self) -> int:
        """Verdicts answered by dominance (certified superset region or
        falsifying point) — queries never literally computed."""
        return sum(record.cache_tier == "dominance" for record in self.records)

    @property
    def phase1_iterations(self) -> int:
        """Total phase-one iterations across the evaluation set.

        Compare rows with ``CraftConfig.acceleration`` on and off at equal
        ``cert`` to read the proposer's savings directly off sweep output.
        """
        return sum(record.iterations_phase1 for record in self.records)

    @property
    def accel_accepted(self) -> int:
        """Verdicts that exited phase one through an accepted proposal."""
        return sum(record.accelerated for record in self.records)

    @property
    def accel_proposals(self) -> int:
        """Acceleration proposals tried across the set (accepted or not)."""
        return sum(record.accel_proposals for record in self.records)

    @property
    def stage_counts(self) -> dict:
        """Resolving-stage histogram, cheapest domain first.

        This is where escalation savings become visible in sweep output:
        queries a cheap stage resolved never paid the expensive stack.
        """
        from repro.engine.escalation import stage_histogram

        return stage_histogram(self.records)

    @property
    def measured_error_terms(self) -> Dict[str, int]:
        """Per-stage maxima of the measured peak error-term counts."""
        measured: Dict[str, int] = {}
        for record in self.records:
            if record.stage is not None and record.peak_error_terms:
                measured[record.stage] = max(
                    measured.get(record.stage, 0), record.peak_error_terms
                )
        return measured

    @property
    def error_term_calibration(self) -> Dict[str, Dict[str, int]]:
        """Estimate-vs-measured peak error terms per resolving stage.

        The estimate is the analytic working-set bound the batch sizing
        uses; the measurement is the widest generator stack any query of
        the stage actually streamed.  A large gap means batches could be
        sized more aggressively (ROADMAP: calibrate the working-set
        estimate).
        """
        measured = self.measured_error_terms
        return {
            stage: {
                "estimated": self.error_term_estimates.get(stage, 0),
                "measured": measured.get(stage, 0),
            }
            for stage in sorted(set(self.error_term_estimates) | set(measured))
        }

    def as_row(self) -> dict:
        """Dictionary matching the columns of Table 2 (plus the fixpoint-cache,
        escalation-stage and working-set-calibration counters of the engine
        subsystem)."""
        return {
            "model": self.model_name,
            "epsilon": self.epsilon,
            "acc": self.num_correct,
            "bound": self.num_bound,
            "cont": self.num_contained,
            "cert": self.num_certified,
            "time": round(self.mean_time_correct, 3),
            "samples": self.num_samples,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_dominance_hits": self.cache_dominance_hits,
            "stages": self.stage_counts,
            "error_terms": self.error_term_calibration,
            "phase1_iterations": self.phase1_iterations,
            "accel_accepted": self.accel_accepted,
            "accel_proposals": self.accel_proposals,
            "backend": self.backend,
        }


class RobustnessVerifier:
    """Dataset-level robustness evaluation harness."""

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        attack_config: Optional[PGDConfig] = None,
    ):
        self.model = model
        self.config = config if config is not None else CraftConfig()
        self.attack_config = attack_config if attack_config is not None else PGDConfig()

    def evaluate(
        self,
        xs: np.ndarray,
        labels: np.ndarray,
        epsilon: float,
        max_samples: Optional[int] = None,
        run_attack: bool = True,
        seed: SeedLike = 0,
        engine: str = "batched",
        num_workers: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        cache_dir: Optional[str] = None,
    ) -> RobustnessReport:
        """Evaluate the first ``max_samples`` samples (paper: first 100).

        For each correctly classified sample the PGD attack provides the
        empirical-robustness upper bound, and Craft attempts certification;
        misclassified samples only count towards natural accuracy.

        Parameters
        ----------
        xs, labels, epsilon:
            Evaluation inputs, their reference labels, and the shared
            perturbation radius.
        max_samples:
            Truncate the evaluation to the first ``max_samples`` rows
            (``None`` evaluates everything; the paper uses 100).
        run_attack, seed:
            Whether to run the PGD upper-bound attack on correctly
            classified samples, and the attack's RNG seed.
        engine:
            ``"batched"`` (default) runs the sweep through the vectorised
            certification engine, ``"sharded"`` fans it out over
            ``num_workers`` processes
            (:class:`~repro.engine.sharded.ShardedScheduler`), and
            ``"sequential"`` restores the per-sample reference loop.
            Every ``config.domain`` (CH-Zonotope, Box, Zonotope) is
            supported by every engine, and all engines produce identical
            verdicts (the parity contract).  Batch sizes follow
            ``config.engine_batch_size`` / the cache-aware automatic
            estimate, exactly as in :func:`certify_local_robustness`.
        num_workers, timeout_seconds:
            Sharded-engine pool size and the per-shard wait bound
            (default 600 s).
        cache_dir:
            Optional on-disk fixpoint-cache directory (``batched`` and
            ``sharded`` engines; the sequential reference loop does not
            consult a cache).  Replayed verdicts are flagged per record
            and counted by ``RobustnessReport.cache_hits`` /
            ``cache_misses``.

        Escalation-ladder configurations (``CraftConfig.domains`` with
        several stages) run the waterfall on every engine; each record's
        ``stage`` names the resolving domain and
        ``RobustnessReport.stage_counts`` aggregates them (surfaced by
        ``as_row`` next to the cache counters).
        """
        rng = as_generator(seed)
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        labels = np.asarray(labels, dtype=int).reshape(-1)
        if max_samples is not None:
            xs = xs[:max_samples]
            labels = labels[:max_samples]

        # The report only reads scalar verdict fields, so sharded workers
        # need not serialise the abstraction elements back.
        results = certify_local_robustness(
            self.model, xs, labels, epsilon, self.config, engine=engine,
            num_workers=num_workers, timeout_seconds=timeout_seconds,
            keep_abstractions=False, cache_dir=cache_dir,
        )
        # One vectorised fixpoint pass recovers every prediction (same
        # pr/tol defaults as model.predict) instead of a sequential solve
        # per record.
        predictions = self.model.predict_batch(xs)
        from repro.engine.working_set import stage_error_term_estimates

        report = RobustnessReport(
            model_name=self.model.name,
            epsilon=epsilon,
            error_term_estimates=stage_error_term_estimates(self.model, self.config),
            backend=backend_label(self.config),
        )
        for index, (x, label, result) in enumerate(zip(xs, labels, results)):
            prediction = int(predictions[index])
            correct = prediction == label
            empirically_robust: Optional[bool] = None
            if correct and run_attack:
                attack = pgd_attack(self.model, x, int(label), epsilon, self.attack_config, seed=rng)
                empirically_robust = not attack.success
            report.records.append(
                SampleRecord(
                    index=index,
                    label=int(label),
                    predicted=int(prediction),
                    correct=bool(correct),
                    empirically_robust=empirically_robust,
                    contained=result.contained,
                    certified=result.certified,
                    margin=result.margin,
                    time_seconds=result.time_seconds,
                    outcome=result.outcome.value,
                    stage=result.stage,
                    cached=result.from_cache,
                    cache_tier=result.cache_tier,
                    peak_error_terms=result.peak_error_terms,
                    iterations_phase1=result.iterations_phase1,
                    accelerated=result.accelerated,
                    accel_proposals=result.accel_proposals,
                )
            )
        return report
