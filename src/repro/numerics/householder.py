"""The Householder square-root case study (Section 6.5 and Appendix A).

The analysed program computes the reciprocal square root ``s* = 1/sqrt(x)``
by the (cubically convergent) Householder iteration::

    def root(x):
        s = s0
        while s <= 0 or |s*s - 1/x| >= eps:
            h = 1 - x*s*s
            s = s + s * (0.5*h + 0.375*h*h)
        return s

The abstract state is the 1-dimensional loop variable ``s``; the input
``x`` enters every abstract step through a *persistent* noise symbol
(reserved at column 0 of the state's error matrix), so the correlation
between ``s`` and ``x`` — which is what makes the fixpoint set narrow — is
preserved across iterations.  The loop body multiplies abstract variables,
so the step is evaluated with shared-symbol affine arithmetic
(:mod:`repro.numerics.affine_form`, Taylor1+ style) and the result is
stored as a 1-d CH-Zonotope.

Two analyses are provided, matching Table 5 / Fig. 16:

* :func:`analyze_root_craft` — the paper's contraction-based termination
  (Theorem 3.1) followed by fixpoint-set-preserving tightening iterations,
  plus the reachable-value expansion of Appendix A (Theorem A.2).  In one
  dimension the containment check is exact interval inclusion.
* :func:`analyze_root_kleene` — Kleene iteration with joins and
  condition-driven semantic unrolling (Blanchet et al. 2002).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.config import ContractionSettings, KleeneSettings
from repro.core.contraction import ContractionEngine, DomainOps
from repro.core.expansion import ExpansionSchedule
from repro.core.kleene import KleeneEngine
from repro.domains.chzonotope import CHZonotope
from repro.exceptions import DomainError
from repro.numerics.affine_form import AffineForm, bivariate_polynomial_form

# The Householder update expanded as a polynomial in (x, s):
#   F(x, s) = s + s (0.5 h + 0.375 h^2)  with  h = 1 - x s^2
#           = 1.875 s - 1.25 x s^3 + 0.375 x^2 s^5.
_HOUSEHOLDER_TERMS = {(0, 1): 1.875, (1, 3): -1.25, (2, 5): 0.375}


# ----------------------------------------------------------------------
# Concrete semantics
# ----------------------------------------------------------------------


def householder_step(x: float, s: float) -> float:
    """One iteration of the Householder update for ``1/sqrt(x)``."""
    h = 1.0 - x * s * s
    return s + s * (0.5 * h + 0.375 * h * h)


def root(x: float, s0: float = 0.125, eps: float = 1e-8, max_iterations: int = 200) -> float:
    """The concrete program of Fig. 14 (returns ``~1/sqrt(x)``)."""
    if x <= 0:
        raise DomainError("root requires a positive input")
    s = s0
    for _ in range(max_iterations):
        if s > 0 and abs(s * s - 1.0 / x) < eps:
            return s
        s = householder_step(x, s)
    return s


def exact_root_interval(x_low: float, x_high: float) -> Tuple[float, float]:
    """The exact fixpoint set of ``sqrt(x)`` (the paper reports ``1/s*``)."""
    if x_low <= 0 or x_high < x_low:
        raise DomainError("the input interval must be positive and ordered")
    return float(np.sqrt(x_low)), float(np.sqrt(x_high))


# ----------------------------------------------------------------------
# Abstract step via shared-symbol affine arithmetic
# ----------------------------------------------------------------------


def initial_state(s0: float = 0.125) -> CHZonotope:
    """Initial 1-d abstraction ``{s0}`` (column 0 is reserved for the input symbol)."""
    return CHZonotope(np.array([s0]), np.zeros((1, 1)), np.zeros(1))


def _state_to_form(element: CHZonotope) -> AffineForm:
    """Interpret the 1-d state (Box errors cast to symbols) as an affine form."""
    if element.dim != 1:
        raise DomainError("the Householder state must be 1-dimensional")
    zonotope = element.to_zonotope()
    return AffineForm(zonotope.center[0], zonotope.generators[0], 0.0)


def _form_to_state(form: AffineForm) -> CHZonotope:
    """Store an affine form back as a 1-d CH-Zonotope (lump error -> Box)."""
    return CHZonotope(
        np.array([form.center]), form.coefficients.reshape(1, -1), np.array([form.error])
    )


def _step_forms_taylor(s_form: AffineForm, x_form: AffineForm) -> AffineForm:
    """Householder body as a (sheared) Taylor1+ polynomial transformer.

    The first-order part stays correlated with the shared symbols of ``s``
    and ``x``; all higher-order terms are soundly folded into one fresh
    symbol whose magnitude scales with the *residual* (input-independent)
    deviation of ``s`` (see :func:`bivariate_polynomial_form`).
    """
    return bivariate_polynomial_form(_HOUSEHOLDER_TERMS, x_form, s_form)


def _step_forms_affine(s_form: AffineForm, x_form: AffineForm) -> AffineForm:
    """Householder body evaluated with plain affine-arithmetic products.

    This is the standard Zonotope-domain evaluation (one fresh symbol per
    product, remainder ``rad * rad``) and is noticeably less precise than
    the Taylor transformer for wide input ranges; it is the baseline
    transformer used by the Kleene analysis, matching a conventional
    Zonotope abstract interpreter.
    """
    h = 1.0 - (x_form * (s_form * s_form))
    update = h.scale(0.5) + (h * h).scale(0.375)
    return s_form + (s_form * update)


_TRANSFORMERS = {"taylor": _step_forms_taylor, "affine": _step_forms_affine}


def make_abstract_root_step(
    x_low: float,
    x_high: float,
    reduce_symbols: bool = False,
    transformer: str = "taylor",
) -> Callable[[CHZonotope], CHZonotope]:
    """Build the abstract transformer of one Householder iteration.

    The input symbol lives at column 0 of the state's error matrix, so its
    coefficient persists (and cancels) across iterations.  With
    ``reduce_symbols=True`` all other columns are merged into a single one
    after every step (exact in one dimension), which keeps the
    representation at two error terms — the mode used by the Kleene
    baseline so its shared-symbol join stays applicable.  ``transformer``
    selects how the non-linear body is abstracted: ``"taylor"`` (sheared
    Taylor1+ polynomial form, used by Craft) or ``"affine"`` (plain
    affine-arithmetic products, the conventional Zonotope evaluation).
    """
    if x_low <= 0 or x_high < x_low:
        raise DomainError("the input interval must be positive and ordered")
    if transformer not in _TRANSFORMERS:
        raise DomainError(
            f"unknown transformer {transformer!r}; choose from {sorted(_TRANSFORMERS)}"
        )
    body = _TRANSFORMERS[transformer]
    x_center = 0.5 * (x_low + x_high)
    x_radius = 0.5 * (x_high - x_low)

    def step(element: CHZonotope) -> CHZonotope:
        s_form = _state_to_form(element)
        num_symbols = max(1, s_form.num_symbols)
        s_form = s_form.extend(num_symbols)
        x_form = AffineForm.symbol(x_center, x_radius, index=0, num_symbols=num_symbols)
        s_next = body(s_form, x_form)
        state = _form_to_state(s_next)
        if reduce_symbols:
            state = _merge_secondary_symbols(state)
        return state

    return step


def abstract_root_step_soundness_check(
    x_low: float,
    x_high: float,
    transformer: str = "taylor",
    trials: int = 50,
    iterations: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Sampling-based soundness check of the abstract Householder step.

    Concrete trajectories are simulated by sampling the shared noise symbols
    (symbol 0 is the input's) and checking after every abstract step that
    the concrete iterate stays within the abstraction's interval bounds.
    Intended for the test-suite; never used on the verification path.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    step = make_abstract_root_step(x_low, x_high, transformer=transformer)
    x_center = 0.5 * (x_low + x_high)
    x_radius = 0.5 * (x_high - x_low)
    for _ in range(trials):
        x_eps = rng.uniform(-1.0, 1.0)
        x_value = x_center + x_radius * x_eps
        s_value = rng.uniform(0.1, 0.26)
        state = initial_state(s_value)
        for _ in range(iterations):
            state = step(state)
            s_value = householder_step(x_value, s_value)
            # Necessary condition for soundness: the concrete iterate started
            # from a point inside the previous abstraction must stay within
            # the new abstraction's interval bounds.
            lower, upper = state.concretize_bounds()
            if not (lower[0] - 1e-9 <= s_value <= upper[0] + 1e-9):
                return False
    return True


def _merge_secondary_symbols(element: CHZonotope) -> CHZonotope:
    """Merge every error term except the input symbol into one (exact in 1-d)."""
    generators = element.generators
    merged = np.abs(generators[:, 1:]).sum(axis=1) if generators.shape[1] > 1 else np.zeros(1)
    new_generators = np.hstack([generators[:, :1], merged.reshape(1, 1)])
    return CHZonotope(element.center, new_generators, element.box)


def householder_domain_ops(w_mul: float = 1e-3, w_add: float = 1e-4) -> DomainOps:
    """Domain operations for the 1-d analysis.

    Consolidation keeps every error term (the representation is tiny) and
    only applies the expansion of Eq. (10) by enlarging the Box component;
    the containment check is exact interval inclusion, which coincides with
    set inclusion in one dimension.
    """

    def consolidate(element: CHZonotope, basis, expansion_mul, expansion_add):
        del basis
        radius = float(element.width[0]) / 2.0
        enlargement = expansion_mul * radius + expansion_add
        return element.enlarge_box(enlargement)

    def contains(outer: CHZonotope, inner: CHZonotope) -> bool:
        outer_lower, outer_upper = outer.concretize_bounds()
        inner_lower, inner_upper = inner.concretize_bounds()
        return bool(
            np.all(inner_lower >= outer_lower - 1e-12)
            and np.all(inner_upper <= outer_upper + 1e-12)
        )

    del w_mul, w_add  # the engine passes the expansion schedule values explicitly
    return DomainOps(consolidate=consolidate, contains=contains, compute_basis=None)


def termination_may_trigger(element: CHZonotope, x_low: float, x_high: float, eps: float) -> bool:
    """Whether the loop guard ``s > 0 and |s*s - 1/x| < eps`` may be satisfied.

    Used for condition-driven semantic unrolling in the Kleene baseline: as
    long as the condition provably cannot trigger, the loop state does not
    flow to the loop exit and no join is needed.
    """
    s_form = _state_to_form(element)
    if x_low <= 0:
        return True
    reciprocal_low, reciprocal_high = 1.0 / x_high, 1.0 / x_low
    square = s_form * s_form
    difference_low = square.lower - reciprocal_high
    difference_high = square.upper - reciprocal_low
    may_be_small = difference_low < eps and difference_high > -eps
    may_be_positive = s_form.upper > 0
    return bool(may_be_small and may_be_positive)


# ----------------------------------------------------------------------
# Analyses
# ----------------------------------------------------------------------


@dataclass
class HouseholderAnalysis:
    """Result of one analysis of the ``root`` program.

    ``s_interval`` bounds the loop variable ``s`` (the reciprocal square
    root); ``root_interval`` is its reciprocal, the quantity Table 5
    reports; ``reachable_root_interval`` additionally accounts for the
    termination threshold (Appendix A, only filled by the Craft analysis).
    """

    method: str
    converged: bool
    iterations: int
    s_interval: Tuple[float, float]
    root_interval: Tuple[float, float]
    reachable_root_interval: Optional[Tuple[float, float]] = None
    trace: List[float] = field(default_factory=list)
    s_trace: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return not self.converged


def _s_bounds(element: CHZonotope) -> Tuple[float, float]:
    lower, upper = element.concretize_bounds()
    return float(lower[0]), float(upper[0])


def _reciprocal_interval(s_low: float, s_high: float) -> Tuple[float, float]:
    if s_low <= 0:
        return 0.0, np.inf
    return 1.0 / s_high, 1.0 / s_low


def _collect_s_trace(step, state, iterations: int) -> List[Tuple[float, float]]:
    """Replay ``iterations`` abstract steps and record the s-interval trace (Fig. 16)."""
    trace = [_s_bounds(state)]
    for _ in range(iterations):
        state = step(state)
        trace.append(_s_bounds(state))
    return trace


def analyze_root_craft(
    x_low: float,
    x_high: float,
    s0: float = 0.125,
    eps: float = 1e-8,
    tighten_iterations: int = 30,
    settings: Optional[ContractionSettings] = None,
    w_mul: float = 1e-3,
    w_add: float = 1e-4,
    initialize_at_fixpoint: bool = True,
    transformer: str = "taylor",
) -> HouseholderAnalysis:
    """Analyse ``root`` with the contraction-based framework (Craft).

    Phase one iterates the abstract Householder step until the containment
    check triggers (Theorem 3.1); phase two applies ``tighten_iterations``
    further steps — sound because the concrete step is locally Lipschitz on
    the reachable region and maps fixpoints onto themselves (Theorem 3.3).
    Finally the reachable-value interval of Appendix A is obtained by
    enlarging the fixpoint abstraction by ``sqrt(eps)`` (Theorem A.2).

    Following Algorithm 1 (line 2), the abstract iteration is initialised at
    the concrete fixpoint of the interval midpoint (Theorem 3.1 permits any
    fixed initial point); set ``initialize_at_fixpoint=False`` to start from
    the program's own ``s0`` instead.
    """
    settings = settings if settings is not None else ContractionSettings(
        max_iterations=100, consolidate_every=1, basis_recompute_every=1,
        history_size=5, abort_width=1e12,
    )
    expansion = ExpansionSchedule(mode="const", w_mul=w_mul, w_add=w_add)
    engine = ContractionEngine(settings, householder_domain_ops(), expansion)
    step = make_abstract_root_step(x_low, x_high, transformer=transformer)
    start = root(0.5 * (x_low + x_high), s0=s0, eps=eps) if initialize_at_fixpoint else s0
    state0 = initial_state(start)
    result = engine.run(step, state0)

    state = result.state
    iterations = result.iterations
    if result.contained:
        for _ in range(tighten_iterations):
            state = step(state)
            iterations += 1

    s_low, s_high = _s_bounds(state)
    analysis = HouseholderAnalysis(
        method="craft",
        converged=result.contained,
        iterations=iterations,
        s_interval=(s_low, s_high),
        root_interval=_reciprocal_interval(s_low, s_high),
        trace=[float(width) for width in result.width_trace],
        s_trace=_collect_s_trace(step, state0, min(iterations, 25)),
    )
    if result.contained:
        margin = float(np.sqrt(eps))
        analysis.reachable_root_interval = _reciprocal_interval(s_low - margin, s_high + margin)
    return analysis


def analyze_root_kleene(
    x_low: float,
    x_high: float,
    s0: float = 0.125,
    eps: float = 1e-8,
    settings: Optional[KleeneSettings] = None,
    max_unroll: int = 50,
    transformer: str = "affine",
) -> HouseholderAnalysis:
    """Analyse ``root`` with Kleene iteration (joins + semantic unrolling).

    Semantic unrolling is condition-driven: iterations are unrolled without
    a join while the termination condition provably cannot trigger
    (:func:`termination_may_trigger`), after which joined Kleene iteration
    runs until a post-fixpoint or divergence.
    """
    step = make_abstract_root_step(x_low, x_high, reduce_symbols=True, transformer=transformer)
    state0 = initial_state(s0)
    unroll = 0
    probe = state0
    while unroll < max_unroll and not termination_may_trigger(probe, x_low, x_high, eps):
        probe = step(probe)
        unroll += 1

    if settings is None:
        settings = KleeneSettings(
            max_iterations=120, semantic_unrolling=unroll, widen_after=60, abort_width=1e12
        )
    engine = KleeneEngine(settings)
    result = engine.run(step, state0)

    s_low, s_high = _s_bounds(result.state)
    converged = bool(result.converged and not result.diverged)
    return HouseholderAnalysis(
        method="kleene",
        converged=converged,
        iterations=result.iterations,
        s_interval=(s_low, s_high),
        root_interval=_reciprocal_interval(s_low, s_high),
        trace=[float(width) for width in result.width_trace],
        s_trace=_collect_s_trace(step, state0, min(result.iterations, 25)),
    )
