"""Numerical-program case studies (Section 6.5 / Appendix A)."""

from repro.numerics.affine_form import AffineForm
from repro.numerics.householder import (
    HouseholderAnalysis,
    analyze_root_craft,
    analyze_root_kleene,
    exact_root_interval,
    householder_step,
    root,
)

__all__ = [
    "AffineForm",
    "HouseholderAnalysis",
    "analyze_root_craft",
    "analyze_root_kleene",
    "exact_root_interval",
    "householder_step",
    "root",
]
