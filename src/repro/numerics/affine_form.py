"""Scalar affine arithmetic (the Taylor1+/Zonotope view of a single variable).

An :class:`AffineForm` represents a scalar quantity as

    x = center + sum_i coefficients[i] * eps_i + error * eps_fresh,

where the ``eps_i`` are shared noise symbols in ``[-1, 1]`` and ``error`` is
a non-negative lump of *uncorrelated* noise.  A vector of affine forms over
the same symbol space is exactly a (CH-)Zonotope: the shared coefficients
form the error matrix ``A`` and the lumped errors the Box vector ``b``.

Non-linear operations (products) introduce a remainder term.  Following
Taylor1+ (Ghorbal et al. 2009) the remainder is emitted as a **fresh noise
symbol appended to the coefficient vector** rather than folded into the
lump: this keeps the remainder correlated with later occurrences of the
same sub-expression, which is essential for contractive iterations such as
the Householder update (folding it into the lump makes the abstract
iteration expansive even when the concrete one contracts).

.. note::
   Fresh symbols are allocated positionally: a product's remainder symbol
   is placed at index ``max(len(a), len(b))``.  This is sound as long as
   expressions are evaluated as a *sequential chain* (every product's
   operands already contain all symbols allocated so far), which holds for
   the straight-line iteration bodies analysed in
   :mod:`repro.numerics.householder`.  Do not sum two products that were
   built independently from the same inputs — wrap one of them with
   :meth:`AffineForm.promote_error` first if such a pattern is ever needed.

Binary operations automatically align operands of different lengths by
zero-padding the shorter one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.exceptions import DomainError

Scalar = Union[int, float]


def _pad(coefficients: np.ndarray, length: int) -> np.ndarray:
    if coefficients.shape[0] >= length:
        return coefficients
    return np.concatenate([coefficients, np.zeros(length - coefficients.shape[0])])


@dataclass(frozen=True)
class AffineForm:
    """A scalar affine form over a growable space of shared noise symbols."""

    center: float
    coefficients: np.ndarray
    error: float = 0.0

    def __post_init__(self):
        coefficients = np.asarray(self.coefficients, dtype=float).reshape(-1)
        object.__setattr__(self, "coefficients", coefficients)
        object.__setattr__(self, "center", float(self.center))
        object.__setattr__(self, "error", float(self.error))
        if self.error < 0:
            raise DomainError("the accumulated error must be non-negative")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, value: Scalar, num_symbols: int = 0) -> "AffineForm":
        """An exactly known constant."""
        return cls(float(value), np.zeros(num_symbols), 0.0)

    @classmethod
    def symbol(cls, center: Scalar, radius: Scalar, index: int, num_symbols: int) -> "AffineForm":
        """``center + radius * eps_index`` — an input variable with its own symbol."""
        if not 0 <= index < num_symbols:
            raise DomainError("symbol index out of range")
        coefficients = np.zeros(num_symbols)
        coefficients[index] = float(radius)
        return cls(float(center), coefficients, 0.0)

    # ------------------------------------------------------------------
    # Interval view
    # ------------------------------------------------------------------

    @property
    def num_symbols(self) -> int:
        return self.coefficients.shape[0]

    @property
    def radius(self) -> float:
        """Total half-width ``sum_i |a_i| + error``."""
        return float(np.abs(self.coefficients).sum() + self.error)

    @property
    def lower(self) -> float:
        return self.center - self.radius

    @property
    def upper(self) -> float:
        return self.center + self.radius

    def interval(self) -> Tuple[float, float]:
        return self.lower, self.upper

    # ------------------------------------------------------------------
    # Symbol management
    # ------------------------------------------------------------------

    def extend(self, num_symbols: int) -> "AffineForm":
        """Zero-pad the coefficient vector to ``num_symbols`` entries."""
        if num_symbols < self.num_symbols:
            raise DomainError("cannot shrink the symbol space of an affine form")
        return AffineForm(self.center, _pad(self.coefficients, num_symbols), self.error)

    def promote_error(self) -> "AffineForm":
        """Turn the uncorrelated error lump into a fresh shared symbol."""
        if self.error == 0.0:
            return self
        coefficients = np.concatenate([self.coefficients, [self.error]])
        return AffineForm(self.center, coefficients, 0.0)

    def _align(self, other: "AffineForm") -> Tuple[np.ndarray, np.ndarray]:
        length = max(self.num_symbols, other.num_symbols)
        return _pad(self.coefficients, length), _pad(other.coefficients, length)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _coerce(self, other: Union["AffineForm", Scalar]) -> "AffineForm":
        if isinstance(other, AffineForm):
            return other
        return AffineForm.constant(float(other), 0)

    def __add__(self, other: Union["AffineForm", Scalar]) -> "AffineForm":
        other = self._coerce(other)
        mine, theirs = self._align(other)
        return AffineForm(self.center + other.center, mine + theirs, self.error + other.error)

    __radd__ = __add__

    def __neg__(self) -> "AffineForm":
        return AffineForm(-self.center, -self.coefficients, self.error)

    def __sub__(self, other: Union["AffineForm", Scalar]) -> "AffineForm":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Scalar) -> "AffineForm":
        return self._coerce(other) - self

    def scale(self, factor: Scalar) -> "AffineForm":
        factor = float(factor)
        return AffineForm(factor * self.center, factor * self.coefficients, abs(factor) * self.error)

    def __mul__(self, other: Union["AffineForm", Scalar]) -> "AffineForm":
        """Sound affine-arithmetic product.

        For ``x = x0 + dx`` and ``y = y0 + dy`` the product is
        ``x0 y0 + x0 dy + y0 dx + dx dy``; the bilinear remainder is bounded
        by ``rad(dx) rad(dy)`` and emitted as a fresh noise symbol (see the
        module docstring).  Cross terms involving the uncorrelated error
        lumps remain in the error lump of the result.
        """
        if not isinstance(other, AffineForm):
            return self.scale(other)
        mine, theirs = self._align(other)
        center = self.center * other.center
        coefficients = self.center * theirs + other.center * mine
        deviation_self = float(np.abs(mine).sum() + self.error)
        deviation_other = float(np.abs(theirs).sum() + other.error)
        remainder = deviation_self * deviation_other
        lump = abs(self.center) * other.error + abs(other.center) * self.error
        coefficients = np.concatenate([coefficients, [remainder]])
        return AffineForm(center, coefficients, lump)

    __rmul__ = __mul__

    def square(self) -> "AffineForm":
        """``x * x`` (the generic product bound; still sound)."""
        return self * self

    def contains(self, value: float, tol: float = 1e-9) -> bool:
        """Interval membership check (sound necessary condition)."""
        return self.lower - tol <= value <= self.upper + tol


def bivariate_polynomial_form(
    terms: dict,
    x_form: "AffineForm",
    y_form: "AffineForm",
    shear: bool = True,
) -> "AffineForm":
    """Taylor1+-style transformer for a bivariate polynomial.

    ``terms`` maps exponent pairs ``(i, j)`` to coefficients ``c`` so the
    polynomial is ``P(x, y) = sum c_{ij} x^i y^j``.  The result keeps the
    exact first-order part of the expansion around the operands' centres —
    fully correlated with the shared noise symbols of ``x_form`` and
    ``y_form`` — plus a single fresh symbol whose magnitude soundly bounds
    all second- and higher-order terms.

    With ``shear=True`` (default) the expansion is performed in the
    deviation variables ``(dx, dr)`` where ``dr = dy - slope * dx`` is the
    part of ``y``'s deviation *not* explained by ``x``'s (the slope is the
    least-squares projection onto the shared symbols).  When ``y`` is
    strongly correlated with ``x`` — as the loop variable of a contractive
    fixpoint iteration is with its input — this removes the classic
    dependency problem from the higher-order bound: the remainder scales
    with the small residual radius instead of ``rad(y)``.  The expansion is
    exact (the polynomial is rewritten, not approximated), so soundness is
    unaffected; with ``shear=False`` the plain ``(dx, dy)`` expansion of
    Taylor1+ (Ghorbal et al. 2009) is used.
    """
    from math import comb, factorial

    x_form = x_form.promote_error()
    y_form = y_form.promote_error()
    length = max(x_form.num_symbols, y_form.num_symbols)
    x_form = x_form.extend(length)
    y_form = y_form.extend(length)

    x_center, y_center = x_form.center, y_form.center
    x_coefficients = x_form.coefficients
    x_radius = float(np.abs(x_coefficients).sum())

    slope = 0.0
    if shear and x_radius > 0.0:
        denominator = float(x_coefficients @ x_coefficients)
        if denominator > 0.0:
            slope = float(x_coefficients @ y_form.coefficients) / denominator
    residual_coefficients = y_form.coefficients - slope * x_coefficients
    residual_radius = float(np.abs(residual_coefficients).sum())

    # Exact expansion of P(x_c + dx, y_c + slope*dx + dr) in powers of
    # (dx, dr).  Coefficients of the same order are collected *before*
    # taking absolute values so that cancellations between polynomial terms
    # (near-total for the Householder update around its fixpoint) carry over
    # to the remainder bound.
    taylor = {}
    for (i, j), coefficient in terms.items():
        if coefficient == 0.0:
            continue
        for a in range(i + 1):
            x_part = comb(i, a) * x_center ** (i - a)
            for m in range(j + 1):
                for n in range(j - m + 1):
                    o = j - m - n
                    multinomial = factorial(j) // (factorial(m) * factorial(n) * factorial(o))
                    term = (
                        coefficient
                        * x_part
                        * multinomial
                        * y_center**m
                        * slope**n
                    )
                    key = (a + n, o)
                    taylor[key] = taylor.get(key, 0.0) + term

    center = taylor.get((0, 0), 0.0)
    dx_coefficient = taylor.get((1, 0), 0.0)
    dr_coefficient = taylor.get((0, 1), 0.0)
    remainder = sum(
        abs(value) * x_radius**a * residual_radius**b
        for (a, b), value in taylor.items()
        if a + b >= 2
    )

    coefficients = dx_coefficient * x_coefficients + dr_coefficient * residual_coefficients
    if remainder > 0.0:
        coefficients = np.concatenate([coefficients, [remainder]])
    return AffineForm(center, coefficients, 0.0)
