"""Reproduction of *Abstract Interpretation of Fixpoint Iterators with
Applications to Neural Networks* (PLDI 2023).

The package is organised around the paper's two contributions and the
substrates they need:

``repro.domains``
    Abstract-domain substrate: Box (interval), Zonotope, and the paper's
    novel CH-Zonotope domain with error consolidation (Theorem 4.1) and the
    efficient inclusion check (Theorem 4.2).

``repro.core``
    The domain-specific abstract interpretation framework for fixpoint
    iterators: the contraction-based termination criterion (Theorem 3.1),
    fixpoint-set preservation, a Kleene-iteration baseline, and the Craft
    verifier (Algorithm 1).

``repro.nn`` / ``repro.mondeq``
    A numpy neural-network substrate and the monotone operator Deep
    Equilibrium Model (monDEQ) architecture with Forward-Backward and
    Peaceman-Rachford fixpoint solvers, implicit-differentiation training,
    Lipschitz baselines and PGD attacks.

``repro.verify``
    Verification front-ends: local L-infinity robustness certification,
    global certification via domain splitting, and baseline verifiers.

``repro.engine``
    The batched certification engine: domain-generic element stacks
    (CH-Zonotope, Box, plain Zonotope and the order-bounded Parallelotope)
    advanced by shared BLAS calls, a batched Craft driver with per-sample
    early exit dispatching on ``CraftConfig.domain``, the per-query
    escalation waterfall over ``CraftConfig.domains``
    (``repro.engine.escalation``), schedulers (single-process batched and
    multi-process sharded, both ladder-aware) with a shared on-disk
    fixpoint cache, and stage-aware cache-fitting batch sizing.

``repro.service``
    The long-lived certification service over the engines: an asyncio
    admission frontend (cache-first, coalescing, deadlines/budgets,
    streamed verdicts), multi-machine shard fan-out over
    ``multiprocessing.managers`` TCP with work stealing and
    exactly-once fault recovery, and deterministic seeded fault
    injection for the test battery and soak benchmark.

``repro.datasets``
    Synthetic dataset substrate (MNIST/CIFAR-like generators, Gaussian
    mixtures, HCAS collision-avoidance MDP).

``repro.numerics``
    The Householder square-root case study (Section 6.5 / Appendix A).
"""

from repro.core.config import CraftConfig
from repro.core.craft import CraftVerifier
from repro.core.results import FixpointAbstraction, VerificationOutcome, VerificationResult
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.engine import (
    BatchCertificationScheduler,
    BatchedBox,
    BatchedCHZonotope,
    BatchedCraft,
    BatchedParallelotope,
    BatchedZonotope,
    EscalationLadder,
    ShardedScheduler,
)
from repro.mondeq.model import MonDEQ
from repro.service import (
    AutoscaleConfig,
    CertificationFrontend,
    ClusterScheduler,
    FaultSpec,
    ServiceConfig,
    serve_sweep,
)
from repro.verify.specs import ClassificationSpec, LinfBall

__version__ = "1.10.0"

__all__ = [
    "AutoscaleConfig",
    "BatchCertificationScheduler",
    "BatchedBox",
    "BatchedCHZonotope",
    "BatchedCraft",
    "BatchedParallelotope",
    "BatchedZonotope",
    "EscalationLadder",
    "CertificationFrontend",
    "CHZonotope",
    "ClassificationSpec",
    "ClusterScheduler",
    "CraftConfig",
    "CraftVerifier",
    "FaultSpec",
    "FixpointAbstraction",
    "Interval",
    "LinfBall",
    "MonDEQ",
    "ServiceConfig",
    "ShardedScheduler",
    "serve_sweep",
    "VerificationOutcome",
    "VerificationResult",
    "Zonotope",
    "__version__",
]
