"""The default :class:`ArrayBackend`: plain NumPy on the host.

Every method delegates to the *identical* numpy call the pre-backend
engine code used — same function, same arguments — so routing the
batched stacks through this namespace changes nothing numerically: the
numpy path is bit-for-bit the old behaviour.  ``to_numpy`` is the
identity (no copy) and ``asarray`` adopts already-float64 arrays
zero-copy, which is what makes the steady-state iteration loop
allocation-free at the adoption boundary (the hot-path copy audit in
``tests/backend/test_backend.py`` pins both).
"""

from __future__ import annotations

import numpy as np


class NumpyBackend:
    """NumPy implementation of the :class:`~repro.backend.base.ArrayBackend`."""

    name = "numpy"
    device = "cpu"
    linalg_error = np.linalg.LinAlgError

    def __init__(self, search_dtype: str = "float64"):
        self.search_dtype = search_dtype

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"NumpyBackend(search_dtype={self.search_dtype!r})"

    # Host boundary -----------------------------------------------------
    def asarray(self, x):
        # np.asarray is already zero-copy for float64 ndarrays; the dtype
        # kwarg only forces a copy when conversion is actually needed.
        return np.asarray(x, dtype=float)

    def asarray_bool(self, x):
        return np.asarray(x, dtype=bool)

    def asindex(self, x):
        return np.asarray(x)

    def to_numpy(self, x):
        return x

    def is_backend_array(self, x) -> bool:
        return isinstance(x, np.ndarray)

    # Construction ------------------------------------------------------
    def zeros(self, shape):
        return np.zeros(shape)

    def full(self, shape, value):
        return np.full(shape, value, dtype=float)

    def eye(self, n):
        return np.eye(n)

    def arange(self, n):
        return np.arange(n)

    def copy(self, x):
        return np.array(x, dtype=float)

    # Structure ---------------------------------------------------------
    def stack(self, seq):
        return np.stack(seq)

    def concatenate(self, seq, axis=0):
        return np.concatenate(seq, axis=axis)

    def transpose(self, x, axes):
        return np.transpose(x, axes)

    def broadcast_to(self, x, shape):
        return np.broadcast_to(x, shape)

    def ascontiguous(self, x):
        return np.ascontiguousarray(x)

    def flip(self, x):
        return np.flip(x, axis=-1)

    def nonzero1d(self, x):
        return np.nonzero(x)[0]

    # Elementwise -------------------------------------------------------
    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def clip(self, x, lo, hi):
        return np.clip(x, lo, hi)

    def abs(self, x):
        return np.abs(x)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def isfinite(self, x):
        return np.isfinite(x)

    # Reductions --------------------------------------------------------
    def any(self, x, axis=None):
        return np.any(x, axis=axis)

    def all(self, x, axis=None):
        return np.all(x, axis=axis)

    def sum(self, x, axis=None):
        return np.sum(x, axis=axis)

    def mean(self, x, axis=None):
        return np.mean(x, axis=axis)

    def amax(self, x, axis=None):
        return np.max(x, axis=axis)

    def amin(self, x, axis=None):
        return np.min(x, axis=axis)

    def argsort(self, x):
        return np.argsort(x)

    def trace(self, x, axis1, axis2):
        return np.trace(x, axis1=axis1, axis2=axis2)

    # Linear algebra ----------------------------------------------------
    def matmul(self, a, b):
        return a @ b

    def einsum(self, spec, *operands):
        return np.einsum(spec, *operands)

    def inv(self, x):
        return np.linalg.inv(x)

    def svd(self, x, full_matrices=True):
        return np.linalg.svd(x, full_matrices=full_matrices)

    def eigh(self, x):
        return np.linalg.eigh(x)

    def solve(self, a, b):
        return np.linalg.solve(a, b)

    def lstsq(self, a, b):
        return np.linalg.lstsq(a, b, rcond=None)[0]

    # Precision policy --------------------------------------------------
    def f32(self, x):
        return np.asarray(x, dtype=np.float32)

    def f64(self, x):
        return np.asarray(x, dtype=float)

    def to_search(self, x):
        return self.f32(x) if self.search_dtype == "float32" else x

    def from_search(self, x):
        return self.f64(x)

    # Diagnostics -------------------------------------------------------
    def errstate(self):
        return np.errstate(divide="ignore", invalid="ignore")

    def synchronize(self) -> None:
        return None


#: Shared default instance (float64 search dtype — full precision everywhere).
NUMPY_BACKEND = NumpyBackend()
