"""Pluggable array backends for the batched certification stack.

See :mod:`repro.backend.base` for the :class:`ArrayBackend` contract and
``docs/backends.md`` for the selection / device / dtype policy.
"""

from repro.backend.base import (
    BACKEND_NAMES,
    SEARCH_DTYPES,
    ArrayBackend,
    available_backends,
    backend_of,
    resolve_backend,
)
from repro.backend.numpy_backend import NUMPY_BACKEND, NumpyBackend
from repro.backend.ops import (
    BatchedReLURelaxation,
    batched_default_slopes,
    batched_relu_relaxation,
)

__all__ = [
    "ArrayBackend",
    "BACKEND_NAMES",
    "SEARCH_DTYPES",
    "NumpyBackend",
    "NUMPY_BACKEND",
    "BatchedReLURelaxation",
    "available_backends",
    "backend_of",
    "batched_default_slopes",
    "batched_relu_relaxation",
    "resolve_backend",
]
