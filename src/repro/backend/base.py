"""The array-namespace abstraction behind the batched certification stack.

An :class:`ArrayBackend` is a small, explicit namespace of array operations
— construction, elementwise arithmetic helpers, reductions, ``einsum`` /
``matmul``, and the dense factorisations (``svd`` / ``eigh`` / ``solve`` /
``lstsq``) the CH-Zonotope machinery is built from — plus dtype and device
handles and the two host-boundary conversions ``asarray`` / ``to_numpy``.
The batched element stacks (:mod:`repro.engine.batched_chzonotope`,
:mod:`repro.engine.batched_domains`) and the shared linear-algebra kernels
(:mod:`repro.utils.linalg`) are written against this namespace, so the same
transformer code advances a NumPy stack on the host or a torch stack on a
GPU.

Two implementations exist:

* :class:`~repro.backend.numpy_backend.NumpyBackend` — the default.  Every
  method delegates to the *identical* numpy call the pre-backend code used,
  so the numpy path is bit-for-bit the old behaviour (the engine parity
  tests pin this).
* :class:`~repro.backend.torch_backend.TorchBackend` — optional, import
  guarded.  Requesting it without torch installed (or ``cuda`` without a
  visible GPU) raises :class:`~repro.exceptions.ConfigurationError` — never
  an ``AttributeError`` and never a silent numpy fallback.

Soundness/dtype policy (the "shortcut the search, never the proof"
firewall): every backend computes in **float64** — proof-bearing
comparisons (Theorem 4.2 containment, verdict margins, safeguard
residuals) always run at full precision on every device.  A backend may
additionally carry ``search_dtype="float32"``; the engines then downcast
*search-only* work (consolidation-basis fitting, acceleration-proposal
heuristics) to float32 and cast the results back, while every enclosure
and every verdict-bearing comparison is still evaluated in float64.  See
``docs/backends.md``.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

from repro.exceptions import ConfigurationError

#: Backend names accepted by :func:`resolve_backend` / ``CraftConfig.backend``.
BACKEND_NAMES = ("numpy", "torch")

#: Search-dtype policies accepted by ``CraftConfig.backend_search_dtype``.
SEARCH_DTYPES = ("float64", "float32")


@runtime_checkable
class ArrayBackend(Protocol):
    """Structural interface of an array namespace.

    Implementations are stateless singletons per (name, device,
    search_dtype) triple; the batched stacks keep a reference and route
    every array operation through it.  Methods must reproduce numpy
    broadcasting semantics; reductions return *values* (never
    (values, indices) pairs) so generic code can treat the result like a
    numpy reduction.
    """

    # Identity ----------------------------------------------------------
    name: str
    device: str
    search_dtype: str

    # Host boundary -----------------------------------------------------
    def asarray(self, x): ...
    def asarray_bool(self, x): ...
    def asindex(self, x): ...
    def to_numpy(self, x): ...
    def is_backend_array(self, x) -> bool: ...

    # Construction ------------------------------------------------------
    def zeros(self, shape): ...
    def full(self, shape, value): ...
    def eye(self, n): ...
    def arange(self, n): ...
    def copy(self, x): ...

    # Structure ---------------------------------------------------------
    def stack(self, seq): ...
    def concatenate(self, seq, axis=0): ...
    def transpose(self, x, axes): ...
    def broadcast_to(self, x, shape): ...
    def ascontiguous(self, x): ...
    def flip(self, x): ...
    def nonzero1d(self, x): ...

    # Elementwise -------------------------------------------------------
    def where(self, condition, a, b): ...
    def clip(self, x, lo, hi): ...
    def abs(self, x): ...
    def maximum(self, a, b): ...
    def minimum(self, a, b): ...
    def isfinite(self, x): ...

    # Reductions --------------------------------------------------------
    def any(self, x, axis=None): ...
    def all(self, x, axis=None): ...
    def sum(self, x, axis=None): ...
    def mean(self, x, axis=None): ...
    def amax(self, x, axis=None): ...
    def amin(self, x, axis=None): ...
    def argsort(self, x): ...
    def trace(self, x, axis1, axis2): ...

    # Linear algebra ----------------------------------------------------
    def matmul(self, a, b): ...
    def einsum(self, spec, *operands): ...
    def inv(self, x): ...
    def svd(self, x, full_matrices=True): ...
    def eigh(self, x): ...
    def solve(self, a, b): ...
    def lstsq(self, a, b): ...

    # Precision policy --------------------------------------------------
    def f32(self, x): ...
    def f64(self, x): ...
    def to_search(self, x): ...
    def from_search(self, x): ...

    # Diagnostics -------------------------------------------------------
    def errstate(self): ...
    def synchronize(self) -> None: ...


def _numpy_backend() -> "ArrayBackend":
    from repro.backend.numpy_backend import NUMPY_BACKEND

    return NUMPY_BACKEND


def resolve_backend(
    name: str = "numpy",
    device: str = "cpu",
    search_dtype: str = "float64",
) -> ArrayBackend:
    """Resolve a ``CraftConfig`` backend triple to an :class:`ArrayBackend`.

    Raises
    ------
    ConfigurationError
        For an unknown backend name or search dtype, for any non-``cpu``
        device on the numpy backend, when ``"torch"`` is requested but
        torch is not importable, or when a ``cuda`` device is requested
        but no GPU is visible.  Failing loudly here is the contract: the
        engines never fall back to numpy silently.
    """
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"backend must be one of {BACKEND_NAMES}, got {name!r}"
        )
    if search_dtype not in SEARCH_DTYPES:
        raise ConfigurationError(
            f"backend_search_dtype must be one of {SEARCH_DTYPES}, "
            f"got {search_dtype!r}"
        )
    if name == "numpy":
        if device != "cpu":
            raise ConfigurationError(
                f"the numpy backend only supports backend_device='cpu', "
                f"got {device!r} (use backend='torch' for GPU devices)"
            )
        if search_dtype == "float64":
            return _numpy_backend()
        from repro.backend.numpy_backend import NumpyBackend

        return NumpyBackend(search_dtype=search_dtype)
    from repro.backend.torch_backend import TorchBackend

    return TorchBackend(device=device, search_dtype=search_dtype)


def backend_of(array) -> ArrayBackend:
    """The backend owning ``array``.

    Anything that is not a live torch tensor — numpy arrays, python
    scalars, lists — belongs to the numpy backend, which is what makes
    the stacks' ``type(self)(center, ...)`` constructor chains
    backend-stable without threading an explicit handle everywhere.
    Device and search-dtype attribution for torch tensors follows the
    tensor itself.
    """
    from repro.backend.torch_backend import torch_backend_for_tensor

    resolved = torch_backend_for_tensor(array)
    if resolved is not None:
        return resolved
    return _numpy_backend()


def available_backends() -> Tuple[str, ...]:
    """Backend names usable in this process (torch only when importable)."""
    from repro.backend.torch_backend import TORCH_AVAILABLE

    return ("numpy", "torch") if TORCH_AVAILABLE else ("numpy",)
