"""Optional torch :class:`ArrayBackend` (CPU always, CUDA when visible).

This module imports cleanly with torch **absent**: ``TORCH_AVAILABLE``
is then ``False`` and constructing :class:`TorchBackend` raises
:class:`~repro.exceptions.ConfigurationError` — the engines never fall
back to numpy silently and the core CI matrix stays green without torch
installed.

Semantics notes (each mapped to the exact numpy behaviour the generic
stack code expects):

* everything runs in float64 (``torch.float64``) — proof-bearing
  arithmetic is full precision on every device; ``to_search`` downcasts
  to float32 only under the documented search-dtype policy,
* reductions use ``amax``/``amin`` (values only, numpy-style — torch's
  ``max(dim=...)`` returns a (values, indices) pair),
* batched trace goes through ``diagonal(...).sum(-1)`` (torch's
  ``trace`` is 2-D only),
* ``nonzero1d``/``asindex`` give long tensors so fancy indexing works
  where numpy code used ``np.nonzero(...)[0]`` / integer arrays,
* ``errstate`` is a no-op context (torch propagates inf/nan without
  warnings, which is the behaviour the guarded divisions want).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from repro.exceptions import ConfigurationError

try:  # pragma: no cover - exercised only where torch is installed
    import torch

    TORCH_AVAILABLE = True
except ImportError:  # pragma: no cover - the torch-less CI matrix
    torch = None
    TORCH_AVAILABLE = False


def cuda_available() -> bool:
    """True when torch is importable and sees at least one CUDA device."""
    return bool(TORCH_AVAILABLE and torch.cuda.is_available())


class TorchBackend:
    """Torch implementation of the :class:`~repro.backend.base.ArrayBackend`."""

    name = "torch"

    def __init__(self, device: str = "cpu", search_dtype: str = "float64"):
        if not TORCH_AVAILABLE:
            raise ConfigurationError(
                "backend='torch' requested but torch is not installed; "
                "install torch or use backend='numpy'"
            )
        try:
            resolved = torch.device(device)
        except (RuntimeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid backend_device {device!r}: {exc}"
            ) from exc
        if resolved.type == "cuda" and not torch.cuda.is_available():
            raise ConfigurationError(
                f"backend_device={device!r} requested but no CUDA device "
                "is visible; use backend_device='cpu'"
            )
        self.device = device
        self.search_dtype = search_dtype
        self._device = resolved
        self._dtype = torch.float64
        self.linalg_error = getattr(
            torch.linalg, "LinAlgError", RuntimeError
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"TorchBackend(device={self.device!r}, "
            f"search_dtype={self.search_dtype!r})"
        )

    # Host boundary -----------------------------------------------------
    def asarray(self, x):
        # as_tensor adopts same-dtype same-device tensors zero-copy and
        # shares memory with float64 numpy arrays on CPU.
        return torch.as_tensor(x, dtype=self._dtype, device=self._device)

    def asarray_bool(self, x):
        return torch.as_tensor(x, dtype=torch.bool, device=self._device)

    def asindex(self, x):
        # Boolean masks stay boolean (mask indexing); everything else
        # becomes a long tensor (fancy indexing), matching numpy's rules.
        t = torch.as_tensor(x, device=self._device)
        return t if t.dtype == torch.bool else t.to(torch.long)

    def to_numpy(self, x):
        if isinstance(x, torch.Tensor):
            return x.detach().cpu().numpy()
        return x

    def is_backend_array(self, x) -> bool:
        return isinstance(x, torch.Tensor)

    # Construction ------------------------------------------------------
    def zeros(self, shape):
        return torch.zeros(shape, dtype=self._dtype, device=self._device)

    def full(self, shape, value):
        return torch.full(
            shape, float(value), dtype=self._dtype, device=self._device
        )

    def eye(self, n):
        return torch.eye(n, dtype=self._dtype, device=self._device)

    def arange(self, n):
        return torch.arange(n, device=self._device)

    def copy(self, x):
        return x.clone() if isinstance(x, torch.Tensor) else self.asarray(x).clone()

    # Structure ---------------------------------------------------------
    def stack(self, seq):
        return torch.stack([self.asarray(s) for s in seq])

    def concatenate(self, seq, axis=0):
        return torch.cat(list(seq), dim=axis)

    def transpose(self, x, axes):
        return x.permute(axes)

    def broadcast_to(self, x, shape):
        return x.expand(shape)

    def ascontiguous(self, x):
        return x.contiguous()

    def flip(self, x):
        return torch.flip(x, dims=(-1,))

    def nonzero1d(self, x):
        return torch.nonzero(x, as_tuple=False).flatten()

    # Elementwise -------------------------------------------------------
    def where(self, condition, a, b):
        return torch.where(condition, self._operand(a), self._operand(b))

    def _operand(self, x):
        if isinstance(x, torch.Tensor):
            return x
        return torch.as_tensor(x, dtype=self._dtype, device=self._device)

    def clip(self, x, lo, hi):
        return torch.clamp(x, min=lo, max=hi)

    def abs(self, x):
        return torch.abs(x)

    def maximum(self, a, b):
        return torch.maximum(self._operand(a), self._operand(b))

    def minimum(self, a, b):
        return torch.minimum(self._operand(a), self._operand(b))

    def isfinite(self, x):
        return torch.isfinite(x)

    # Reductions --------------------------------------------------------
    def any(self, x, axis=None):
        return torch.any(x) if axis is None else torch.any(x, dim=axis)

    def all(self, x, axis=None):
        return torch.all(x) if axis is None else torch.all(x, dim=axis)

    def sum(self, x, axis=None):
        return torch.sum(x) if axis is None else torch.sum(x, dim=axis)

    def mean(self, x, axis=None):
        return torch.mean(x) if axis is None else torch.mean(x, dim=axis)

    def amax(self, x, axis=None):
        return torch.amax(x) if axis is None else torch.amax(x, dim=axis)

    def amin(self, x, axis=None):
        return torch.amin(x) if axis is None else torch.amin(x, dim=axis)

    def argsort(self, x):
        return torch.argsort(x, stable=True)

    def trace(self, x, axis1, axis2):
        return torch.diagonal(x, dim1=axis1, dim2=axis2).sum(-1)

    # Linear algebra ----------------------------------------------------
    def matmul(self, a, b):
        return a @ b

    def einsum(self, spec, *operands):
        return torch.einsum(spec, *operands)

    def inv(self, x):
        return torch.linalg.inv(x)

    def svd(self, x, full_matrices=True):
        return torch.linalg.svd(x, full_matrices=full_matrices)

    def eigh(self, x):
        return torch.linalg.eigh(x)

    def solve(self, a, b):
        return torch.linalg.solve(a, b)

    def lstsq(self, a, b):
        return torch.linalg.lstsq(a, b).solution

    # Precision policy --------------------------------------------------
    def f32(self, x):
        return x.to(torch.float32)

    def f64(self, x):
        return x.to(self._dtype)

    def to_search(self, x):
        return self.f32(x) if self.search_dtype == "float32" else x

    def from_search(self, x):
        return self.f64(x)

    # Diagnostics -------------------------------------------------------
    def errstate(self):
        return nullcontext()

    def synchronize(self) -> None:
        if self._device.type == "cuda":  # pragma: no cover - GPU only
            torch.cuda.synchronize(self._device)


#: One shared TorchBackend per device string, for tensor → backend lookup.
_CANONICAL = {}


def torch_backend_for_tensor(array) -> Optional[TorchBackend]:
    """The canonical backend owning ``array`` if it is a torch tensor.

    Returns ``None`` for anything else (numpy arrays, scalars, lists), so
    :func:`repro.backend.base.backend_of` can fall through to numpy.  The
    canonical instance carries the default float64 search dtype — search
    downcasting is driven by the engine's explicitly resolved backend,
    never by type inference.
    """
    if not TORCH_AVAILABLE or not isinstance(array, torch.Tensor):
        return None
    device = str(array.device)
    backend = _CANONICAL.get(device)
    if backend is None:
        backend = _CANONICAL[device] = TorchBackend(device=device)
    return backend
