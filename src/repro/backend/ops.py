"""Backend-generic kernels shared by the batched abstract transformers.

The sequential domains keep their numpy implementations in
:mod:`repro.domains.relu`; the batched stacks route through the
where-based twins here so the same code runs on any
:class:`~repro.backend.base.ArrayBackend`.  On the numpy backend these
are **bit-identical** to the masked-assignment originals: the crossing
positions evaluate the exact same divisions on the exact same operands
(``u / (u - l)``, ``max(-lam*l, (1-lam)*u) / 2``) and the where-selection
merely routes stable neurons to the exact constants (0 and 1) the
original wrote by assignment — the cross-implementation identity test in
``tests/backend/test_backend.py`` pins this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import DomainError


@dataclass(frozen=True)
class BatchedReLURelaxation:
    """Backend-array counterpart of :class:`repro.domains.relu.ReLURelaxation`.

    All four fields live on the owning backend (possibly on a GPU); the
    neuron dimension is the trailing axis, with arbitrary leading batch
    axes.
    """

    slopes: object
    offsets: object
    new_errors: object
    crossing: object


def batched_default_slopes(xp, lower, upper):
    """Minimum-area slopes ``u / (u - l)`` clipped to [0, 1], on ``xp``."""
    lower = xp.asarray(lower)
    upper = xp.asarray(upper)
    span = upper - lower
    positive = span > 0
    with xp.errstate():
        slopes = xp.where(
            positive, upper / xp.where(positive, span, 1.0), 0.0
        )
    return xp.clip(slopes, 0.0, 1.0)


def batched_relu_relaxation(
    xp,
    lower,
    upper,
    slopes=None,
    pass_through: Optional[object] = None,
) -> BatchedReLURelaxation:
    """Sound affine ReLU relaxation of ``[lower, upper]`` on backend ``xp``.

    Mirrors :func:`repro.domains.relu.relu_relaxation` (same band, same
    default minimum-area slope, same pass-through semantics for the
    joint-space monDEQ state) but computes with ``where`` instead of
    boolean assignment so it runs unchanged on torch tensors.  ``slopes``
    may be ``None`` (minimum-area default), a scalar, or an array
    broadcastable over the bounds; ``pass_through`` is a length-``dim``
    boolean mask on ``xp``.
    """
    lower = xp.asarray(lower)
    upper = xp.asarray(upper)
    if tuple(lower.shape) != tuple(upper.shape):
        raise DomainError("lower and upper bounds must have the same shape")
    if bool(xp.any(lower > upper + 1e-12)):
        raise DomainError("lower bounds exceed upper bounds")

    dim = lower.shape[-1]
    inactive = upper <= 0.0
    active = lower >= 0.0
    if pass_through is not None:
        pass_through = xp.asarray_bool(pass_through)
        if tuple(pass_through.shape) != (dim,):
            raise DomainError("pass_through mask must match the element dimension")
        inactive = inactive & ~pass_through
        active = active | pass_through
    crossing = ~(inactive | active)

    # Guarded division: crossing neurons have u > 0 > l so the true span
    # is strictly positive; stable positions divide by 1 and are then
    # discarded by the where — identical values to the masked original.
    span = upper - lower
    if slopes is None:
        lam = upper / xp.where(crossing, span, 1.0)
    else:
        slopes = xp.asarray(slopes)
        if tuple(slopes.shape) not in (tuple(lower.shape), (dim,), ()):
            raise DomainError("slopes must be a scalar or match the element dimension")
        lam = xp.clip(xp.broadcast_to(slopes, lower.shape), 0.0, 1.0)
    gap = xp.maximum(-lam * lower, (1.0 - lam) * upper)
    mu = gap / 2.0

    zero = xp.zeros(lower.shape)
    out_slopes = xp.where(crossing, lam, xp.where(active, 1.0, 0.0))
    out_offsets = xp.where(crossing, mu, zero)
    out_errors = xp.where(crossing, mu, zero)
    return BatchedReLURelaxation(
        slopes=out_slopes,
        offsets=out_offsets,
        new_errors=out_errors,
        crossing=crossing,
    )
