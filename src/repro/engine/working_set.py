"""Cache-aware batch sizing for the certification engines.

Batching wins roughly an order of magnitude on small-input models (HCAS,
input dimension 3) because the sequential loop is interpreter-bound.  On
wide-input models the picture inverts: every tightening step grows the
error-term count by roughly ``input_dim + state_dim`` columns (the affine
transformer casts the Box radii into fresh generator columns and the input
injection contributes its own), so after ``T`` steps a batch of ``B``
samples streams ``B * state_dim * k(T)`` doubles through every BLAS call.
Once that working set spills the last-level cache the batch goes
DRAM-bound and the speedup collapses (~1x at batch 64 on input-dim-64
models, per the measurements recorded in ROADMAP.md).

This module estimates the phase-two working set from the model shape and
the configuration (including the error-growth *bound* that periodic
phase-two consolidation provides, ``CraftConfig.tighten_consolidate_every``)
and picks the largest batch size whose working set fits the last-level
cache.  The estimate is deliberately a smooth upper-bound model — batch
sizing never changes verdicts, only memory locality, so being a factor off
costs throughput, not soundness.
"""

from __future__ import annotations

import glob
from typing import Optional

from repro.core.config import CraftConfig
from repro.mondeq.model import MonDEQ

#: Fallback last-level-cache budget when the host does not expose one.
DEFAULT_LLC_BYTES = 32 * 2**20

#: Bounds on the automatically chosen batch size.  The lower bound keeps
#: degenerate estimates from serialising the sweep entirely; the upper
#: bound caps scheduling granularity (beyond 256 the per-batch Python
#: overhead is already negligible).
MIN_AUTO_BATCH = 4
MAX_AUTO_BATCH = 256

_BYTES_PER_FLOAT = 8

#: Live arrays per iteration touching the full generator stack: the state,
#: the freshly produced state and the step's intermediate (the propagated
#: element before the ReLU).
_LIVE_STACKS = 3


def detect_llc_bytes(default: int = DEFAULT_LLC_BYTES) -> int:
    """Size in bytes of the largest CPU cache the host exposes via sysfs.

    Falls back to ``default`` (32 MiB) when sysfs is unavailable (macOS,
    containers with masked /sys) or unparsable.
    """
    best = 0
    for path in glob.glob("/sys/devices/system/cpu/cpu0/cache/index*/size"):
        try:
            with open(path, "r", encoding="ascii") as handle:
                text = handle.read().strip()
        except OSError:
            continue
        try:
            if text.endswith("K"):
                size = int(text[:-1]) * 1024
            elif text.endswith("M"):
                size = int(text[:-1]) * 1024 * 1024
            else:
                size = int(text)
        except ValueError:
            continue
        best = max(best, size)
    return best if best > 0 else default


def state_dim(model: MonDEQ, config: CraftConfig) -> int:
    """Dimension of the joint solver state (PR carries an auxiliary block)."""
    return (2 if config.solver1 == "pr" else 1) * model.latent_dim


def error_growth_per_step(model: MonDEQ, config: CraftConfig) -> int:
    """Estimated generator columns added per tightening step.

    Each step's affine transformer casts the Box radii of the previous
    state into one fresh column per state coordinate, and the input
    injection carries one column per input coordinate (plus the clipping
    box, also cast per step).  The model is therefore
    ``state_dim + input_dim`` columns per step — the growth rate recorded
    in ROADMAP.md for the wide-input regime.
    """
    return state_dim(model, config) + model.input_dim


def max_error_terms(model: MonDEQ, config: CraftConfig, domain: Optional[str] = None) -> int:
    """Upper-bound error-term count reached during the tightening phase.

    Phase one hands phase two a consolidated state (``state_dim`` square
    generators) plus the input contribution; from there the count grows by
    :func:`error_growth_per_step` per step until either the phase-two
    budget runs out or a periodic consolidation
    (``tighten_consolidate_every``) resets it to ``state_dim``.

    The estimate is clamped to the **per-stage domain layout** (``domain``
    defaults to ``config.domain``, i.e. the most precise ladder stage):

    * ``"box"`` carries no generator stack at all — its representation is
      two bound vectors per sample — so its error-term count is the
      constant 1 (the per-sample bound pair folded into the stack
      constant).  Sizing a Box stage by the generator model would shrink
      its batches by orders of magnitude for no locality gain.
    * ``"parallelotope"`` reduces to a square error matrix after every
      ReLU, so the count is bounded by one step of growth over
      ``state_dim`` regardless of the phase-two budget.
    * the zonotope-family domains grow by :func:`error_growth_per_step`
      per step up to the consolidation horizon.
    """
    if domain is None:
        domain = config.domain
    if domain == "box":
        return 1
    if domain == "parallelotope":
        return state_dim(model, config) + error_growth_per_step(model, config)
    horizon = config.tighten_max_iterations
    if config.tighten_consolidate_every > 0:
        horizon = min(horizon, config.tighten_consolidate_every)
    # Phase one consolidates every ``contraction.consolidate_every`` steps,
    # so its iterates can outgrow a tighter phase-two cadence between
    # consolidations; the peak the batch actually streams is governed by
    # the larger of the two horizons (calibrated against the measured
    # per-stage peaks — see StageStats.peak_error_terms).
    horizon = max(horizon, config.contraction.consolidate_every)
    base = state_dim(model, config) + model.input_dim
    return base + horizon * error_growth_per_step(model, config)


def phase2_working_set_bytes(
    model: MonDEQ, config: CraftConfig, batch_size: int, domain: Optional[str] = None
) -> int:
    """Estimated bytes a phase-two iteration streams for ``batch_size`` rows.

    For the zonotope-family domains the generator stacks
    ``(B, state_dim, k)`` dominate; centers, Box radii and concretised
    bounds are ``O(B * state_dim)`` and folded into the stack constant.
    For the Box domain the whole representation *is* the ``O(B *
    state_dim)`` term, so the estimate reduces to the bound arrays and the
    automatic batch size clamps to ``MAX_AUTO_BATCH``.  ``domain``
    overrides the stage layout (default: ``config.domain``).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    n = state_dim(model, config)
    k = max_error_terms(model, config, domain=domain)
    return batch_size * _LIVE_STACKS * n * k * _BYTES_PER_FLOAT


def auto_batch_size(
    model: MonDEQ,
    config: Optional[CraftConfig] = None,
    budget_bytes: Optional[int] = None,
    domain: Optional[str] = None,
) -> int:
    """Largest batch whose phase-two working set fits the LLC budget.

    Precedence: an explicit ``config.engine_batch_size`` wins outright;
    otherwise ``budget_bytes`` (or ``config.cache_budget_bytes``, or the
    detected LLC size) divided by the per-sample working set, clamped to
    ``[MIN_AUTO_BATCH, MAX_AUTO_BATCH]``.

    ``domain`` sizes one **ladder stage**: the working set is evaluated
    for that stage's layout instead of ``config.domain`` (the most precise
    stage).  Without it, a Box stage of an escalation ladder would be
    shrunk to the CH-Zonotope batch size — a pure throughput loss, since
    the Box stage streams no generator stack at all.
    """
    config = config if config is not None else CraftConfig()
    if config.engine_batch_size is not None:
        return config.engine_batch_size
    if budget_bytes is None:
        budget_bytes = (
            config.cache_budget_bytes
            if config.cache_budget_bytes is not None
            else detect_llc_bytes()
        )
    per_sample = phase2_working_set_bytes(model, config, 1, domain=domain)
    fitting = budget_bytes // max(per_sample, 1)
    return int(min(MAX_AUTO_BATCH, max(MIN_AUTO_BATCH, fitting)))


def stage_error_term_estimates(
    model: MonDEQ, config: Optional[CraftConfig] = None
) -> dict:
    """Per-stage analytic peak error-term estimates for a ladder config.

    One :func:`max_error_terms` evaluation per stage of ``config.domains``
    — the numbers the escalation machinery surfaces next to the
    *measured* per-stage peaks (``StageStats.peak_error_terms`` /
    ``VerificationResult.peak_error_terms``), so sweep reports show how
    tight the working-set model actually is on the workload at hand.
    """
    config = config if config is not None else CraftConfig()
    return {
        name: max_error_terms(model, config, domain=name) for name in config.domains
    }


def stage_batch_sizes(
    model: MonDEQ,
    config: Optional[CraftConfig] = None,
    budget_bytes: Optional[int] = None,
) -> dict:
    """Per-stage batch sizes for every domain of ``config.domains``.

    The waterfall scheduler sizes each ladder stage independently: Box
    stages clamp to ``MAX_AUTO_BATCH`` (no generator budget), CH-Zonotope
    stages keep the LLC fit.  An explicit ``config.engine_batch_size``
    pins every stage, exactly as it pins a single-domain sweep.
    """
    config = config if config is not None else CraftConfig()
    return {
        name: auto_batch_size(model, config, budget_bytes=budget_bytes, domain=name)
        for name in config.domains
    }
