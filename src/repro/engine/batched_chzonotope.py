"""Batched CH-Zonotopes: a stack of B elements advanced by shared BLAS calls.

A :class:`BatchedCHZonotope` represents ``B`` CH-Zonotopes of a common
dimension ``n`` with a *uniform* number of error terms ``k``::

    centers    (B, n)
    generators (B, n, k)
    box        (B, n)

Every abstract transformer of :class:`~repro.domains.chzonotope.CHZonotope`
is mirrored here as a single broadcast/einsum expression, so certifying a
batch of input regions costs a handful of large matrix products instead of
``B`` Python-level passes.  The per-sample semantics are identical: sample
``i`` of the result equals the sequential transformer applied to sample
``i`` of the operands, up to floating-point round-off and zero generator
columns (samples whose Box/ReLU patterns differ carry each other's columns
with coefficient zero — a representation difference only, never a change of
the concretised set).

Elements enter and leave the batch via :meth:`from_elements` (right-pads
generators with zero columns to a uniform ``k``) and :meth:`select` /
:meth:`element`, which is how the batched Craft driver implements
per-sample early exit: finished samples are gathered out and the remaining
rows keep iterating as a smaller stack.

The three stacks live on a pluggable :class:`~repro.backend.base.
ArrayBackend` (``repro.backend``): numpy by default, torch (CPU or CUDA)
when configured.  The backend is inferred from the arrays themselves
(:func:`~repro.backend.base.backend_of`), so transformer chains stay on
whatever device the stack was admitted to via :meth:`to_backend`.  Host
boundary contract: the stacks and every transformer stay on the backend;
the scalar-ish driver diagnostics (``concretize_bounds``, ``width``,
``contains``, ``containment_margin``, ``element``) return numpy — an
identity (no copy) on the numpy backend, a single device→host transfer of
``(B, n)``-sized arrays on torch.  The ``O(B·n·k)`` generator stacks never
cross the host boundary between admission and verdict extraction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import backend_of, batched_default_slopes, batched_relu_relaxation
from repro.backend.base import ArrayBackend
from repro.domains.chzonotope import CHZonotope
from repro.exceptions import DimensionMismatchError, DomainError, ImproperZonotopeError
from repro.utils.linalg import pca_basis, shared_pca_basis


class BatchedCHZonotope:
    """A stack of ``B`` CH-Zonotopes ``{ a_i + A_i nu + diag(b_i) eta }``."""

    __slots__ = ("_xp", "_center", "_generators", "_box", "_inverse_cache", "_bounds_cache")

    def __init__(self, center, generators=None, box=None):
        xp = backend_of(center)
        center = xp.asarray(center)
        if center.ndim != 2:
            raise DomainError(f"centers must have shape (batch, dim), got {tuple(center.shape)}")
        batch, dim = center.shape
        if generators is None:
            generators = xp.zeros((batch, dim, 0))
        generators = xp.asarray(generators)
        if generators.ndim != 3 or tuple(generators.shape[:2]) != (batch, dim):
            raise DomainError(
                f"generators must have shape ({batch}, {dim}, k), got {tuple(generators.shape)}"
            )
        if box is None:
            box = xp.zeros((batch, dim))
        box = xp.asarray(box)
        if tuple(box.shape) != (batch, dim):
            raise DomainError(f"box must have shape ({batch}, {dim}), got {tuple(box.shape)}")
        if bool(xp.any(box < 0)):
            raise DomainError("box radii must be non-negative")
        self._xp = xp
        self._center = center
        self._generators = generators
        self._box = box
        self._inverse_cache = None
        self._bounds_cache = None

    # ------------------------------------------------------------------
    # Conversions to and from sequential elements
    # ------------------------------------------------------------------

    @classmethod
    def from_elements(cls, elements: Sequence[CHZonotope]) -> "BatchedCHZonotope":
        """Stack sequential elements, right-padding generators to a common k."""
        elements = list(elements)
        if not elements:
            raise DomainError("from_elements requires at least one element")
        dim = elements[0].dim
        if any(element.dim != dim for element in elements):
            raise DimensionMismatchError("all elements must share the same dimension")
        k = max(element.num_generators for element in elements)
        centers = np.stack([element.center for element in elements])
        box = np.stack([element.box for element in elements])
        generators = np.zeros((len(elements), dim, k))
        for index, element in enumerate(elements):
            generators[index, :, : element.num_generators] = element.generators
        return cls(centers, generators, box)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BatchedCHZonotope":
        """Degenerate stack containing exactly the rows of ``points``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return cls(points, np.zeros((points.shape[0], points.shape[1], 0)), None)

    def element(self, index: int) -> CHZonotope:
        """The ``index``-th sample as a sequential :class:`CHZonotope`."""
        generators = self._xp.to_numpy(self._generators[index])
        keep = np.abs(generators).sum(axis=0) > 0
        return CHZonotope(
            self._xp.to_numpy(self._center[index]),
            generators[:, keep],
            self._xp.to_numpy(self._box[index]),
        )

    def to_elements(self) -> List[CHZonotope]:
        return [self.element(index) for index in range(self.batch_size)]

    def select(self, indices) -> "BatchedCHZonotope":
        """Gather a sub-batch (used for per-sample early exit)."""
        indices = self._xp.asindex(indices)
        selected = type(self)(
            self._center[indices], self._generators[indices], self._box[indices]
        )
        if self._inverse_cache is not None:
            selected._inverse_cache = self._inverse_cache[indices]
        return selected

    def to_backend(self, backend: ArrayBackend) -> "BatchedCHZonotope":
        """This stack with its arrays adopted by ``backend``.

        Returns ``self`` when the arrays already live there (the numpy →
        numpy path is a no-op); otherwise one host↔device transfer per
        array — this is the admission/extraction boundary the engines use,
        never the per-iteration path.
        """
        if backend.is_backend_array(self._center) and getattr(
            self._xp, "device", "cpu"
        ) == getattr(backend, "device", "cpu"):
            return self
        return type(self)(
            backend.asarray(self._xp.to_numpy(self._center)),
            backend.asarray(self._xp.to_numpy(self._generators)),
            backend.asarray(self._xp.to_numpy(self._box)),
        )

    # ------------------------------------------------------------------
    # Representation accessors
    # ------------------------------------------------------------------

    @property
    def xp(self) -> ArrayBackend:
        """The array backend holding this stack."""
        return self._xp

    @property
    def batch_size(self) -> int:
        return self._center.shape[0]

    @property
    def dim(self) -> int:
        return self._center.shape[1]

    @property
    def num_generators(self) -> int:
        return self._generators.shape[2]

    @property
    def center(self):
        return self._xp.copy(self._center)

    @property
    def generators(self):
        return self._xp.copy(self._generators)

    @property
    def box(self):
        return self._xp.copy(self._box)

    def _bounds(self):
        """Backend-resident concretisation bounds (cached).

        Elements are immutable and the transformers read bounds several
        times per iteration (ReLU relaxation, width heuristics, traces),
        so the |A| column sum — a full pass over the largest array — is
        cached, on the backend.
        """
        if self._bounds_cache is None:
            xp = self._xp
            radius = xp.sum(xp.abs(self._generators), axis=2) + self._box
            self._bounds_cache = (self._center - radius, self._center + radius)
        return self._bounds_cache

    def concretize_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        lower, upper = self._bounds()
        return self._xp.to_numpy(lower), self._xp.to_numpy(upper)

    @property
    def width(self) -> np.ndarray:
        """Per-sample element-wise widths, shape ``(B, n)``."""
        lower, upper = self._bounds()
        return self._xp.to_numpy(upper - lower)

    @property
    def mean_width(self) -> np.ndarray:
        """Per-sample mean width, shape ``(B,)``."""
        return self.width.mean(axis=1)

    @property
    def max_width(self) -> np.ndarray:
        """Per-sample maximum width, shape ``(B,)``."""
        return self.width.max(axis=1)

    # ------------------------------------------------------------------
    # Abstract transformers (mirroring CHZonotope)
    # ------------------------------------------------------------------

    def affine(self, weight, bias=None) -> "BatchedCHZonotope":
        """Exact affine transformer, batched.

        ``weight`` is either a shared ``(m, n)`` matrix or a per-sample
        ``(B, m, n)`` stack (the latter is used for per-sample postcondition
        difference matrices).  As in the sequential transformer, the Box
        errors are cast into generator columns — one column per coordinate
        whose Box radius is non-zero in *any* sample — and the result has a
        zero Box component.
        """
        xp = self._xp
        weight = xp.asarray(weight)
        if weight.ndim == 2:
            if weight.shape[1] != self.dim:
                raise DimensionMismatchError(
                    f"weight must have shape (m, {self.dim}), got {tuple(weight.shape)}"
                )
            center = self._center @ xp.transpose(weight, (1, 0))
            generators = xp.matmul(weight, self._generators)
            box_axes = xp.nonzero1d(xp.any(self._box > 0, axis=0))
            box_columns = weight[None, :, box_axes] * self._box[:, None, box_axes]
        elif weight.ndim == 3:
            if weight.shape[0] != self.batch_size or weight.shape[2] != self.dim:
                raise DimensionMismatchError(
                    f"weight must have shape ({self.batch_size}, m, {self.dim}), "
                    f"got {tuple(weight.shape)}"
                )
            center = xp.matmul(weight, self._center[:, :, None])[:, :, 0]
            generators = xp.matmul(weight, self._generators)
            box_axes = xp.nonzero1d(xp.any(self._box > 0, axis=0))
            box_columns = weight[:, :, box_axes] * self._box[:, None, box_axes]
        else:
            raise DimensionMismatchError("weight must be a 2-d or 3-d array")
        if bias is not None:
            bias = xp.asarray(bias).reshape(-1)
            if bias.shape[0] != center.shape[1]:
                raise DimensionMismatchError(
                    f"bias must have dimension {center.shape[1]}, got {bias.shape[0]}"
                )
            center = center + bias[None, :]
        generators = xp.concatenate([generators, box_columns], axis=2)
        return type(self)(center, generators, None)

    def relu(
        self,
        slopes=None,
        box_new_errors: bool = True,
        pass_through=None,
    ) -> "BatchedCHZonotope":
        """Batched ReLU transformer (per-sample identical to the sequential one)."""
        xp = self._xp
        lower, upper = self._bounds()
        relaxation = batched_relu_relaxation(xp, lower, upper, slopes, pass_through=pass_through)
        center = relaxation.slopes * self._center + relaxation.offsets
        generators = relaxation.slopes[:, :, None] * self._generators
        box = relaxation.slopes * self._box
        if box_new_errors:
            return type(self)(center, generators, box + relaxation.new_errors)
        new_axes = xp.nonzero1d(xp.any(relaxation.new_errors > 0, axis=0))
        count = int(new_axes.shape[0])
        if count:
            fresh = xp.zeros((self.batch_size, self.dim, count))
            fresh[:, new_axes, xp.arange(count)] = relaxation.new_errors[:, new_axes]
            generators = xp.concatenate([generators, fresh], axis=2)
        return type(self)(center, generators, box)

    def sum(self, other: "BatchedCHZonotope") -> "BatchedCHZonotope":
        """Minkowski sum: generator columns concatenate, Box radii add."""
        other = self._coerce(other)
        return type(self)(
            self._center + other._center,
            self._xp.concatenate([self._generators, other._generators], axis=2),
            self._box + other._box,
        )

    def scale(self, factor: float) -> "BatchedCHZonotope":
        factor = float(factor)
        return type(self)(
            factor * self._center, factor * self._generators, abs(factor) * self._box
        )

    def translate(self, offset) -> "BatchedCHZonotope":
        offset = self._xp.asarray(offset)
        return type(self)(self._center + offset, self._generators, self._box)

    def dilate(self, factors) -> "BatchedCHZonotope":
        """Scale each element about its own centre by a per-sample factor >= 1.

        Dilation preserves properness (the generator matrix stays square and
        invertible) and yields a superset of the original element, which is
        what makes it a sound candidate-enclosure constructor for the
        acceleration proposer.  Mirrors the sequential ``DomainOps.dilate``
        arithmetic exactly: generators and box radii are multiplied, the
        centre is untouched.
        """
        xp = self._xp
        factors = xp.asarray(factors)
        if tuple(factors.shape) != (self.batch_size,):
            raise DomainError(
                f"factors must have shape ({self.batch_size},), got {tuple(factors.shape)}"
            )
        if bool(xp.any(factors < 1.0)):
            raise DomainError("dilation factors must be >= 1")
        return type(self)(
            self._center,
            self._generators * factors[:, None, None],
            self._box * factors[:, None],
        )

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` points per element, shape ``(B, count, n)``.

        Always computed on the host with the caller's numpy generator so
        sampled points are backend-independent (falsification traces must
        not depend on the device).
        """
        center = self._xp.to_numpy(self._center)
        generators = self._xp.to_numpy(self._generators)
        box = self._xp.to_numpy(self._box)
        nu = rng.uniform(-1.0, 1.0, size=(self.batch_size, count, self.num_generators))
        eta = rng.uniform(-1.0, 1.0, size=(self.batch_size, count, self.dim))
        return (
            center[:, None, :]
            + np.matmul(nu, np.transpose(generators, (0, 2, 1)))
            + eta * box[:, None, :]
        )

    # ------------------------------------------------------------------
    # Error consolidation and the Theorem 4.2 containment check
    # ------------------------------------------------------------------

    def consolidate(
        self,
        basis=None,
        w_mul: float = 0.0,
        w_add: float = 0.0,
    ) -> "BatchedCHZonotope":
        """Batched error consolidation (Theorem 4.1 + Eq. 10 expansion).

        ``basis`` is either a per-sample ``(B, n, n)`` stack (the default
        when ``None``: every sample's own PCA basis) or one **shared**
        ``(n, n)`` basis applied to the whole batch — the shared-basis
        consolidation mode, which needs only a single inverse and
        broadcasts the coefficient projection as one BLAS-3 call.
        Soundness is basis-independent (Theorem 4.1 holds for any
        invertible basis); only the approximation tightness changes.
        """
        if w_mul < 0 or w_add < 0:
            raise DomainError("expansion parameters must be non-negative")
        xp = self._xp
        if basis is None:
            basis = self.pca_basis()
        basis = xp.asarray(basis)
        if basis.ndim == 2:
            basis = basis[None]
        if tuple(basis.shape) not in (
            (self.batch_size, self.dim, self.dim),
            (1, self.dim, self.dim),
        ):
            raise DomainError(
                f"basis must have shape ({self.batch_size}, {self.dim}, {self.dim}) "
                f"or ({self.dim}, {self.dim}), got {tuple(basis.shape)}"
            )
        basis_inverse = _batched_inverse(xp, basis, context="consolidation basis")
        if self.num_generators:
            coefficients = xp.sum(xp.abs(xp.matmul(basis_inverse, self._generators)), axis=2)
        else:
            coefficients = xp.zeros((self.batch_size, self.dim))
        coefficients = (1.0 + w_mul) * coefficients + w_add
        floor = max(w_add, 1e-12)
        coefficients = xp.maximum(coefficients, floor)
        new_generators = basis * coefficients[:, None, :]
        return type(self)(self._center, new_generators, self._box)

    def pca_basis(self, jitter: float = 1e-12, search: bool = False):
        """Per-sample PCA bases, shape ``(B, n, n)`` (identity where no errors).

        ``search=True`` factorises in float32 under the search-dtype policy
        (the basis is returned in float64; consolidation is sound for any
        invertible basis, and the projection/inversion stay full precision).
        """
        xp = self._xp
        if self.num_generators == 0:
            return xp.ascontiguous(
                xp.broadcast_to(xp.eye(self.dim), (self.batch_size, self.dim, self.dim))
            )
        matrix = xp.f32(self._generators) if search else self._generators
        try:
            # Economy SVD once k >= n: all n left vectors without the
            # (k, k) right factor — the same rule as utils.linalg.pca_basis
            # (engine parity requires both sides to pick the same driver).
            u, _, _ = xp.svd(
                matrix, full_matrices=self.num_generators < self.dim
            )
        except xp.linalg_error:
            # A numerically degenerate sample must not abort the whole
            # batch: fall back to the sequential helper, which retries the
            # failing sample with diagonal jitter (utils.linalg.pca_basis).
            u = xp.stack(
                [
                    xp.asarray(pca_basis(xp.to_numpy(sample), jitter=jitter))
                    for sample in self._generators
                ]
            )
        if search:
            u = xp.f64(u)
        zero = xp.sum(xp.abs(self._generators), axis=(1, 2)) == 0.0
        if bool(xp.any(zero)):
            u = xp.where(zero[:, None, None], xp.eye(self.dim), u)
        return u

    def shared_pca_basis(self, method: str = "auto", search: bool = False):
        """One pooled consolidation basis for the whole stack, shape ``(n, n)``.

        Computed from the pooled Gram ``sum_i A_i A_i^T`` (or its
        randomized range-finder sketch for large stacks — see
        :func:`repro.utils.linalg.shared_pca_basis`): a single ``O(n^3)``
        factorisation replaces the ``B`` per-sample SVDs of
        :meth:`pca_basis`.  Feed the result to :meth:`consolidate` to
        consolidate every sample onto the common basis in one batched
        projection.
        """
        xp = self._xp
        if self.num_generators == 0 or not bool(xp.any(self._generators != 0.0)):
            return xp.eye(self.dim)
        return shared_pca_basis(self._generators, method=method, xp=xp, search=search)

    def contains(self, other: "BatchedCHZonotope", tol: float = 1e-9) -> np.ndarray:
        """Per-sample Theorem 4.2 containment flags, shape ``(B,)``.

        The margin arithmetic and the comparison both run on the backend in
        float64 — this is a proof-bearing check and is never downcast; only
        the final ``(B,)`` flag vector crosses to the host.
        """
        margins = self._margins(other)
        return self._xp.to_numpy(self._xp.all(margins <= 1.0 + tol, axis=1))

    def containment_margin(self, other: "BatchedCHZonotope") -> np.ndarray:
        """Per-sample element-wise Theorem 4.2 margins, shape ``(B, n)``."""
        return self._xp.to_numpy(self._margins(other))

    def _margins(self, other: "BatchedCHZonotope"):
        other = self._coerce(other)
        xp = self._xp
        inverse = self._generator_inverse()
        if other.num_generators:
            zonotope_part = xp.sum(xp.abs(xp.matmul(inverse, other._generators)), axis=2)
        else:
            zonotope_part = xp.zeros((self.batch_size, self.dim))
        residual = xp.maximum(
            0.0, xp.abs(other._center - self._center) + other._box - self._box
        )
        box_part = xp.sum(xp.abs(inverse * residual[:, None, :]), axis=2)
        return zonotope_part + box_part

    def _generator_inverse(self):
        if tuple(self._generators.shape[1:]) != (self.dim, self.dim):
            raise ImproperZonotopeError(
                "containment check requires the outer batch to be proper "
                f"(square error matrices); got shape {tuple(self._generators.shape[1:])}"
            )
        if self._inverse_cache is None:
            self._inverse_cache = _batched_inverse(
                self._xp, self._generators, context="error matrix"
            )
        return self._inverse_cache

    # ------------------------------------------------------------------
    # Misc utilities
    # ------------------------------------------------------------------

    def compress(self) -> "BatchedCHZonotope":
        """Drop generator columns that are zero across the whole batch."""
        if self.num_generators == 0:
            return self
        xp = self._xp
        keep = xp.sum(xp.abs(self._generators), axis=(0, 1)) > 0
        if bool(xp.all(keep)):
            return self
        return type(self)(self._center, self._generators[:, :, keep], self._box)

    def relu_slopes(self, slope_delta: float):
        """Minimum-area slopes shifted by ``slope_delta`` (slope optimisation)."""
        lower, upper = self._bounds()
        return self._xp.clip(
            batched_default_slopes(self._xp, lower, upper) + slope_delta, 0.0, 1.0
        )

    def _coerce(self, other: "BatchedCHZonotope") -> "BatchedCHZonotope":
        if not isinstance(other, BatchedCHZonotope):
            raise DomainError(f"expected a BatchedCHZonotope, got {type(other).__name__}")
        if other.batch_size != self.batch_size or other.dim != self.dim:
            raise DimensionMismatchError(
                f"batch/dimension mismatch: ({self.batch_size}, {self.dim}) vs "
                f"({other.batch_size}, {other.dim})"
            )
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BatchedCHZonotope(batch={self.batch_size}, dim={self.dim}, "
            f"k={self.num_generators}, backend={self._xp.name})"
        )


def _batched_inverse(xp, matrices, context: str):
    try:
        return xp.inv(matrices)
    except xp.linalg_error as exc:
        raise ImproperZonotopeError(f"{context} is singular and cannot be inverted") from exc
