"""Batched certification engine: Craft over stacks of input regions.

The paper's headline experiments (Table 2 local robustness, Fig. 11 HCAS
global certification) certify hundreds of input regions against *identical*
network weights.  The sequential :class:`~repro.core.craft.CraftVerifier`
pays the full Python interpreter overhead once per region; this subsystem
instead advances all regions of a batch through shared BLAS calls and keeps
the sequential path as the reference implementation the parity tests
compare against.

Batched domains
---------------
The engine is domain-generic: the driver programs against the
:class:`~repro.engine.batched_domains.BatchedDomain` protocol (stacked
affine/ReLU/Minkowski transformers plus the containment/consolidation
hooks) and dispatches on ``CraftConfig.domain`` through
:func:`~repro.engine.batched_domains.batched_domain_for`.  Four stacks
exist — ``chzonotope`` (:class:`BatchedCHZonotope`), ``zonotope``
(:class:`~repro.engine.batched_domains.BatchedZonotope`, the Table 4 "No
Box component" row), ``parallelotope``
(:class:`~repro.engine.batched_domains.BatchedParallelotope`, the
order-bounded rung of the escalation ladder) and ``box``
(:class:`~repro.engine.batched_domains.BatchedBox`, the "No Zono
component" row) — so ablation sweeps batch for every domain.  Unknown
domain names raise ``ConfigurationError``; there is no silent sequential
fallback.

Escalation waterfall
--------------------
``CraftConfig.domains`` turns a sweep into a mixed-domain **waterfall**
(:mod:`repro.engine.escalation`): every query starts in the cheapest
configured domain, certified/falsified verdicts exit early, and
``Unknown``/diverged queries are re-enqueued into the next, more precise
stage.  The batch scheduler runs the waterfall through one
:class:`~repro.engine.escalation.EscalationLadder`; the sharded scheduler
shards per ``(stage, batch)`` and pipelines escalations, so stragglers
overlap with still-running cheap-stage shards.  Ladders ending in
``chzonotope`` never flip a certified/falsified verdict relative to the
pure CH-Zonotope sweep — escalation only adds cheaper certificates.

Batch layout
------------
A batch of ``B`` CH-Zonotopes of dimension ``n`` with a uniform error-term
count ``k`` is stored as three arrays
(:class:`~repro.engine.batched_chzonotope.BatchedCHZonotope`)::

    centers    (B, n)      stacked centres a_i
    generators (B, n, k)   stacked error matrices A_i
    box        (B, n)      stacked Box error radii b_i

``k`` is made uniform by right-padding generator matrices with zero
columns; a zero column never changes the concretised set, so padding is a
representation detail only.  ``BatchedZonotope`` shares the layout with an
identically-zero Box component; ``BatchedBox`` stores two ``(B, n)`` bound
arrays.  All transformers (affine, ReLU, Minkowski sum, consolidation,
Theorem 4.2 containment) are einsum/broadcast expressions whose sample
``i`` equals the sequential transformer applied to sample ``i`` — the
parity contract the engine tests enforce.

Active-mask semantics
---------------------
Both Craft phases run with per-sample early exit.  The driver
(:class:`~repro.engine.craft.BatchedCraft`) keeps an ``active`` index array
into the original batch; each iteration advances only the active stack.  A
sample exits phase one when it proves containment against its consolidated
history or diverges past the abort width, and exits phase two when its
postcondition certifies, its width diverges, or its patience budget is
exhausted.  On exit the sample's row is gathered out of the batched state,
its per-sample record (final element, reference, iteration counts, width
trace) is frozen, and the remaining rows continue as a smaller stack —
so a finished region never pays for a slow batch mate, and each sample's
trajectory is independent of which other samples share its batch.

Cache tiers & keys
------------------
The schedulers optionally persist verdicts through the tiered cache of
:mod:`repro.engine.cache` (:class:`~repro.engine.cache.TieredVerdictCache`):
an in-memory LRU tier (:class:`~repro.engine.cache_lru.LRUTier`) in front
of the on-disk :class:`~repro.engine.cache.FixpointCache`, plus a
**dominance index** (:class:`~repro.engine.cache_dominance.DominanceIndex`)
that answers queries never literally asked — a cached *certified* superset
region dominates any contained query, and a cached *falsifying point*
refutes any region containing it.  An exact query key is::

    sha256( weights_hash(model)       # sha256 over sorted parameter bytes + m
          | center.tobytes()          # float64 anchor input
          | repr((epsilon, clip_min, clip_max, target))
          | config signature )        # verdict-relevant CraftConfig fields

``CacheConfig.key_mode="quantized"`` instead snaps the centre to a grid
and buckets epsilon (down for lookup, up when admitting certified
verdicts), so near-identical queries share keys; the entry always records
the *exact* region it was proved for, and every non-verbatim serve is
re-checked against that recorded region, so quantisation can change hit
rates but never verdicts.  Entries are ``<key>.json`` holding the scalar
verdict (outcome, margin, iteration counts, selected tightening
parameters, resolving stage) plus the exact region and the writing
configuration's fingerprint as a version stamp.  Any weight update,
region change or verdict-relevant configuration change therefore misses
the cache by construction, and entries stamped by a mismatched
configuration are rejected on load.

Multi-process sharding
----------------------
:class:`~repro.engine.sharded.ShardedScheduler` scales a sweep across
worker processes: the query regions are partitioned into shards, each
worker receives the (read-only) weights once at pool start and runs
``BatchedCraft`` per shard, verdicts stream back as shards complete, and
all workers share the on-disk fixpoint cache through atomic per-entry
writes.  Shard batch sizes default to the cache-aware estimate of
:mod:`repro.engine.working_set`, which bounds the phase-two working set —
error terms grow by roughly (input dim + state dim) per tightening step —
to the host's last-level cache.
"""

from repro.engine.batched_chzonotope import BatchedCHZonotope
from repro.engine.cache import (
    CacheStats,
    FixpointCache,
    RegionQuery,
    TieredVerdictCache,
    build_verdict_cache,
    config_fingerprint,
    weights_hash,
)
from repro.engine.cache_dominance import DominanceIndex
from repro.engine.cache_lru import LRUTier
from repro.engine.batched_domains import (
    BatchedBox,
    BatchedDomain,
    BatchedParallelotope,
    BatchedZonotope,
    batched_domain_for,
)
from repro.engine.craft import BatchedCraft, ConsolidationStats
from repro.engine.escalation import EscalationLadder, StageStats, should_escalate
from repro.engine.results import EngineReport
from repro.engine.scheduler import BatchCertificationScheduler
from repro.engine.sharded import ShardedScheduler
from repro.engine.working_set import (
    auto_batch_size,
    max_error_terms,
    phase2_working_set_bytes,
    stage_batch_sizes,
    stage_error_term_estimates,
)

__all__ = [
    "BatchCertificationScheduler",
    "BatchedBox",
    "BatchedCHZonotope",
    "BatchedCraft",
    "BatchedDomain",
    "BatchedParallelotope",
    "BatchedZonotope",
    "CacheStats",
    "ConsolidationStats",
    "DominanceIndex",
    "EngineReport",
    "EscalationLadder",
    "FixpointCache",
    "LRUTier",
    "RegionQuery",
    "ShardedScheduler",
    "StageStats",
    "TieredVerdictCache",
    "auto_batch_size",
    "batched_domain_for",
    "build_verdict_cache",
    "config_fingerprint",
    "max_error_terms",
    "phase2_working_set_bytes",
    "should_escalate",
    "stage_batch_sizes",
    "stage_error_term_estimates",
    "weights_hash",
]
