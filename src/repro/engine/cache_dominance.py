"""Dominance index: answer cached-verdict queries never literally asked.

The index exploits the two monotonicity facts of the certification
protocol (Müller et al., PLDI 2023 — robustness queries over l-infinity
balls):

* a region certified at radius ``epsilon`` dominates every contained
  region — a sound certificate covers all of its points, so any query
  whose clipped region is a subset (same classification target) is
  ``VERIFIED`` by implication;
* a falsifying point refutes every region containing it — a cached
  ``MISCLASSIFIED`` entry records a concrete input the network labels
  wrongly, so any query region containing that point (same target) is
  falsified by witness.

Entries are grouped per (target, input dimension) under one
(model-fingerprint, config-signature) scope: certified regions are kept
as stacked clipped-interval bounds sorted by epsilon *descending* (the
widest — most likely dominating — region is checked first, and ties
break on key for determinism), falsifying entries as stacked centre
points sorted by key.  Queries are answered with vectorised numpy
containment tests using exact ``<=`` comparisons — no tolerance, since a
tolerance would certify points the certificate does not cover.

Falsifying points are consulted **before** certificates (fail-closed): a
query region containing a known misclassified input must be refuted even
if some cached certificate *claims* to cover it (which would indicate a
corrupt entry — refutation by concrete witness always wins).

Only payloads carrying the full region identity and the post-1.5.0
calibration fields (:func:`repro.engine.cache.payload_supports_dominance`)
are ingested; ``refresh()`` incrementally scans the cache directory for
entries other workers published, tracking seen filenames so concurrent
admissions never require a rebuild — the atomic-publication contract of
:class:`~repro.engine.cache.FixpointCache` guarantees a scan only ever
observes complete entries.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.results import VerificationOutcome
from repro.engine.cache import (
    RegionQuery,
    payload_region,
    payload_supports_dominance,
)


@dataclass
class _Group:
    """All ingested entries for one (target, input-dimension) pair."""

    certified: List[Tuple[str, Dict, RegionQuery]] = field(default_factory=list)
    falsified: List[Tuple[str, Dict, np.ndarray]] = field(default_factory=list)
    # Lazily (re)built stacked arrays; invalidated on every ingest.
    _cert_stack: Optional[Tuple[np.ndarray, np.ndarray, List[int]]] = None
    _fals_stack: Optional[Tuple[np.ndarray, List[int]]] = None

    def invalidate(self) -> None:
        self._cert_stack = None
        self._fals_stack = None

    def certified_stack(self) -> Optional[Tuple[np.ndarray, np.ndarray, List[int]]]:
        if not self.certified:
            return None
        if self._cert_stack is None:
            order = sorted(
                range(len(self.certified)),
                key=lambda i: (-self.certified[i][2].epsilon, self.certified[i][0]),
            )
            lower = np.stack([self.certified[i][2].bounds()[0] for i in order])
            upper = np.stack([self.certified[i][2].bounds()[1] for i in order])
            self._cert_stack = (lower, upper, order)
        return self._cert_stack

    def falsified_stack(self) -> Optional[Tuple[np.ndarray, List[int]]]:
        if not self.falsified:
            return None
        if self._fals_stack is None:
            order = sorted(
                range(len(self.falsified)), key=lambda i: self.falsified[i][0]
            )
            points = np.stack([self.falsified[i][2] for i in order])
            self._fals_stack = (points, order)
        return self._fals_stack


class DominanceIndex:
    """Interval index over one cache directory's dominance-capable entries.

    ``signature``/``model_digest`` scope the index: entries stamped by a
    different configuration or recording a different model fingerprint
    are skipped at ingest, so one shared cache directory can serve many
    (model, config) pairs without cross-talk.
    """

    def __init__(
        self,
        directory: str,
        signature: Optional[str] = None,
        model_digest: Optional[str] = None,
    ):
        self.directory = directory
        self.signature = signature
        self.model_digest = model_digest
        self._seen: Set[str] = set()
        self._groups: Dict[Tuple[int, int], _Group] = {}
        #: Entries a refresh scan skipped (legacy shape, foreign scope…) —
        #: surfaced for observability, never consulted for answers.
        self.skipped = 0
        self.refresh()

    # -- ingest --------------------------------------------------------

    def refresh(self) -> int:
        """Scan the directory for entries not yet ingested; returns the
        number of new dominance-capable entries."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        ingested = 0
        for name in sorted(names):
            if not name.endswith(".json") or name in self._seen:
                continue
            self._seen.add(name)
            path = os.path.join(self.directory, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                self.skipped += 1
                continue
            if self._ingest(name[: -len(".json")], payload):
                ingested += 1
            else:
                self.skipped += 1
        return ingested

    def admit(self, key: str, payload: Dict) -> bool:
        """Ingest an entry this process just wrote (no directory scan)."""
        self._seen.add(f"{key}.json")
        return self._ingest(key, payload)

    def _ingest(self, key: str, payload: Dict) -> bool:
        if self.signature is not None and payload.get("signature") != self.signature:
            return False
        if (
            self.model_digest is not None
            and payload.get("model_digest") != self.model_digest
        ):
            return False
        if not payload_supports_dominance(payload):
            # Pre-1.5.0 payload shapes (no region / calibration fields)
            # may replay verbatim by exact key but never by dominance.
            return False
        region = payload_region(payload)
        group_key = (region.target, region.dim)
        group = self._groups.get(group_key)
        if group is None:
            group = self._groups[group_key] = _Group()
        if payload.get("outcome") == VerificationOutcome.MISCLASSIFIED.value:
            group.falsified.append((key, payload, region.center))
        elif payload.get("certified"):
            group.certified.append((key, payload, region))
        else:
            # UNKNOWN / NO_CONTAINMENT / DIVERGED verdicts dominate
            # nothing beyond their literal region (exact replay handles
            # that); indexing them would only slow queries down.
            return False
        group.invalidate()
        return True

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return sum(
            len(group.certified) + len(group.falsified)
            for group in self._groups.values()
        )

    def query(self, query: RegionQuery) -> Optional[Tuple[str, Dict]]:
        """The (key, payload) of an entry dominating ``query``, or ``None``.

        Falsifying points are consulted first (fail-closed), then
        certified regions widest-epsilon first.  Containment is tested on
        the clipped interval bounds with exact comparisons.
        """
        group = self._groups.get((query.target, query.dim))
        if group is None:
            return None
        query_lower, query_upper = query.bounds()
        falsified = group.falsified_stack()
        if falsified is not None:
            points, order = falsified
            mask = np.all((points >= query_lower) & (points <= query_upper), axis=1)
            hits = np.flatnonzero(mask)
            if hits.size:
                key, payload, _ = group.falsified[order[int(hits[0])]]
                return key, payload
        certified = group.certified_stack()
        if certified is not None:
            lower, upper, order = certified
            mask = np.all(lower <= query_lower, axis=1) & np.all(
                query_upper <= upper, axis=1
            )
            hits = np.flatnonzero(mask)
            if hits.size:
                key, payload, _ = group.certified[order[int(hits[0])]]
                return key, payload
        return None
