"""Result aggregation for the batched certification engine.

The engine certifies whole batches of regions; this module collects the
per-region :class:`~repro.core.results.VerificationResult` objects together
with scheduling metadata (cache hits, batch count, wall-clock time) and
derives the throughput-style summary rows the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.results import VerificationResult


@dataclass
class EngineReport:
    """Aggregated outcome of one scheduler run over a set of regions."""

    results: List[VerificationResult] = field(default_factory=list)
    cache_hits: int = 0
    #: Hits answered by *dominance* — a cached certified superset region
    #: or falsifying point, not a literal replay (subset of ``cache_hits``).
    cache_dominance_hits: int = 0
    num_batches: int = 0
    elapsed_seconds: float = 0.0
    num_workers: int = 1
    #: Per-stage accounting rows of an escalation-ladder sweep
    #: (:class:`repro.engine.escalation.StageStats` ``as_row`` dicts,
    #: cheapest stage first); empty for cache-only or legacy reports.
    stages: List[Dict] = field(default_factory=list)

    @property
    def num_regions(self) -> int:
        return len(self.results)

    @property
    def num_contained(self) -> int:
        return sum(result.contained for result in self.results)

    @property
    def num_certified(self) -> int:
        return sum(result.certified for result in self.results)

    @property
    def throughput(self) -> float:
        """Certification queries per second of wall-clock time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.num_regions / self.elapsed_seconds

    @property
    def mean_margin(self) -> float:
        margins = [result.margin for result in self.results if np.isfinite(result.margin)]
        return float(np.mean(margins)) if margins else float("nan")

    @property
    def stage_counts(self) -> Dict[str, int]:
        """Resolving-stage histogram of the per-query verdicts."""
        from repro.engine.escalation import stage_histogram

        return stage_histogram(self.results)

    def as_row(self) -> Dict:
        """Summary dictionary printed by the benchmark harness."""
        row = {
            "regions": self.num_regions,
            "contained": self.num_contained,
            "certified": self.num_certified,
            "cache_hits": self.cache_hits,
            "cache_dominance_hits": self.cache_dominance_hits,
            "batches": self.num_batches,
            "workers": self.num_workers,
            "time": round(self.elapsed_seconds, 3),
            "regions_per_second": round(self.throughput, 2),
        }
        if self.stages:
            row["stages"] = self.stages
        return row
