"""Multi-process sharded certification: shards of a sweep fan out to workers.

The paper's headline sweeps (Table 2 local robustness, Fig. 11 HCAS domain
splitting) are embarrassingly parallel across regions: every query shares
one set of read-only monDEQ weights.  :class:`ShardedScheduler` exploits
that by partitioning a sweep's query regions into shards of
``batch_size`` regions, fanning the shards out to a pool of worker
processes — each worker receives the pickled weights *once* at pool
initialisation and runs the vectorised
:class:`~repro.engine.craft.BatchedCraft` per shard — and streaming
per-region verdicts back as shards complete (``imap_unordered``).
Per-sample early-exit semantics inside a shard are exactly those of the
batched engine, and verdicts are independent of the sharding (the engine's
parity contract).

Escalation waterfall
--------------------
Ladder configurations (``CraftConfig.domains`` with several stages) shard
per **(stage, batch)**: every query starts in the cheapest domain, and a
completed shard's unresolved queries are immediately re-sharded into the
next stage and submitted to the pool — escalated stragglers overlap with
still-running cheap-stage shards instead of serialising behind a stage
barrier.  Shard batch sizes are stage-aware
(:func:`repro.engine.working_set.stage_batch_sizes`), workers build one
:class:`BatchedCraft` per stage lazily, and only *final* verdicts
(resolved, or produced by the last stage) are persisted to the shared
cache.

Cache sharing
-------------
All workers share one on-disk :class:`~repro.engine.cache.FixpointCache`
directory (each wrapped in its own
:class:`~repro.engine.cache.TieredVerdictCache` — the LRU tier and
dominance index are per-process views over the shared directory).  No
file locking is needed: every entry is its own file, written under a
writer-unique temporary name and published with the atomic
``os.replace``, so concurrent workers certifying overlapping regions never
corrupt an entry — the regression tests in
``tests/engine/test_cache_concurrency.py`` pin this.  The parent answers
cache hits (including dominance hits) before sharding; workers persist
fresh verdicts themselves, stamped with the configuration fingerprint
(:func:`~repro.engine.cache.config_fingerprint`).

Execution modes
---------------
``start_method`` selects ``"fork"`` (default where available — weights are
inherited copy-on-write and re-pickled only for the initializer args),
``"spawn"`` (portable; workers re-import the library) or ``"inline"``
(no subprocesses: shards run in the parent through the identical code
path).  Inline mode is what the differential fuzzing suite uses to check
shard semantics at hypothesis speed, and what ``num_workers=1`` degrades
to — a single-worker pool would only add IPC overhead.

A per-shard ``timeout_seconds`` bounds every wait on the pool, so a hung
worker fails the sweep fast (with the pool terminated) instead of stalling
CI forever.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CraftConfig
from repro.core.results import VerificationResult
from repro.backend import resolve_backend
from repro.engine.craft import BatchedCraft, ConsolidationStats
from repro.engine.escalation import StageStats, should_escalate
from repro.engine.results import EngineReport
from repro.engine.cache import RegionQuery, TieredVerdictCache, build_verdict_cache
from repro.exceptions import ConfigurationError, VerificationError
from repro.mondeq.model import MonDEQ
from repro.verify.specs import ClassificationSpec, LinfBall

_START_METHODS = ("fork", "spawn", "forkserver", "inline")


def default_start_method() -> str:
    """``"fork"`` where the platform offers it (cheap, COW weights), else ``"spawn"``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def default_num_workers() -> int:
    """Worker count matching the CPUs this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return max(1, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Worker-side machinery.  Module-level (not closures) so both fork and
# spawn can address it; state lives in a module global initialised once
# per worker process with the weights payload.
# ----------------------------------------------------------------------


@dataclass
class _WorkerState:
    """Per-worker state: the weights plus one lazily built
    :class:`BatchedCraft` per ladder stage the worker actually sees."""

    model: MonDEQ
    config: CraftConfig
    cache: Optional[TieredVerdictCache]
    keep_abstractions: bool
    crafts: Dict[str, BatchedCraft] = field(default_factory=dict)

    def craft_for(self, domain: str) -> BatchedCraft:
        craft = self.crafts.get(domain)
        if craft is None:
            craft = BatchedCraft(self.model, self.config.stage_config(domain))
            self.crafts[domain] = craft
        return craft


_WORKER: Optional[_WorkerState] = None


def _build_worker_state(payload: bytes) -> _WorkerState:
    model, config, cache_dir, keep_abstractions = pickle.loads(payload)
    cache = (
        build_verdict_cache(cache_dir, config, model)
        if cache_dir is not None
        else None
    )
    return _WorkerState(
        model=model,
        config=config,
        cache=cache,
        keep_abstractions=keep_abstractions,
    )


def _init_worker(payload: bytes) -> None:
    global _WORKER
    _WORKER = _build_worker_state(payload)


@dataclass
class _Shard:
    """One unit of work: a chunk of cache-miss queries at one ladder stage."""

    indices: List[int]
    balls: List[LinfBall]
    specs: List[ClassificationSpec]
    anchors: Optional[np.ndarray]
    #: Ladder stage (domain name) this shard certifies in.
    domain: str = "chzonotope"
    #: Whether this is the ladder's last stage (its verdicts are final).
    final: bool = True


def _run_shard(
    shard: _Shard,
) -> Tuple[List[int], List[VerificationResult], str, float, Dict]:
    return _execute_shard(_WORKER, shard)


def _execute_shard(
    state: _WorkerState, shard: _Shard
) -> Tuple[List[int], List[VerificationResult], str, float, Dict]:
    start = time.perf_counter()
    craft = state.craft_for(shard.domain)
    results = craft.certify_regions(shard.balls, shard.specs, shard.anchors)
    elapsed = time.perf_counter() - start
    # The driver resets its consolidation accounting per certify_regions
    # call, so this snapshot is exactly this shard's share; it crosses the
    # pool pipe as a plain dict (cheap, pickle-stable).
    consolidation = craft.consolidation_stats.as_dict()
    if state.cache is not None:
        for ball, spec, result in zip(shard.balls, shard.specs, results):
            # Only *final* verdicts may be persisted: a non-final stage's
            # unresolved result is about to be escalated, and caching it
            # would replay an interim Unknown as the sweep's answer if a
            # later run hits the entry before the ladder finishes.
            if shard.final or not should_escalate(result):
                state.cache.admit(RegionQuery.from_ball(ball, spec), result)
    if not state.keep_abstractions:
        # Strip on the worker side, *before* the results cross the pool
        # pipe — avoiding the serialisation of the generator stacks is the
        # whole point of the flag.
        results = [_strip_abstractions(result) for result in results]
    return shard.indices, results, shard.domain, elapsed, consolidation


def _strip_abstractions(result: VerificationResult) -> VerificationResult:
    if result.fixpoint_abstraction is None and result.output_element is None:
        return result
    return replace(result, fixpoint_abstraction=None, output_element=None)


class ShardedScheduler:
    """Fan certification queries out to a pool of read-only-weight workers.

    Parameters
    ----------
    model, config:
        The monDEQ and the verification configuration; both are pickled to
        each worker exactly once (pool initializer).
    num_workers:
        Worker processes; defaults to the CPUs available to this process.
        ``1`` runs inline (no subprocesses).
    batch_size:
        Regions per shard.  ``None`` (default) picks the cache-aware size
        (:func:`repro.engine.working_set.auto_batch_size`).  When a sweep
        would produce fewer shards than workers, shards are split further
        so every worker is busy.
    cache_dir:
        Shared on-disk fixpoint cache; hits are answered by the parent
        before sharding, fresh verdicts are persisted by the workers.
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"``/``"inline"``; ``None``
        selects :func:`default_start_method`.
    timeout_seconds:
        Bound on every wait for a shard result.  On expiry the pool is
        terminated and a :class:`VerificationError` raised — a hung worker
        must fail fast, not stall the sweep.
    keep_abstractions:
        When ``False``, workers strip the abstraction elements from
        results before shipping them back (verdict-only sweeps avoid
        serialising the — potentially large — generator matrices).
    """

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        num_workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        cache_dir: Optional[str] = None,
        start_method: Optional[str] = None,
        timeout_seconds: float = 600.0,
        keep_abstractions: bool = True,
    ):
        from repro.engine.working_set import (
            detect_llc_bytes,
            stage_batch_sizes,
            stage_error_term_estimates,
        )

        self.model = model
        self.config = config if config is not None else CraftConfig()
        # Fail the backend request here, in the coordinator, before any
        # worker forks: an unusable backend (torch absent, cuda without a
        # GPU) must raise one ConfigurationError up front, not one per
        # shard from inside the pool.
        resolve_backend(
            self.config.backend,
            self.config.backend_device,
            self.config.backend_search_dtype,
        )
        if num_workers is None:
            num_workers = default_num_workers()
        if num_workers < 1:
            raise ConfigurationError("num_workers must be positive")
        self.num_workers = num_workers
        if batch_size is not None:
            if batch_size < 1:
                raise ConfigurationError("batch_size must be positive")
            self.stage_batch_sizes = {name: batch_size for name in self.config.domains}
        else:
            # The workers run concurrently on cores sharing one last-level
            # cache, so each shard only gets a 1/num_workers slice of the
            # budget — otherwise the aggregate working set is num_workers
            # times the cache and every worker goes DRAM-bound again.  Each
            # ladder stage is sized for its own domain layout (a Box stage
            # has no generator stack to budget for).
            budget = (
                self.config.cache_budget_bytes
                if self.config.cache_budget_bytes is not None
                else detect_llc_bytes()
            )
            self.stage_batch_sizes = stage_batch_sizes(
                model, self.config, budget_bytes=max(1, budget // num_workers)
            )
        # The advertised batch size is the final (most precise) stage's.
        self.batch_size = self.stage_batch_sizes[self.config.domain]
        #: Analytic per-stage peak error-term estimates (compared against
        #: the measured peaks the shards stream back).
        self.stage_error_term_estimates = stage_error_term_estimates(model, self.config)
        #: Per-stage accounting of the most recent dispatch (waterfall sweeps).
        self.stage_stats: List[StageStats] = []
        if start_method is None:
            start_method = default_start_method()
        if start_method not in _START_METHODS:
            raise ConfigurationError(
                f"start_method must be one of {_START_METHODS}, got {start_method!r}"
            )
        self.start_method = start_method
        if timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")
        self.timeout_seconds = timeout_seconds
        self.keep_abstractions = keep_abstractions
        self.cache_dir = cache_dir
        self.cache = (
            build_verdict_cache(cache_dir, self.config, model)
            if cache_dir is not None
            else None
        )
        self._pool = None
        self._inline_state: Optional[_WorkerState] = None
        # Concurrent-caller safety: certify()/certify_regions() may be
        # invoked from several threads at once (the service frontend's
        # max_concurrent_batches does exactly that).  The transport hooks
        # below are sweep-scoped, so dispatch state never aliases; the
        # remaining shared mutable state is the cache view (not
        # thread-safe), the inline worker state and the pool lifecycle —
        # each serialised by its own lock.
        self._cache_lock = threading.Lock()
        self._inline_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()
        # Spawn the pool eagerly: forking *before* the parent runs any BLAS
        # work (the prediction pass) sidesteps the classic
        # fork-after-threaded-BLAS deadlock with OpenBLAS/MKL thread pools.
        if not self._inline:
            self._ensure_pool()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    @property
    def _inline(self) -> bool:
        return self.start_method == "inline" or self.num_workers == 1

    def _payload(self) -> bytes:
        return pickle.dumps(
            (self.model, self.config, self.cache_dir, self.keep_abstractions)
        )

    def _ensure_pool(self):
        with self._lifecycle_lock:
            if self._inline:
                if self._inline_state is None:
                    self._inline_state = _build_worker_state(self._payload())
                return None
            if self._pool is None:
                context = multiprocessing.get_context(self.start_method)
                self._pool = context.Pool(
                    processes=self.num_workers,
                    initializer=_init_worker,
                    initargs=(self._payload(),),
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        A later certify() transparently re-creates the pool, but note that
        a re-created ``"fork"`` pool no longer enjoys the
        fork-before-BLAS guarantee of the eager construction-time spawn:
        by then the parent has usually run prediction passes, so prefer a
        fresh scheduler (or ``"forkserver"``) if the host's BLAS is known
        to be fork-unsafe.
        """
        with self._lifecycle_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def __enter__(self) -> "ShardedScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def certify(
        self,
        xs: np.ndarray,
        labels: Sequence[int],
        epsilon: float,
        clip_min: Optional[float] = 0.0,
        clip_max: Optional[float] = 1.0,
    ) -> EngineReport:
        """Certify every (row of ``xs``, label) query across the worker pool.

        Semantically identical to
        :meth:`repro.engine.scheduler.BatchCertificationScheduler.certify`
        (same verdicts, same cache behaviour); only the execution strategy
        differs.
        """
        from repro.engine.craft import prediction_pass

        start = time.perf_counter()
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        labels = np.asarray(labels, dtype=int).reshape(-1)
        if xs.shape[0] != labels.shape[0]:
            raise VerificationError("xs and labels must have matching lengths")
        balls = [
            LinfBall(center=x, epsilon=epsilon, clip_min=clip_min, clip_max=clip_max)
            for x in xs
        ]
        specs = [
            ClassificationSpec(target=int(label), num_classes=self.model.output_dim)
            for label in labels
        ]
        results, queries, misses = self._cache_lookup(balls, specs)
        cache_hits = sum(result is not None for result in results)
        dominance_hits = sum(
            result is not None and result.cache_tier == "dominance"
            for result in results
        )

        # Same prediction pass as BatchedCraft.certify (one shared copy of
        # the short-circuit semantics), run over the cache misses only.
        queued: List[int] = []
        anchors = None
        if misses:
            miss_results, miss_queued, anchors = prediction_pass(
                self.model, self.config, xs[misses], labels[misses]
            )
            for row, index in enumerate(misses):
                if miss_results[row] is not None:
                    results[index] = miss_results[row]
                    if self.cache is not None:
                        with self._cache_lock:
                            self.cache.admit(queries[index], miss_results[row])
            queued = [misses[row] for row in miss_queued]

        num_shards, stage_rows = self._dispatch(queued, balls, specs, anchors, results)
        if dominance_hits:
            from repro.engine.escalation import fold_dominance_hits

            stage_rows = fold_dominance_hits(stage_rows, results)
        return EngineReport(
            results=results,
            cache_hits=cache_hits,
            cache_dominance_hits=dominance_hits,
            num_batches=num_shards,
            elapsed_seconds=time.perf_counter() - start,
            num_workers=1 if self._inline else self.num_workers,
            stages=stage_rows,
        )

    def certify_regions(
        self,
        balls: Sequence[LinfBall],
        specs: Sequence[ClassificationSpec],
        anchor_fixpoints: Optional[np.ndarray] = None,
    ) -> List[VerificationResult]:
        """Sharded counterpart of :meth:`BatchedCraft.certify_regions`.

        Used by the domain-splitting certifier: one BFS frontier level is
        one sharded pass.  ``anchor_fixpoints`` rows are sliced per shard.
        """
        balls = list(balls)
        specs = list(specs)
        if len(balls) != len(specs):
            raise VerificationError("balls and specs must have matching lengths")
        results, _, misses = self._cache_lookup(balls, specs)
        anchors = (
            np.asarray(anchor_fixpoints)[misses]
            if anchor_fixpoints is not None and misses
            else None
        )
        self._dispatch(misses, balls, specs, anchors, results)
        return results

    # ------------------------------------------------------------------
    # Core sharded execution
    # ------------------------------------------------------------------

    def _cache_lookup(
        self, balls: Sequence[LinfBall], specs: Sequence[ClassificationSpec]
    ) -> Tuple[
        List[Optional[VerificationResult]], List[Optional[RegionQuery]], List[int]
    ]:
        """Answer what the cache can; return (results, queries, miss indices)."""
        total = len(balls)
        results: List[Optional[VerificationResult]] = [None] * total
        queries: List[Optional[RegionQuery]] = [None] * total
        misses: List[int] = []
        with self._cache_lock:
            if self.cache is not None:
                # One incremental scan per sweep picks up entries concurrent
                # writers (including this scheduler's own workers) published.
                self.cache.refresh()
            for index in range(total):
                if self.cache is not None:
                    query = RegionQuery.from_ball(balls[index], specs[index])
                    queries[index] = query
                    cached = self.cache.lookup(query)
                    if cached is not None:
                        results[index] = cached
                        continue
                misses.append(index)
        return results, queries, misses

    def _build_shard(
        self,
        chunk: List[int],
        balls: Sequence[LinfBall],
        specs: Sequence[ClassificationSpec],
        anchor_rows: Optional[Dict[int, np.ndarray]],
        domain: str,
    ) -> _Shard:
        return _Shard(
            indices=chunk,
            balls=[balls[i] for i in chunk],
            specs=[specs[i] for i in chunk],
            anchors=(
                np.stack([anchor_rows[i] for i in chunk])
                if anchor_rows is not None
                else None
            ),
            domain=domain,
            final=domain == self.config.domains[-1],
        )

    def _make_stage0_shards(
        self,
        order: List[int],
        balls: Sequence[LinfBall],
        specs: Sequence[ClassificationSpec],
        anchor_rows: Optional[Dict[int, np.ndarray]],
    ) -> List[_Shard]:
        """Chunk the queries at the global indices ``order`` into the
        first-stage shards, balanced across the worker pool."""
        if not order:
            return []
        # At most batch_size queries per shard, but never fewer shards than
        # workers: a 256-region sweep over 4 workers with batch 256 would
        # otherwise serialise on a single shard.  numpy's array_split
        # balancing keeps shard sizes within one query of each other.
        domain = self.config.domains[0]
        batch_size = self.stage_batch_sizes[domain]
        count = len(order)
        num_shards = max(math.ceil(count / batch_size), min(self.num_workers, count))
        # Round the shard count up to a worker multiple: 6 shards over 4
        # workers would leave two workers processing two shards while the
        # others idle — a 2x makespan for no batching gain.
        num_shards = min(count, math.ceil(num_shards / self.num_workers) * self.num_workers)
        boundaries = np.array_split(np.arange(count), num_shards)
        return [
            self._build_shard(
                [order[p] for p in positions], balls, specs, anchor_rows, domain
            )
            for positions in boundaries
        ]

    def _dispatch(
        self,
        order: List[int],
        balls: Sequence[LinfBall],
        specs: Sequence[ClassificationSpec],
        anchors: Optional[np.ndarray],
        results: List[Optional[VerificationResult]],
    ) -> Tuple[int, List[dict]]:
        """Run the escalation waterfall over the queries at ``order``.

        Shards are per ``(stage, batch)``: every query starts in the
        cheapest configured domain, and each completed shard's unresolved
        queries are immediately re-sharded into the next stage and
        submitted to the pool — escalated stragglers overlap with
        still-running cheap-stage shards instead of serialising the sweep
        behind a stage barrier.  ``anchors`` (when given) is aligned with
        ``order``; the anchor rows stay valid across stages because the
        solver parameters are ladder-invariant.

        Returns ``(total shard count, per-stage accounting rows)`` and
        scatters verdicts into ``results``.
        """
        stages = self.config.domains
        stage_index = {name: position for position, name in enumerate(stages)}
        stats = {
            name: StageStats(
                domain=name,
                batch_size=self.stage_batch_sizes[name],
                estimated_error_terms=self.stage_error_term_estimates[name],
            )
            for name in stages
        }
        self.stage_stats = [stats[name] for name in stages]
        if not order:
            return 0, []
        anchor_rows = (
            {index: anchors[position] for position, index in enumerate(order)}
            if anchors is not None
            else None
        )
        shards = self._make_stage0_shards(order, balls, specs, anchor_rows)
        stats[stages[0]].attempted = len(order)
        total_shards = len(shards)
        self._ensure_pool()
        sweep = self._begin_dispatch()
        try:
            outstanding = 0
            for shard in shards:
                self._submit_one(sweep, shard)
                outstanding += 1
            while outstanding:
                indices, shard_results, domain, elapsed, consolidation = (
                    self._next_completed(sweep)
                )
                outstanding -= 1
                stage_stats = stats[domain]
                stage_stats.batches += 1
                stage_stats.elapsed_seconds += elapsed
                stage_stats.record_consolidation(
                    ConsolidationStats.from_dict(consolidation)
                )
                stage_stats.record_peaks(shard_results)
                stage_stats.record_acceleration(shard_results)
                position = stage_index[domain]
                final = position == len(stages) - 1
                escalated: List[int] = []
                for index, result in zip(indices, shard_results):
                    if final or not should_escalate(result):
                        results[index] = result
                        stage_stats.resolved += 1
                        stage_stats.certified += int(result.certified)
                    else:
                        escalated.append(index)
                stage_stats.escalated += len(escalated)
                if escalated:
                    next_domain = stages[position + 1]
                    stats[next_domain].attempted += len(escalated)
                    next_batch = self.stage_batch_sizes[next_domain]
                    for offset in range(0, len(escalated), next_batch):
                        shard = self._build_shard(
                            escalated[offset : offset + next_batch],
                            balls, specs, anchor_rows, next_domain,
                        )
                        total_shards += 1
                        self._submit_one(sweep, shard)
                        outstanding += 1
        finally:
            self._finish_dispatch(sweep)
        return total_shards, [stats[name].as_row() for name in stages]

    # ------------------------------------------------------------------
    # Transport hooks.  The waterfall above is execution-strategy
    # agnostic: it only needs "open a sweep" (:meth:`_begin_dispatch`,
    # which returns an opaque per-sweep token), "hand this shard to the
    # workers" (:meth:`_submit_one`), "block until any of *this sweep's*
    # shards completes" (:meth:`_next_completed`) and "close the sweep"
    # (:meth:`_finish_dispatch`, always called, success or failure).
    # Because all dispatch state hangs off the token, any number of
    # sweeps may interleave on one scheduler — the pool transport below
    # collects each sweep's shards in FIFO submission order; the TCP
    # cluster transport (:class:`repro.service.cluster.ClusterScheduler`)
    # overrides these hooks with per-sweep lease tables over a shared
    # work queue and inherits the waterfall, cache and accounting
    # unchanged.
    # ------------------------------------------------------------------

    def _begin_dispatch(self) -> deque:
        """Open one sweep; returns its transport token."""
        return deque()

    def _submit_one(self, sweep: deque, shard: _Shard) -> None:
        """Hand one of ``sweep``'s shards to the execution backend."""
        sweep.append(self._submit(shard))

    def _next_completed(
        self, sweep: deque
    ) -> Tuple[List[int], List[VerificationResult], str, float, Dict]:
        """Block until one of ``sweep``'s shards completes; return its
        payload."""
        return self._collect(sweep.popleft())

    def _finish_dispatch(self, sweep: deque) -> None:
        """Tear down one sweep's transport state (pool: nothing to do —
        an abandoned ``AsyncResult`` is garbage collected)."""

    def _submit(self, shard: _Shard):
        """Hand a shard to the pool (or keep it for inline execution)."""
        if self._inline:
            return shard
        return self._pool.apply_async(_run_shard, (shard,))

    def _collect(self, handle):
        """Wait for one submitted shard's
        ``(indices, results, domain, elapsed, consolidation stats)``."""
        if self._inline:
            # The inline worker state (per-stage crafts + cache) is shared
            # across sweeps; concurrent callers serialise here.
            with self._inline_lock:
                return _execute_shard(self._inline_state, handle)
        try:
            return handle.get(timeout=self.timeout_seconds)
        except multiprocessing.TimeoutError:
            self.close()
            raise VerificationError(
                f"sharded certification timed out: a shard did not finish within "
                f"{self.timeout_seconds}s ({self.num_workers} workers) — pool "
                f"terminated"
            ) from None
        except Exception:
            self.close()
            raise
