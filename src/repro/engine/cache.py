"""Tiered fixpoint-verdict cache: exact/quantised keys, dominance, LRU.

The certification protocol is *monotone in the query*: a region certified
at radius ``epsilon`` dominates every contained region at any smaller
radius (a sound certificate covers all of its points), and a concrete
falsifying point refutes every region containing it.  The original
:class:`FixpointCache` ignored this — it keyed on exact centre bytes, so
an HCAS cell split or a jittered repeat query recomputed a verdict the
cache already implied.  This module layers three mechanisms on top of the
on-disk store, all configured through
:class:`~repro.core.config.CacheConfig`:

Quantised keys (``key_mode="quantized"``)
    Centre and epsilon are snapped to a ``10^-quantize_decimals`` grid so
    nearby queries coalesce into shared bucket entries.  Rounding is
    conservative by direction: epsilon rounds *down* for lookup and *up*
    for admission of certified verdicts (uncertified verdicts round
    down), so a certified bucket entry always covers at least the radius
    it claims.  Crucially, rounding never *decides* an answer — every
    bucket entry carries its exact region in the payload, and a
    non-verbatim serve must pass the exact dominance check below.  A
    colliding bucket whose payload does not dominate the query falls
    through to a miss.

Dominance index (``dominance=True``)
    A per-(model-fingerprint, config-signature) in-memory index over the
    cache directory (:class:`~repro.engine.cache_dominance.DominanceIndex`)
    groups entries by (target, input dimension): certified entries are
    held as stacked clipped-interval bounds sorted by epsilon descending,
    falsifying (misclassified-centre) entries as stacked points.  A
    lookup can then answer ``VERIFIED`` from *any* cached certified
    superset region, and ``MISCLASSIFIED`` from *any* cached falsifying
    point inside the query region — answering queries that were never
    literally asked.  Falsifying points are consulted first (fail-closed:
    a region containing a known misclassified input must never be served
    a certificate that another, larger entry happens to hold).

LRU tier (``lru_entries``/``lru_bytes``)
    An in-memory payload cache (:class:`~repro.engine.cache_lru.LRUTier`)
    over the on-disk store, so hot models answer repeat traffic without
    touching disk.  Dominance-derived answers are *materialised* into the
    LRU under the query's own key, turning a derived answer into an O(1)
    replay.

Soundness discipline
--------------------
Every non-verbatim answer is decided by an exact payload-level check on
the entry's recorded region — per-dimension clipped-interval containment
for certificates, point membership for falsifications — never by key
equality alone.  Entries are version-stamped
(:func:`config_fingerprint`, which includes ``repro.__version__``), and
only payloads carrying the full region *and* calibration fields
(``stage``, ``peak_error_terms`` — the post-1.5.0 shape) may answer a
query they were not literally asked; legacy payloads fall through to a
miss instead of failing downstream report aggregation.  The property
battery in ``tests/engine/test_cache_dominance.py`` pins all of this
against the cacheless :class:`~repro.engine.craft.BatchedCraft`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
import uuid
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import CacheConfig, CraftConfig
from repro.core.results import VerificationOutcome, VerificationResult
from repro.mondeq.model import MonDEQ


def weights_hash(model: MonDEQ) -> str:
    """A stable hexadecimal digest of the model's parameters."""
    digest = hashlib.sha256()
    for name in sorted(model.parameters()):
        array = np.ascontiguousarray(model.parameters()[name], dtype=float)
        digest.update(name.encode())
        digest.update(array.tobytes())
    digest.update(repr(float(model.monotonicity)).encode())
    return digest.hexdigest()


def _config_signature(config: CraftConfig) -> str:
    """The configuration fields that influence a certification verdict.

    The library version is part of the signature: an upgrade that changes
    certification behaviour (solver numerics, membership tolerances, …)
    must invalidate on-disk verdicts by construction.  ``config.cache`` is
    deliberately *not* part of the signature — key mode, LRU bounds and
    the dominance switch change how verdicts are stored and found, never
    what they are, so switching cache layout must not invalidate entries.
    """
    import repro  # late import: repro/__init__ imports this module's package

    fields = (
        repro.__version__,
        config.domain, config.domains, config.solver1, config.alpha1, config.solver2,
        config.alpha2, tuple(config.alpha2_grid), config.expansion,
        config.w_mul, config.w_add, config.expansion_mul_growth,
        config.expansion_add_growth, config.expansion_growth_every,
        config.slope_optimization, tuple(config.slope_candidates_reduced),
        tuple(config.slope_candidates_reference), config.slope_margin_threshold,
        config.same_iteration_containment, config.use_box_component,
        config.tighten_max_iterations, config.tighten_patience,
        config.tighten_consolidate_every,
        config.consolidation_basis, config.shared_basis_max_inflation,
        config.stage_phase_one_budgets,
        config.concrete_tol, config.concrete_max_iterations,
        config.contraction.max_iterations, config.contraction.consolidate_every,
        config.contraction.basis_recompute_every, config.contraction.history_size,
        config.contraction.abort_width,
        # Acceleration changes which phase-one exit a query takes (and the
        # iteration counters stored with the verdict), so every knob that
        # can flip a proposal decision participates in the signature even
        # though the verdicts themselves provably agree.
        config.acceleration.enabled, config.acceleration.window,
        config.acceleration.safeguard_ratio, config.acceleration.margin,
        config.acceleration.rate_cap, config.acceleration.max_factor,
        config.acceleration.max_proposals, config.acceleration.stages,
        # Backend policy: numpy and torch agree on every verdict by the
        # cross-backend parity contract, but they are not bit-identical
        # executions, and a float32 search policy can change which
        # phase-one iterate a verdict is certified from — so entries
        # written under one backend triple never serve another.
        config.backend, config.backend_device, config.backend_search_dtype,
    )
    return repr(fields)


def config_fingerprint(config: CraftConfig) -> str:
    """Version stamp persisted inside every cache entry.

    The exact query *key* already hashes the configuration, so a
    mismatched config cannot hit by key alone; the stamp additionally
    travels inside the payload so an entry can prove which configuration
    (and library version) wrote it.  Under quantised keying and dominance
    lookups the key no longer pins the exact query, so the stamp — and
    the region fields stored alongside it — carry the entire burden of
    proof, and corruption or key-collision scenarios fail closed.
    """
    return hashlib.sha256(_config_signature(config).encode()).hexdigest()


# ----------------------------------------------------------------------
# Query identity and quantisation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RegionQuery:
    """One certification query's region identity, as the cache sees it.

    Mirrors the (:class:`~repro.verify.specs.LinfBall`,
    :class:`~repro.verify.specs.ClassificationSpec`) pair of a robustness
    query, reduced to the fields that identify the region and target —
    the payload-level dominance checks operate on this type.
    """

    center: np.ndarray
    epsilon: float
    target: int
    clip_min: Optional[float] = 0.0
    clip_max: Optional[float] = 1.0

    def __post_init__(self):
        object.__setattr__(
            self, "center",
            np.ascontiguousarray(self.center, dtype=float).reshape(-1),
        )
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "target", int(self.target))

    @classmethod
    def from_ball(cls, ball, spec) -> "RegionQuery":
        """Build from the engine's (LinfBall, ClassificationSpec) pair."""
        return cls(
            center=ball.center, epsilon=ball.epsilon, target=spec.target,
            clip_min=ball.clip_min, clip_max=ball.clip_max,
        )

    @property
    def dim(self) -> int:
        return self.center.shape[0]

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Element-wise bounds of the clipped ball.

        Must mirror :meth:`repro.verify.specs.LinfBall.bounds` exactly —
        dominance is decided on the region the engine actually certifies,
        which is the *clipped* ball.
        """
        lower = self.center - self.epsilon
        upper = self.center + self.epsilon
        if self.clip_min is not None:
            lower = np.maximum(lower, self.clip_min)
            upper = np.maximum(upper, self.clip_min)
        if self.clip_max is not None:
            lower = np.minimum(lower, self.clip_max)
            upper = np.minimum(upper, self.clip_max)
        return lower, upper

    def contains(self, other: "RegionQuery") -> bool:
        """Whether this (clipped) region is a superset of ``other``'s,
        for the same classification target."""
        if self.dim != other.dim or self.target != other.target:
            return False
        self_lower, self_upper = self.bounds()
        other_lower, other_upper = other.bounds()
        return bool(
            np.all(self_lower <= other_lower) and np.all(other_upper <= self_upper)
        )

    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=float).reshape(-1)
        if point.shape[0] != self.dim:
            return False
        lower, upper = self.bounds()
        return bool(np.all(lower <= point) and np.all(point <= upper))

    def same_region(self, other: "RegionQuery") -> bool:
        """Bit-exact region + target equality (the verbatim-replay test)."""
        return (
            self.dim == other.dim
            and self.target == other.target
            and self.epsilon == other.epsilon
            and self.clip_min == other.clip_min
            and self.clip_max == other.clip_max
            and self.center.tobytes() == other.center.tobytes()
        )


def snap_center(center: np.ndarray, decimals: int) -> np.ndarray:
    """Snap a centre to the quantisation grid.

    ``+ 0.0`` normalises any ``-0.0`` the rounding produces — its
    ``tobytes()`` differs from ``0.0``'s, which would split one grid cell
    into two buckets.
    """
    return np.round(np.ascontiguousarray(center, dtype=float), decimals) + 0.0


def quantize_epsilon(epsilon: float, decimals: int, mode: str) -> float:
    """Snap an epsilon to the grid, rounding in the requested direction.

    ``mode="floor"`` is the lookup direction, ``"ceil"`` the admission
    direction for certified verdicts.  A radius already on the grid maps
    to itself in both directions (detected with a relative tolerance so
    binary artefacts like ``0.05 * 1000 == 50.000000000000007`` do not
    push an on-grid value into the next bucket).  Bucket values only pick
    which key coalesces which traffic — soundness never depends on them.
    """
    if mode not in ("floor", "ceil"):
        raise ValueError(f"mode must be 'floor' or 'ceil', got {mode!r}")
    scale = 10.0 ** int(decimals)
    scaled = float(epsilon) * scale
    nearest = round(scaled)
    if abs(scaled - nearest) <= 1e-9 * max(1.0, abs(scaled)):
        return nearest / scale
    ticks = math.floor(scaled) if mode == "floor" else math.ceil(scaled)
    return ticks / scale


# ----------------------------------------------------------------------
# Payload (de)serialisation shared by every tier
# ----------------------------------------------------------------------

#: Calibration fields of the post-1.5.0 payload shape.  Entries missing
#: them (pre-1.5.0 writers) may still replay verbatim by exact key, but
#: must never answer a query they were not literally asked — the report
#: aggregation reads these fields from dominance serves.
CALIBRATION_KEYS = ("stage", "peak_error_terms")

#: Region-identity fields a payload must carry to participate in any
#: payload-level dominance decision.
REGION_KEYS = ("center", "epsilon", "target")


def payload_region(payload: Dict) -> Optional[RegionQuery]:
    """The exact query region recorded in a payload, or ``None``.

    Returns ``None`` for legacy payloads (no region fields) and for any
    malformed shape — callers treat that as "this entry cannot prove it
    dominates anything".
    """
    if not isinstance(payload, dict):
        return None
    if any(payload.get(key) is None for key in REGION_KEYS):
        return None
    try:
        query = RegionQuery(
            center=np.asarray(payload["center"], dtype=float),
            epsilon=payload["epsilon"],
            target=payload["target"],
            clip_min=payload.get("clip_min"),
            clip_max=payload.get("clip_max"),
        )
    except (TypeError, ValueError):
        return None
    if query.dim == 0 or not np.all(np.isfinite(query.center)):
        return None
    if not np.isfinite(query.epsilon) or query.epsilon < 0:
        return None
    return query


def payload_supports_dominance(payload: Dict) -> bool:
    """Whether an entry may answer queries it was not literally asked.

    Requires the full region identity plus the calibration fields
    (``stage``, ``peak_error_terms``) the report surfaces read from a
    served verdict.  A pre-1.5.0 payload fails this check and falls
    through to a cache miss instead of KeyError-ing downstream.
    """
    if not isinstance(payload, dict):
        return False
    if not all(key in payload for key in CALIBRATION_KEYS):
        return False
    return payload_region(payload) is not None


def result_from_payload(
    payload: Dict, cache_tier: str = "disk", extra_note: str = ""
) -> VerificationResult:
    """Restore a :class:`VerificationResult` from a cache payload."""
    return VerificationResult(
        outcome=VerificationOutcome(payload["outcome"]),
        contained=bool(payload["contained"]),
        certified=bool(payload["certified"]),
        margin=float(payload["margin"]),
        iterations_phase1=int(payload["iterations_phase1"]),
        iterations_phase2=int(payload["iterations_phase2"]),
        time_seconds=float(payload["time_seconds"]),
        selected_alpha2=payload.get("selected_alpha2"),
        selected_solver2=payload.get("selected_solver2"),
        slope_optimized=bool(payload.get("slope_optimized", False)),
        notes=payload.get("notes", "") + extra_note + " [cached]",
        # The resolving ladder stage travels with the verdict, so a
        # cached escalation-sweep query replays at its final stage
        # without re-climbing the ladder.
        stage=payload.get("stage"),
        cached=True,
        cache_tier=cache_tier,
        peak_error_terms=payload.get("peak_error_terms"),
        # Pre-1.8.0 payloads predate acceleration; default to the
        # unaccelerated encoding rather than failing the replay.
        accelerated=bool(payload.get("accelerated", False)),
        accel_proposals=int(payload.get("accel_proposals", 0)),
    )


def dominance_result_from_payload(payload: Dict, source_key: str) -> VerificationResult:
    """Replay a cached verdict as the answer to a *dominated* query.

    The calibration fields are read by direct indexing: a pre-1.5.0
    payload would KeyError here, which is exactly why every dominance
    path guards with :func:`payload_supports_dominance` first and treats
    legacy entries as misses.  The replayed margin is the *entry's*
    margin — for a certified superset region that is a sound lower bound
    on the subset query's margin.
    """
    base = result_from_payload(
        payload, cache_tier="dominance",
        extra_note=f" [dominance {source_key[:12]}]",
    )
    return replace(
        base, stage=payload["stage"], peak_error_terms=payload["peak_error_terms"]
    )


# ----------------------------------------------------------------------
# On-disk tier
# ----------------------------------------------------------------------


class FixpointCache:
    """Directory-backed cache of certification verdicts.

    One JSON file per key.  Values restore a :class:`VerificationResult`
    without the abstraction elements (which are only needed by the live
    certification path, never by cache consumers).

    The cache is safe for concurrent writers *without file locking*: every
    entry is its own file, written to a writer-unique temporary name and
    published with the atomic ``os.replace`` — readers observe either the
    previous entry or the complete new one, never a torn write.  When a
    ``signature`` (see :func:`config_fingerprint`) is given, entries
    stamped by a different configuration are rejected on load.
    """

    #: Scratch files older than this are presumed orphaned (a worker killed
    #: between writing and publishing) and swept on cache construction; no
    #: live writer holds a scratch file anywhere near this long.
    STALE_TMP_SECONDS = 600.0

    def __init__(self, directory: str, signature: Optional[str] = None):
        self.directory = directory
        self.signature = signature
        os.makedirs(directory, exist_ok=True)
        self._sweep_stale_scratch()

    def _sweep_stale_scratch(self) -> None:
        cutoff = time.time() - self.STALE_TMP_SECONDS
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.directory, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
            except OSError:
                continue

    @staticmethod
    def query_key(
        model_digest: str,
        center: np.ndarray,
        epsilon: float,
        target: int,
        config: CraftConfig,
        clip_min: Optional[float],
        clip_max: Optional[float],
    ) -> str:
        digest = hashlib.sha256()
        digest.update(model_digest.encode())
        digest.update(np.ascontiguousarray(center, dtype=float).tobytes())
        digest.update(repr((float(epsilon), clip_min, clip_max, int(target))).encode())
        digest.update(_config_signature(config).encode())
        return digest.hexdigest()

    @staticmethod
    def quantized_key(
        model_digest: str,
        query: RegionQuery,
        config: CraftConfig,
        decimals: int,
        epsilon_bucket: float,
    ) -> str:
        """Grid-bucket key: snapped centre + a pre-rounded epsilon bucket.

        The ``"quantized/"`` prefix keeps the bucket key space disjoint
        from exact keys, so flipping ``key_mode`` never aliases entries of
        the other mode.
        """
        digest = hashlib.sha256()
        digest.update(b"quantized/")
        digest.update(model_digest.encode())
        digest.update(snap_center(query.center, decimals).tobytes())
        digest.update(
            repr(
                (float(epsilon_bucket), query.clip_min, query.clip_max,
                 int(query.target), int(decimals))
            ).encode()
        )
        digest.update(_config_signature(config).encode())
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load_payload(self, key: str) -> Optional[Dict]:
        """The raw (signature-checked) payload under ``key``, or ``None``."""
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if self.signature is not None and data.get("signature") != self.signature:
            # Version stamp mismatch: the entry was written by a different
            # configuration or library version.  Treat it as a miss so the
            # query is re-certified and the entry overwritten.
            return None
        return data

    def load(self, key: str) -> Optional[VerificationResult]:
        payload = self.load_payload(key)
        if payload is None:
            return None
        return result_from_payload(payload, cache_tier="disk")

    def store(
        self,
        key: str,
        result: VerificationResult,
        query: Optional[RegionQuery] = None,
        model_digest: Optional[str] = None,
    ) -> Dict:
        """Persist a verdict under ``key``; returns the written payload.

        When the exact ``query`` region is given it is recorded in the
        payload — the identity every later dominance or quantised-bucket
        serve is decided against.  Entries stored without it can only
        ever replay verbatim by exact key.
        """
        payload = {
            "outcome": result.outcome.value,
            "contained": result.contained,
            "certified": result.certified,
            # json round-trips -Infinity natively, so -inf margins
            # (misclassified / no-containment queries) survive unchanged.
            "margin": float(result.margin),
            "iterations_phase1": result.iterations_phase1,
            "iterations_phase2": result.iterations_phase2,
            "time_seconds": result.time_seconds,
            "selected_alpha2": result.selected_alpha2,
            "selected_solver2": result.selected_solver2,
            "slope_optimized": result.slope_optimized,
            "notes": result.notes,
            "signature": self.signature,
            "stage": result.stage,
            "peak_error_terms": result.peak_error_terms,
            "accelerated": result.accelerated,
            "accel_proposals": result.accel_proposals,
        }
        if query is not None:
            payload["model_digest"] = model_digest
            payload["center"] = [float(value) for value in query.center]
            payload["epsilon"] = query.epsilon
            payload["target"] = query.target
            payload["clip_min"] = query.clip_min
            payload["clip_max"] = query.clip_max
        path = self._path(key)
        # The temporary name is writer-unique (pid + fresh uuid, so two
        # cache instances or threads in one process cannot collide either);
        # os.replace then publishes atomically on POSIX.
        temporary = f"{path}.{os.getpid()}.{uuid.uuid4().hex[:12]}.tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temporary, path)
        return payload


# ----------------------------------------------------------------------
# The tiered facade the schedulers talk to
# ----------------------------------------------------------------------


@dataclass
class CacheStats:
    """Per-tier hit accounting of one :class:`TieredVerdictCache`."""

    lookups: int = 0
    lru_hits: int = 0
    disk_hits: int = 0
    dominance_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.lookups - self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_row(self) -> Dict:
        return {
            "lookups": self.lookups,
            "lru_hits": self.lru_hits,
            "disk_hits": self.disk_hits,
            "dominance_hits": self.dominance_hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


class TieredVerdictCache:
    """LRU over disk over dominance: the schedulers' cache facade.

    Lookup order per candidate key — in-memory LRU first, then the
    on-disk store (populating the LRU) — then, if no bucket answered,
    the directory-wide dominance index.  Every non-verbatim answer is
    decided by the exact payload-level dominance check; see the module
    docstring for the soundness discipline.
    """

    #: A directory mtime within this window of "now" may share its
    #: timestamp tick with a publish the scan raced past (filesystem
    #: timestamps are coarser than ``st_mtime_ns`` suggests), so such
    #: snapshots are recorded as unstable and the next :meth:`refresh`
    #: rescans regardless.  Stale serves are a soundness concern; an
    #: extra scan of an active directory is only a few syscalls.
    RACY_WINDOW_NS = 50_000_000

    def __init__(
        self,
        directory: str,
        config: CraftConfig,
        model_digest: str,
        cache_config: Optional[CacheConfig] = None,
    ):
        from repro.engine.cache_dominance import DominanceIndex
        from repro.engine.cache_lru import LRUTier

        self.config = config
        self.cache_config = (
            cache_config if cache_config is not None else config.cache
        )
        self.model_digest = model_digest
        self.signature = config_fingerprint(config)
        self.disk = FixpointCache(directory, signature=self.signature)
        # Hot-path precomputation: the config signature and digest bytes
        # are identical for every key this instance ever computes, and a
        # per-sweep snapshot of the on-disk key set turns the disk probe
        # of never-stored keys into a set lookup instead of a stat call.
        self._signature_blob = _config_signature(config).encode()
        self._digest_blob = model_digest.encode()
        #: Directory scans actually performed (observability: staleness
        #: tests assert how often ``refresh`` really walked the directory).
        self.scans = 0
        self._snapshot_mtime_ns = self._stable_mtime_ns(self._dir_mtime_ns())
        self._disk_names = self._list_disk_names()
        self.scans += 1
        self._last_staleness_check = time.monotonic()
        self.lru = (
            LRUTier(
                max_entries=self.cache_config.lru_entries,
                max_bytes=self.cache_config.lru_bytes,
            )
            if self.cache_config.lru_entries > 0
            else None
        )
        self.index = (
            DominanceIndex(
                directory, signature=self.signature, model_digest=model_digest
            )
            if self.cache_config.dominance
            else None
        )
        self.stats = CacheStats()

    @property
    def directory(self) -> str:
        return self.disk.directory

    def _list_disk_names(self) -> set:
        try:
            return set(os.listdir(self.disk.directory))
        except OSError:
            return set()

    def _dir_mtime_ns(self) -> int:
        """The cache directory's mtime, or ``-1`` when unreadable.

        POSIX bumps a directory's mtime on every entry create/rename/
        unlink, and ``FixpointCache.store`` publishes via ``os.replace``
        into this directory — so an unchanged mtime proves no writer
        (this process or any other) published since the last snapshot.
        ``-1`` never equals a real ``st_mtime_ns``, so an unreadable
        directory forces the rescan path (fail open, never stale).
        """
        try:
            return os.stat(self.disk.directory).st_mtime_ns
        except OSError:
            return -1

    def _stable_mtime_ns(self, mtime_ns: int) -> int:
        """``mtime_ns`` if old enough to trust as a snapshot stamp, else
        a sentinel that never matches a real mtime (forcing the next
        :meth:`refresh` to rescan; see :attr:`RACY_WINDOW_NS`)."""
        if mtime_ns != -1 and abs(time.time_ns() - mtime_ns) < self.RACY_WINDOW_NS:
            return -2
        return mtime_ns

    # -- keys ----------------------------------------------------------

    def _exact_key(self, query: RegionQuery) -> str:
        """:meth:`FixpointCache.query_key` with the per-instance constants
        (model digest, config signature) pre-encoded."""
        digest = hashlib.sha256()
        digest.update(self._digest_blob)
        digest.update(query.center.tobytes())
        digest.update(
            repr((query.epsilon, query.clip_min, query.clip_max, query.target)).encode()
        )
        digest.update(self._signature_blob)
        return digest.hexdigest()

    def _quantized_key(self, query: RegionQuery, bucket: float) -> str:
        """:meth:`FixpointCache.quantized_key`, same precomputation."""
        decimals = self.cache_config.quantize_decimals
        digest = hashlib.sha256()
        digest.update(b"quantized/")
        digest.update(self._digest_blob)
        digest.update(snap_center(query.center, decimals).tobytes())
        digest.update(
            repr(
                (float(bucket), query.clip_min, query.clip_max,
                 int(query.target), int(decimals))
            ).encode()
        )
        digest.update(self._signature_blob)
        return digest.hexdigest()

    def candidate_keys(self, query: RegionQuery) -> List[str]:
        """Bucket keys probed for ``query``, most specific first.

        Exact mode probes the single exact key.  Quantised mode probes
        the floor-rounded epsilon bucket (the conservative lookup
        direction) and, when distinct, the ceil bucket — where certified
        admissions land — so a literal replay always re-finds its entry.
        """
        if self.cache_config.key_mode == "exact":
            return [self._exact_key(query)]
        decimals = self.cache_config.quantize_decimals
        floor_bucket = quantize_epsilon(query.epsilon, decimals, "floor")
        keys = [self._quantized_key(query, floor_bucket)]
        ceil_bucket = quantize_epsilon(query.epsilon, decimals, "ceil")
        if ceil_bucket != floor_bucket:
            keys.append(self._quantized_key(query, ceil_bucket))
        return keys

    def admission_key(self, query: RegionQuery, result: VerificationResult) -> str:
        """The bucket a fresh verdict is admitted under.

        Quantised admissions round epsilon *up* for certified verdicts
        and *down* otherwise, so the two verdict families of nearby
        queries land in different buckets and certified entries are found
        by the ceil probe of any same-cell lookup.
        """
        if self.cache_config.key_mode == "exact":
            return self._exact_key(query)
        decimals = self.cache_config.quantize_decimals
        bucket = quantize_epsilon(
            query.epsilon, decimals, "ceil" if result.certified else "floor"
        )
        return self._quantized_key(query, bucket)

    # -- lookup --------------------------------------------------------

    def refresh(self, force: bool = False) -> bool:
        """Ingest entries other writers published since the last call.

        Re-snapshots the on-disk key set and the dominance index —
        lookups between refreshes see entries at the snapshot's freshness
        (one ``listdir`` per sweep instead of a stat per probed key), the
        same per-sweep granularity as the dominance index.

        The scan is mtime-gated: the directory is ``stat``-ed first and,
        when its mtime has not moved since the snapshot was taken, the
        ``listdir`` + index rescan are skipped entirely — so the
        schedulers' refresh-per-sweep habit costs one stat on an idle
        directory, and a long-lived service process can refresh per
        *epoch* (:attr:`CacheConfig.refresh_seconds`) without going stale
        across sweeps from other workers.  Returns whether a scan
        actually ran.  ``force=True`` bypasses the gate (used by tests
        and recovery paths; correctness never requires it — the mtime is
        read *before* the scan, so a write racing the ``listdir`` moves
        the mtime past the snapshot and triggers the next refresh).
        """
        mtime_ns = self._dir_mtime_ns()
        if not force and mtime_ns == self._snapshot_mtime_ns and mtime_ns != -1:
            self._last_staleness_check = time.monotonic()
            return False
        self._snapshot_mtime_ns = self._stable_mtime_ns(mtime_ns)
        self._disk_names = self._list_disk_names()
        self.scans += 1
        if self.index is not None:
            self.index.refresh()
        self._last_staleness_check = time.monotonic()
        return True

    def _maybe_auto_refresh(self) -> None:
        """The long-lived-process staleness bound: when
        ``cache_config.refresh_seconds`` is set and the snapshot is older
        than the bound, re-check the directory (one stat; a rescan only
        when the mtime actually moved)."""
        bound = self.cache_config.refresh_seconds
        if bound is None:
            return
        if time.monotonic() - self._last_staleness_check >= bound:
            self.refresh()

    def lookup(self, query: RegionQuery) -> Optional[VerificationResult]:
        """Answer ``query`` from any tier, or ``None`` on a miss."""
        self._maybe_auto_refresh()
        self.stats.lookups += 1
        for key in self.candidate_keys(query):
            lru_payload = self.lru.get(key) if self.lru is not None else None
            if lru_payload is not None:
                result = self._answer_from_payload(lru_payload, query, "lru")
                if result is not None:
                    return result
            # An LRU payload that cannot answer (a materialised derived
            # entry, or a bucket overwrite) must not shadow the on-disk
            # entry sharing its key: fall through to the disk tier.
            if f"{key}.json" not in self._disk_names:
                continue
            payload = self.disk.load_payload(key)
            if payload is None:
                continue
            if self.lru is not None and lru_payload is None:
                self.lru.put(key, payload)
            result = self._answer_from_payload(payload, query, "disk")
            if result is not None:
                return result
        if self.index is not None:
            served = self.index.query(query)
            if served is not None:
                source_key, payload = served
                self.stats.dominance_hits += 1
                result = dominance_result_from_payload(payload, source_key)
                self._materialise(query, payload, source_key)
                return result
        self.stats.misses += 1
        return None

    def _answer_from_payload(
        self, payload: Dict, query: RegionQuery, tier: str
    ) -> Optional[VerificationResult]:
        entry = payload_region(payload)
        exact = (entry is not None and entry.same_region(query)) or (
            # Exact keys pin the whole query, so a legacy payload without
            # region fields still replays verbatim (the pre-1.6 contract).
            entry is None and self.cache_config.key_mode == "exact"
        )
        if exact:
            if payload.get("derived"):
                # A materialised dominance answer replaying from the LRU
                # is still accounted as a dominance serve.
                self.stats.dominance_hits += 1
                return result_from_payload(payload, cache_tier="dominance")
            if tier == "lru":
                self.stats.lru_hits += 1
            else:
                self.stats.disk_hits += 1
            return result_from_payload(payload, cache_tier=tier)
        # A quantised bucket collision: the entry answers only if its
        # recorded region provably dominates the query.  Derived
        # (materialised) payloads are excluded: their recorded centre is
        # the dominated query's centre, not a verified falsifying
        # witness, so beyond verbatim replay they prove nothing — the
        # source facts stay on disk and in the index for real dominance.
        if payload.get("derived"):
            return None
        if entry is None or not payload_supports_dominance(payload):
            return None
        if entry.target != query.target or entry.dim != query.dim:
            return None
        if payload.get(
            "outcome"
        ) == VerificationOutcome.MISCLASSIFIED.value and query.contains_point(
            np.asarray(payload["center"], dtype=float)
        ):
            self.stats.dominance_hits += 1
            return dominance_result_from_payload(payload, "bucket")
        if payload.get("certified") and entry.contains(query):
            self.stats.dominance_hits += 1
            return dominance_result_from_payload(payload, "bucket")
        return None

    def _materialise(
        self, query: RegionQuery, source_payload: Dict, source_key: str
    ) -> None:
        """Record a dominance-derived answer in the LRU under the query's
        own key, so the next replay of this never-computed query is O(1)
        and disk-free.  Derived entries stay in memory only — the disk
        keeps computed facts."""
        if self.lru is None:
            return
        derived = dict(source_payload)
        derived["center"] = [float(value) for value in query.center]
        derived["epsilon"] = query.epsilon
        derived["target"] = query.target
        derived["clip_min"] = query.clip_min
        derived["clip_max"] = query.clip_max
        derived["derived"] = True
        derived["notes"] = (
            source_payload.get("notes", "") + f" [dominance {source_key[:12]}]"
        )
        self.lru.put(self.candidate_keys(query)[0], derived)

    # -- admission -----------------------------------------------------

    def admit(self, query: RegionQuery, result: VerificationResult) -> str:
        """Persist a freshly computed verdict; returns the bucket key."""
        key = self.admission_key(query, result)
        payload = self.disk.store(
            key, result, query=query, model_digest=self.model_digest
        )
        self._disk_names.add(f"{key}.json")
        if self.lru is not None:
            self.lru.put(key, payload)
        if self.index is not None:
            self.index.admit(key, payload)
        return key


def build_verdict_cache(
    directory: str, config: CraftConfig, model: MonDEQ
) -> TieredVerdictCache:
    """The tiered cache for one (model, configuration) pair."""
    return TieredVerdictCache(directory, config, weights_hash(model))
