"""The domain-generic stacking layer of the batched certification engine.

PR 1 vectorised the CH-Zonotope domain only; this module generalises the
idea into a small *protocol* every batched domain implements, so the
batched Craft driver (:mod:`repro.engine.craft`), the batch scheduler and
the sharded scheduler dispatch on ``CraftConfig.domain`` instead of
hard-coding one element type.  Three implementations exist:

* :class:`~repro.engine.batched_chzonotope.BatchedCHZonotope` — the
  CH-Zonotope stack of PR 1 (centres, generator stacks, Box radii).
* :class:`BatchedZonotope` — plain zonotopes (Table 4 "No Box component"):
  a :class:`BatchedCHZonotope` whose Box component is identically zero and
  whose ReLU transformer always writes fresh error terms into generator
  columns, mirroring :meth:`repro.domains.zonotope.Zonotope.relu`.
* :class:`BatchedBox` — intervals (Table 4 "No Zono component"): two
  ``(B, n)`` bound arrays, exact clipping ReLU, O(B·n) containment.

Every implementation obeys the engine's **parity contract**: sample ``i``
of any batched transformer equals the sequential transformer applied to
sample ``i`` of the operands, up to floating-point round-off and zero
generator columns, so verdicts are independent of batch composition.  The
sequential counterpart of each domain is the :class:`~repro.core.contraction.DomainOps`
bundle of :func:`repro.core.contraction.domain_ops_for`.

All stacks hold their arrays on a pluggable
:class:`~repro.backend.base.ArrayBackend` (numpy default, torch optional)
inferred from the arrays themselves; ``to_backend`` is the one explicit
host↔device admission point and the driver-facing diagnostics
(``concretize_bounds``, ``width``, ``contains``) return numpy — identity
(no copy) on the numpy backend.  See ``docs/backends.md``.

Use :func:`batched_domain_for` to resolve a ``CraftConfig.domain`` name;
unknown names raise :class:`~repro.exceptions.ConfigurationError` — the
engine never falls back to the sequential loop silently.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, Type, runtime_checkable

import numpy as np

from repro.backend import backend_of, batched_default_slopes
from repro.backend.base import ArrayBackend
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.engine.batched_chzonotope import BatchedCHZonotope
from repro.exceptions import ConfigurationError, DimensionMismatchError, DomainError


@runtime_checkable
class BatchedDomain(Protocol):
    """Structural interface the batched Craft driver programs against.

    A batched domain is a stack of ``B`` abstract elements of one domain
    sharing a common dimension ``n``.  The driver requires:

    * **Conversions** — ``from_elements(seq)`` stacks sequential elements,
      ``from_points(points)`` builds a degenerate stack, ``element(i)``
      extracts one sample back into the sequential domain, ``select(rows)``
      gathers a sub-batch (per-sample early exit), ``to_backend(xp)``
      adopts the stack onto an array backend (the admission boundary).
    * **Stacked transformers** — ``affine(weight, bias)`` with a shared
      ``(m, n)`` or per-sample ``(B, m, n)`` weight, ``relu(slopes,
      box_new_errors, pass_through)``, ``sum(other)`` (Minkowski sum), and
      ``relu_slopes(delta)`` for slope optimisation.  Domains without a
      notion of ``box_new_errors``/``slopes`` accept and ignore them, the
      same way their sequential transformer does.
    * **Containment/consolidation hooks** — ``consolidate(basis, w_mul,
      w_add)`` returning a stack usable as the *outer* operand of
      ``contains`` (``basis`` may be a per-sample ``(B, n, n)`` stack or
      one shared ``(n, n)`` basis); ``contains(other)`` returning
      per-sample ``(B,)`` soundness flags; ``pca_basis()`` returning the
      consolidation basis stack or ``None`` when the domain has no basis
      (Box); ``shared_pca_basis(method)`` returning one pooled ``(n, n)``
      basis for the whole stack (or ``None`` for basis-free domains) —
      the shared-basis consolidation mode.  Both basis hooks accept
      ``search=True`` for the float32 search-dtype policy (basis *fitting*
      may be downcast; containment never is).
    * **Geometry accessors** — ``concretize_bounds()``, ``width``,
      ``mean_width``, ``max_width``, ``batch_size``, ``dim``, ``xp``.
    """

    # Conversions -------------------------------------------------------
    @classmethod
    def from_elements(cls, elements: Sequence) -> "BatchedDomain": ...
    @classmethod
    def from_points(cls, points: np.ndarray) -> "BatchedDomain": ...
    def element(self, index: int): ...
    def select(self, indices) -> "BatchedDomain": ...
    def to_backend(self, backend: ArrayBackend) -> "BatchedDomain": ...

    # Stacked transformers ---------------------------------------------
    def affine(self, weight, bias=None) -> "BatchedDomain": ...
    def relu(self, slopes=None, box_new_errors=True, pass_through=None) -> "BatchedDomain": ...
    def sum(self, other) -> "BatchedDomain": ...
    def relu_slopes(self, slope_delta: float): ...

    # Containment / consolidation hooks --------------------------------
    def consolidate(self, basis=None, w_mul: float = 0.0, w_add: float = 0.0) -> "BatchedDomain": ...
    def contains(self, other, tol: float = 1e-9) -> np.ndarray: ...
    def pca_basis(self, search: bool = False): ...
    def shared_pca_basis(self, method: str = "auto", search: bool = False): ...

    # Geometry ----------------------------------------------------------
    def concretize_bounds(self) -> Tuple[np.ndarray, np.ndarray]: ...
    @property
    def batch_size(self) -> int: ...
    @property
    def dim(self) -> int: ...
    @property
    def width(self) -> np.ndarray: ...
    @property
    def mean_width(self) -> np.ndarray: ...
    @property
    def max_width(self) -> np.ndarray: ...
    @property
    def xp(self) -> ArrayBackend: ...


class BatchedBox:
    """A stack of ``B`` intervals ``[lower_i, upper_i]`` in R^n.

    Mirrors :class:`repro.domains.interval.Interval` transformer by
    transformer; consolidation applies the Eq. 10 expansion to the radii
    (through the same centre/radius reconstruction the sequential
    ``DomainOps`` use, so bounds agree bit for bit) and the containment
    check is the exact O(n) inclusion test.
    """

    __slots__ = ("_xp", "_lower", "_upper")

    def __init__(self, lower, upper):
        xp = backend_of(lower)
        lower = xp.asarray(lower)
        upper = xp.asarray(upper)
        if lower.ndim != 2 or tuple(lower.shape) != tuple(upper.shape):
            raise DomainError(
                f"bounds must share a (batch, dim) shape, got "
                f"{tuple(lower.shape)} / {tuple(upper.shape)}"
            )
        if bool(xp.any(lower > upper + 1e-12)):
            raise DomainError("Interval lower bounds must not exceed upper bounds")
        self._xp = xp
        self._lower = lower
        self._upper = xp.maximum(upper, lower)

    # ------------------------------------------------------------------
    # Conversions to and from sequential elements
    # ------------------------------------------------------------------

    @classmethod
    def from_elements(cls, elements: Sequence[Interval]) -> "BatchedBox":
        elements = list(elements)
        if not elements:
            raise DomainError("from_elements requires at least one element")
        dim = elements[0].dim
        if any(element.dim != dim for element in elements):
            raise DimensionMismatchError("all elements must share the same dimension")
        bounds = [element.concretize_bounds() for element in elements]
        return cls(np.stack([b[0] for b in bounds]), np.stack([b[1] for b in bounds]))

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BatchedBox":
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return cls(points, points.copy())

    def element(self, index: int) -> Interval:
        return Interval(
            self._xp.to_numpy(self._lower[index]), self._xp.to_numpy(self._upper[index])
        )

    def to_elements(self) -> List[Interval]:
        return [self.element(index) for index in range(self.batch_size)]

    def select(self, indices) -> "BatchedBox":
        indices = self._xp.asindex(indices)
        return BatchedBox(self._lower[indices], self._upper[indices])

    def to_backend(self, backend: ArrayBackend) -> "BatchedBox":
        """This stack adopted by ``backend`` (``self`` when already there)."""
        if backend.is_backend_array(self._lower) and getattr(
            self._xp, "device", "cpu"
        ) == getattr(backend, "device", "cpu"):
            return self
        return BatchedBox(
            backend.asarray(self._xp.to_numpy(self._lower)),
            backend.asarray(self._xp.to_numpy(self._upper)),
        )

    # ------------------------------------------------------------------
    # Representation accessors
    # ------------------------------------------------------------------

    @property
    def xp(self) -> ArrayBackend:
        """The array backend holding this stack."""
        return self._xp

    @property
    def batch_size(self) -> int:
        return self._lower.shape[0]

    @property
    def dim(self) -> int:
        return self._lower.shape[1]

    @property
    def lower(self):
        return self._xp.copy(self._lower)

    @property
    def upper(self):
        return self._xp.copy(self._upper)

    @property
    def center(self):
        return 0.5 * (self._lower + self._upper)

    @property
    def radius(self):
        return 0.5 * (self._upper - self._lower)

    def concretize_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        xp = self._xp
        return xp.to_numpy(xp.copy(self._lower)), xp.to_numpy(xp.copy(self._upper))

    @property
    def width(self) -> np.ndarray:
        return self._xp.to_numpy(self._upper - self._lower)

    @property
    def mean_width(self) -> np.ndarray:
        return self.width.mean(axis=1)

    @property
    def max_width(self) -> np.ndarray:
        return self.width.max(axis=1)

    # ------------------------------------------------------------------
    # Abstract transformers (mirroring Interval)
    # ------------------------------------------------------------------

    def affine(self, weight, bias=None) -> "BatchedBox":
        """Sound interval affine transformer, batched.

        As in the sequential domain: the new centre is the affine image of
        the centre and the new radius is ``|W| @ radius``.  ``weight`` is a
        shared ``(m, n)`` matrix or a per-sample ``(B, m, n)`` stack.
        """
        xp = self._xp
        weight = xp.asarray(weight)
        center = self.center
        radius = self.radius
        if weight.ndim == 2:
            if weight.shape[1] != self.dim:
                raise DimensionMismatchError(
                    f"weight must have shape (m, {self.dim}), got {tuple(weight.shape)}"
                )
            new_center = center @ xp.transpose(weight, (1, 0))
            new_radius = radius @ xp.transpose(xp.abs(weight), (1, 0))
        elif weight.ndim == 3:
            if weight.shape[0] != self.batch_size or weight.shape[2] != self.dim:
                raise DimensionMismatchError(
                    f"weight must have shape ({self.batch_size}, m, {self.dim}), "
                    f"got {tuple(weight.shape)}"
                )
            new_center = xp.matmul(weight, center[:, :, None])[:, :, 0]
            new_radius = xp.matmul(xp.abs(weight), radius[:, :, None])[:, :, 0]
        else:
            raise DimensionMismatchError("weight must be a 2-d or 3-d array")
        if bias is not None:
            bias = xp.asarray(bias).reshape(-1)
            if bias.shape[0] != new_center.shape[1]:
                raise DimensionMismatchError(
                    f"bias must have dimension {new_center.shape[1]}, got {bias.shape[0]}"
                )
            new_center = new_center + bias[None, :]
        return BatchedBox(new_center - new_radius, new_center + new_radius)

    def relu(
        self,
        slopes=None,
        box_new_errors: bool = True,
        pass_through=None,
    ) -> "BatchedBox":
        """Exact interval ReLU (clipping), batched.

        ``slopes`` and ``box_new_errors`` are accepted for protocol
        compatibility and ignored — clipping the bounds is both sound and
        optimal for a box, exactly as in the sequential transformer.
        """
        del slopes, box_new_errors
        xp = self._xp
        lower = xp.maximum(self._lower, 0.0)
        upper = xp.maximum(self._upper, 0.0)
        if pass_through is not None:
            pass_through = xp.asarray_bool(pass_through)
            lower = xp.where(pass_through[None, :], self._lower, lower)
            upper = xp.where(pass_through[None, :], self._upper, upper)
        return BatchedBox(lower, upper)

    def sum(self, other: "BatchedBox") -> "BatchedBox":
        other = self._coerce(other)
        return BatchedBox(self._lower + other._lower, self._upper + other._upper)

    def scale(self, factor: float) -> "BatchedBox":
        factor = float(factor)
        lo = factor * self._lower
        hi = factor * self._upper
        return BatchedBox(self._xp.minimum(lo, hi), self._xp.maximum(lo, hi))

    def translate(self, offset) -> "BatchedBox":
        offset = self._xp.asarray(offset)
        return BatchedBox(self._lower + offset, self._upper + offset)

    def dilate(self, factors) -> "BatchedBox":
        """Scale each interval about its own centre by a per-sample factor >= 1.

        Matches ``Interval.from_center_radius(center, radius * f)`` in the
        sequential ``DomainOps.dilate`` bit for bit, so the batched
        acceleration proposer makes identical candidate enclosures.
        """
        xp = self._xp
        factors = xp.asarray(factors)
        if tuple(factors.shape) != (self.batch_size,):
            raise DomainError(
                f"factors must have shape ({self.batch_size},), got {tuple(factors.shape)}"
            )
        if bool(xp.any(factors < 1.0)):
            raise DomainError("dilation factors must be >= 1")
        center = 0.5 * (self._lower + self._upper)
        radius = 0.5 * (self._upper - self._lower) * factors[:, None]
        return BatchedBox(center - radius, center + radius)

    def relu_slopes(self, slope_delta: float):
        """Minimum-area slopes shifted by ``slope_delta``.

        The interval ReLU ignores slopes, but the shared step driver asks
        for them whenever slope optimisation is active; computing them the
        same way as the sequential step keeps the code paths aligned.
        """
        xp = self._xp
        return xp.clip(
            batched_default_slopes(xp, self._lower, self._upper) + slope_delta, 0.0, 1.0
        )

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(
            self._xp.to_numpy(self._lower)[:, None, :],
            self._xp.to_numpy(self._upper)[:, None, :],
            size=(self.batch_size, count, self.dim),
        )

    # ------------------------------------------------------------------
    # Containment / consolidation hooks
    # ------------------------------------------------------------------

    def consolidate(
        self,
        basis=None,
        w_mul: float = 0.0,
        w_add: float = 0.0,
    ) -> "BatchedBox":
        """Expansion step of Eq. 10 on the radii (boxes are always proper).

        Mirrors the sequential ``DomainOps`` arithmetic exactly — the
        bounds are reconstructed from centre and expanded radius so that a
        zero-expansion consolidation produces bit-identical bounds on both
        engine paths.  ``basis`` is accepted and ignored (a box has no
        error basis).
        """
        del basis
        if w_mul < 0 or w_add < 0:
            raise DomainError("expansion parameters must be non-negative")
        center = self.center
        radius = (1.0 + w_mul) * self.radius + w_add
        return BatchedBox(center - radius, center + radius)

    def pca_basis(self, search: bool = False):
        """Boxes carry no error basis; the driver skips basis bookkeeping."""
        del search
        return None

    def shared_pca_basis(self, method: str = "auto", search: bool = False):
        """Boxes carry no error basis in shared mode either."""
        del method, search
        return None

    def contains(self, other: "BatchedBox", tol: float = 1e-9) -> np.ndarray:
        """Exact per-sample inclusion flags, shape ``(B,)``.

        Proof-bearing: evaluated on the backend in float64, never the
        search dtype; only the flag vector crosses to the host.
        """
        other = self._coerce(other)
        xp = self._xp
        inside = (other._lower >= self._lower - tol) & (other._upper <= self._upper + tol)
        return xp.to_numpy(xp.all(inside, axis=1))

    def containment_margin(self, other: "BatchedBox") -> np.ndarray:
        """Per-sample element-wise inclusion ratios (≤ 1 means contained)."""
        other = self._coerce(other)
        xp = self._xp
        radius = xp.maximum(self.radius, 1e-300)
        offset = xp.abs(other.center - self.center)
        return xp.to_numpy((offset + other.radius) / radius)

    # ------------------------------------------------------------------
    # Misc utilities
    # ------------------------------------------------------------------

    def compress(self) -> "BatchedBox":
        """Boxes have constant representation size; nothing to compress."""
        return self

    def _coerce(self, other: "BatchedBox") -> "BatchedBox":
        if not isinstance(other, BatchedBox):
            raise DomainError(f"expected a BatchedBox, got {type(other).__name__}")
        if other.batch_size != self.batch_size or other.dim != self.dim:
            raise DimensionMismatchError(
                f"batch/dimension mismatch: ({self.batch_size}, {self.dim}) vs "
                f"({other.batch_size}, {other.dim})"
            )
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BatchedBox(batch={self.batch_size}, dim={self.dim})"


class BatchedZonotope(BatchedCHZonotope):
    """A stack of ``B`` plain zonotopes ``{ a_i + A_i nu }`` (zero Box part).

    Implements the Table 4 "No Box component" domain against the batched
    protocol: the representation is a :class:`BatchedCHZonotope` whose Box
    radii are identically zero, and the ReLU transformer *always* writes
    fresh error terms into generator columns — per-sample identical to
    :meth:`repro.domains.zonotope.Zonotope.relu`.  Consolidation and the
    Theorem 4.2 containment check are inherited unchanged (with zero Box
    radii they reduce to the plain-zonotope forms the sequential
    ``domain_ops_for("zonotope")`` bundle computes through its CH-Zonotope
    lift).
    """

    __slots__ = ()

    def __init__(self, center, generators=None, box=None):
        super().__init__(center, generators, box)
        if bool(self._xp.any(self._box > 0)):
            raise DomainError("BatchedZonotope carries no Box component")

    @classmethod
    def from_elements(cls, elements: Sequence) -> "BatchedZonotope":
        """Stack plain zonotopes (or zero-Box CH-Zonotopes)."""
        elements = list(elements)
        if not elements:
            raise DomainError("from_elements requires at least one element")
        lifted: List[Zonotope] = []
        for element in elements:
            if isinstance(element, CHZonotope):
                element = element.to_zonotope()
            if not isinstance(element, Zonotope):
                raise DomainError(
                    f"expected Zonotope elements, got {type(element).__name__}"
                )
            lifted.append(element)
        dim = lifted[0].dim
        if any(element.dim != dim for element in lifted):
            raise DimensionMismatchError("all elements must share the same dimension")
        k = max(element.num_generators for element in lifted)
        centers = np.stack([element.center for element in lifted])
        generators = np.zeros((len(lifted), dim, k))
        for index, element in enumerate(lifted):
            generators[index, :, : element.num_generators] = element.generators
        return cls(centers, generators, None)

    def element(self, index: int) -> Zonotope:
        """The ``index``-th sample as a sequential :class:`Zonotope`."""
        generators = self._xp.to_numpy(self._generators[index])
        keep = np.abs(generators).sum(axis=0) > 0
        return Zonotope(self._xp.to_numpy(self._center[index]), generators[:, keep])

    def relu(
        self,
        slopes=None,
        box_new_errors: bool = True,
        pass_through=None,
    ) -> "BatchedZonotope":
        """Zonotope ReLU: fresh error terms become generator columns.

        ``box_new_errors`` is accepted for protocol compatibility and
        ignored — a plain zonotope has no Box component to write into,
        matching the sequential :meth:`Zonotope.relu`.
        """
        del box_new_errors
        return super().relu(slopes=slopes, box_new_errors=False, pass_through=pass_through)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BatchedZonotope(batch={self.batch_size}, dim={self.dim}, "
            f"k={self.num_generators})"
        )


class BatchedParallelotope(BatchedZonotope):
    """A stack of ``B`` order-bounded zonotopes (the parallelotope pipeline).

    The ladder rung between :class:`BatchedZonotope` and
    :class:`BatchedCHZonotope`: affine and Minkowski-sum transformers are
    the plain-zonotope ones, and the ReLU transformer immediately reduces
    its result to the enclosing PCA-aligned parallelotope stack (Amato &
    Scozzari 2012) via the Theorem 4.1 consolidation with zero expansion —
    so the error-term count is reset to ``dim`` after every solver step
    and the phase-two working set stays constant
    (:func:`repro.engine.working_set.max_error_terms`).

    The reduction is applied *unconditionally* (not only when the padded
    column count exceeds ``dim``): zero-padded stacks hide the per-sample
    generator count, and per-sample parity with the sequential
    :class:`~repro.domains.parallelotope.ParallelotopeZonotope` requires
    both sides to reduce at exactly the same program points.
    """

    __slots__ = ()

    def relu(
        self,
        slopes=None,
        box_new_errors: bool = True,
        pass_through=None,
    ) -> "BatchedParallelotope":
        return super().relu(
            slopes=slopes, box_new_errors=box_new_errors, pass_through=pass_through
        )._reduce_order()

    def _reduce_order(self) -> "BatchedParallelotope":
        """Enclosing PCA parallelotope stack (Theorem 4.1, zero expansion).

        Zero-padded columns (batchmates' crossing patterns) never change
        the PCA basis or the coefficients — ``G Gᵀ`` and the column-wise
        coefficient sums are blind to zero columns — so the reduction is
        batch-composition independent *in exact arithmetic*.  In floating
        point the stacked BLAS calls differ from the sequential ones at
        the last ulp, and because the PR state layout duplicates the z/u
        rows the reduced matrices are rank-deficient, whose SVD subspaces
        amplify that noise; an every-step reduction therefore tracks the
        sequential pipeline to verdict-level agreement rather than the
        1e-9 bound parity of the other domains (soundness is unaffected —
        any PCA enclosure is sound, see the domain property tests).
        """
        return self.consolidate(None, 0.0, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BatchedParallelotope(batch={self.batch_size}, dim={self.dim}, "
            f"k={self.num_generators})"
        )


_BATCHED_DOMAINS = {
    "chzonotope": BatchedCHZonotope,
    "box": BatchedBox,
    "zonotope": BatchedZonotope,
    "parallelotope": BatchedParallelotope,
}


def batched_domain_for(domain: str) -> Type:
    """Resolve a ``CraftConfig.domain`` name to its batched stack class.

    Raises
    ------
    ConfigurationError
        For unknown domain names.  The engines treat this as fatal — a
        domain the vectorised path cannot represent must fail loudly, not
        silently fall back to the sequential loop.
    """
    try:
        return _BATCHED_DOMAINS[domain]
    except KeyError:
        raise ConfigurationError(
            f"no batched implementation for domain {domain!r}; "
            f"choose from {sorted(_BATCHED_DOMAINS)}"
        ) from None
