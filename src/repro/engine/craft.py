"""The batched Craft driver: Algorithm 1 over a stack of input regions.

:class:`BatchedCraft` runs both phases of the Craft verifier
(:mod:`repro.core.craft`) for ``B`` certification queries against the same
monDEQ weights simultaneously.  The per-sample semantics — consolidation
cadence, expansion schedule, containment history, tightening line search,
patience and abort heuristics — replicate the sequential
:class:`~repro.core.craft.CraftVerifier` exactly; what changes is that
every abstract-transformer application advances the whole batch through
shared BLAS calls on a batched domain stack
(:mod:`repro.engine.batched_domains`): the CH-Zonotope, plain-Zonotope and
Box domains all run through this one driver, dispatched on
``CraftConfig.domain``.

Per-sample **early exit** works by shrinking the active stack: a sample
that proves containment (phase one), certifies its postcondition, diverges
or exhausts its patience (phase two) is gathered out of the batch, and the
remaining rows keep iterating.  A sample's trajectory is therefore
independent of its batch mates, which is what the batched-vs-sequential
parity tests assert.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import resolve_backend
from repro.core.config import AccelerationConfig, CraftConfig
from repro.core.contraction import proposal_factors
from repro.core.expansion import ExpansionSchedule
from repro.core.results import (
    FixpointAbstraction,
    VerificationOutcome,
    VerificationResult,
)
from repro.domains.base import AbstractElement
from repro.engine.batched_domains import BatchedDomain, batched_domain_for
from repro.exceptions import ConfigurationError, VerificationError
from repro.mondeq.abstract_solvers import layout_for, make_batched_abstract_step
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import default_alpha, solve_fixpoint_batch
from repro.verify.specs import ClassificationSpec, LinfBall


#: Minimum pre-consolidation mean width for the shared-basis inflation
#: guard to arm: below this the state is numerically a point, every
#: orthonormal basis consolidates it to the same floored coefficients,
#: and a ratio against (near-)zero would trigger pointless per-sample
#: fallbacks.  Matches the sequential guard in
#: :mod:`repro.core.contraction`.
_GUARD_MIN_WIDTH = 1e-9


@dataclass
class ConsolidationStats:
    """Consolidation accounting of one driver run (both Craft phases).

    ``events`` counts driver-level consolidation calls, ``shared_events``
    those that used a pooled (shared) basis, ``fallback_samples`` the
    samples the width-inflation guard re-consolidated onto their own
    per-sample basis, ``seconds`` the wall-clock spent inside
    consolidation (basis computation included), and
    ``max_width_inflation`` the largest post/pre mean-width ratio any
    shared consolidation produced.  The escalation machinery aggregates
    these per ladder stage (:class:`repro.engine.escalation.StageStats`).
    """

    events: int = 0
    shared_events: int = 0
    fallback_samples: int = 0
    seconds: float = 0.0
    max_width_inflation: float = 0.0

    def merge(self, other: "ConsolidationStats") -> None:
        self.events += other.events
        self.shared_events += other.shared_events
        self.fallback_samples += other.fallback_samples
        self.seconds += other.seconds
        self.max_width_inflation = max(
            self.max_width_inflation, other.max_width_inflation
        )

    def as_dict(self) -> Dict:
        return {
            "events": self.events,
            "shared_events": self.shared_events,
            "fallback_samples": self.fallback_samples,
            "seconds": self.seconds,
            "max_width_inflation": self.max_width_inflation,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ConsolidationStats":
        return cls(
            events=int(data.get("events", 0)),
            shared_events=int(data.get("shared_events", 0)),
            fallback_samples=int(data.get("fallback_samples", 0)),
            seconds=float(data.get("seconds", 0.0)),
            max_width_inflation=float(data.get("max_width_inflation", 0.0)),
        )


def _scatter_rows(stack, rows: np.ndarray, replacement):
    """Replace the generator rows ``rows`` of ``stack`` with ``replacement``.

    Used by the width-inflation guard: both stacks are consolidation
    results (square generators, identical centres/Box radii), so only the
    generator payload differs.
    """
    generators = stack.generators
    generators[stack.xp.asindex(rows)] = replacement.generators
    return type(stack)(stack.center, generators, stack.box)


@dataclass
class _ContainmentRecord:
    """Per-sample outcome of the batched containment phase.

    ``state`` and ``reference`` are sequential elements of the configured
    domain (CHZonotope, Zonotope or Interval).
    """

    contained: bool
    diverged: bool
    state: AbstractElement
    reference: Optional[AbstractElement]
    iterations: int
    consolidations: int
    width_trace: List[float] = field(default_factory=list)
    peak_error_terms: int = 0
    #: Whether this sample exited phase one through an accepted
    #: acceleration proposal (extrapolated candidate enclosure proven by
    #: exact containment steps) rather than the plain history scan.
    accelerated: bool = False
    #: Acceleration proposals tried for this sample (accepted or not).
    proposals: int = 0


@dataclass
class _TighteningRecord:
    """Per-sample outcome of one batched tightening run.

    ``state`` and ``output`` are lazy ``(stack, row)`` references until the
    driver materialises the finally selected record per sample — probe-run
    records are mostly discarded, so eager extraction would dominate the
    small-model regime.
    """

    certified: bool
    margin: float
    iterations: int
    state: Tuple[object, Optional[int]]
    output: Optional[Tuple[object, int]]
    alpha: Optional[float]
    solver: Optional[str]
    slope_delta: float
    width_trace: List[float] = field(default_factory=list)
    peak_error_terms: int = 0


def _materialise(reference) -> Optional[AbstractElement]:
    if reference is None:
        return None
    stack, row = reference
    return stack if row is None else stack.element(row)


def prediction_pass(
    model: MonDEQ,
    config: CraftConfig,
    xs: np.ndarray,
    labels: np.ndarray,
) -> Tuple[List[Optional[VerificationResult]], List[int], Optional[np.ndarray]]:
    """One vectorised prediction pass over a sweep's query centres.

    Returns ``(results, queued, anchors)``: misclassified rows get their
    ``MISCLASSIFIED`` short-circuit result (the property is trivially
    false), ``queued`` lists the correctly classified row indices, and
    ``anchors`` carries their solved fixpoints when the configuration can
    reuse them as phase-zero anchors (:func:`anchor_reuse_valid`).

    This is the single copy of the short-circuit semantics — the batched
    driver and the sharded scheduler both route through it, so the engine
    parity contract cannot drift between them.
    """
    predict = solve_fixpoint_batch(model, xs, method="pr")
    predictions = model.readout_batch(predict.z).argmax(axis=1)
    results: List[Optional[VerificationResult]] = [None] * xs.shape[0]
    queued: List[int] = []
    for index, (prediction, label) in enumerate(zip(predictions, labels)):
        if int(prediction) != int(label):
            results[index] = VerificationResult(
                outcome=VerificationOutcome.MISCLASSIFIED,
                contained=False,
                certified=False,
                margin=-np.inf,
                iterations_phase1=0,
                iterations_phase2=0,
                time_seconds=0.0,
                notes=f"model predicts class {int(prediction)}, expected {int(label)}",
            )
        else:
            queued.append(index)
    anchors = None
    if queued and anchor_reuse_valid(model, config):
        anchors = predict.z[queued]
    return results, queued, anchors


def anchor_reuse_valid(model: MonDEQ, config: CraftConfig) -> bool:
    """Whether fixpoints from a prediction pass (``solve_fixpoint_batch``
    with pr/default-alpha/1e-9/2000) can double as the configuration's
    phase-zero anchors.  Shared by every caller that wants to skip the
    second concrete solve — the gate must stay in one place, because a
    mismatch would silently hand ``certify_regions`` initial states solved
    with the wrong parameters."""
    return (
        config.solver1 == "pr"
        and config.alpha1 == default_alpha(model, "pr")
        and config.concrete_tol == 1e-9
        and config.concrete_max_iterations == 2000
    )


@dataclass
class _TighteningStacks:
    """Shared, pre-stacked phase-two inputs (built once per batch).

    Every tightening run — the line-search probes, the full-budget
    continuation and the slope-optimisation attempts — starts from the same
    contraction states and postcondition matrices; stacking them once and
    gathering rows per run keeps the per-run setup cost flat.
    """

    inputs: "BatchedDomain"
    states: "BatchedDomain"
    previous: "BatchedDomain"
    initial_states: List[AbstractElement]
    #: Per-sample postcondition difference matrices, pre-parked on the
    #: engine backend so the tightening loop never re-uploads them.
    differences: object


class BatchedCraft:
    """Vectorised two-phase Craft verification over a batch of regions."""

    def __init__(self, model: MonDEQ, config: Optional[CraftConfig] = None):
        self._model = model
        self._config = config if config is not None else CraftConfig()
        if self._config.is_ladder:
            # A ladder config handed to the single-domain driver would
            # silently run only the final stage; the waterfall lives in
            # repro.engine.escalation.EscalationLadder (and the schedulers
            # route there automatically).
            raise ConfigurationError(
                f"BatchedCraft runs one domain per sweep, got the escalation "
                f"ladder {self._config.domains}; use EscalationLadder or a "
                f"scheduler front-end instead"
            )
        # Dispatch on the configured abstract domain: every domain in
        # repro.domains has a batched stack implementation (an unknown name
        # raises ConfigurationError — never a silent sequential fallback).
        self._domain_cls = batched_domain_for(self._config.domain)
        # A single-domain driver is its own final stage, so "auto" resolves
        # to per-sample; ladder stage configs arrive pre-resolved through
        # CraftConfig.stage_config().
        self._basis_mode = self._config.resolved_consolidation_basis()
        # Resolve the array backend eagerly: an unusable request (torch not
        # installed, cuda without a GPU) must raise ConfigurationError at
        # construction, never fall back to numpy mid-run.
        self._backend = resolve_backend(
            self._config.backend,
            self._config.backend_device,
            self._config.backend_search_dtype,
        )
        # The float32 firewall: search-only work (consolidation-basis
        # fitting, acceleration-proposal heuristics) may downcast;
        # proof-bearing comparisons never do.
        self._search = self._backend.search_dtype == "float32"
        #: Consolidation accounting of the most recent certify_regions run.
        self.consolidation_stats = ConsolidationStats()
        if self._config.solver1 == "fb" and self._config.solver2 == "pr":
            raise VerificationError(
                "tightening with PR after an FB containment phase is not supported: "
                "the auxiliary PR state was never computed (Section 6.3)"
            )
        self._layout = layout_for(model, self._config.solver1)
        # Output-readout operands are parked on the backend once: the
        # tightening loop applies them every iteration, and xp.asarray
        # adopts an already-resident array zero-copy.
        self._output_selector = self._backend.asarray(
            model.v_weight @ self._layout.z_selector()
        )
        self._output_bias = self._backend.asarray(model.v_bias)

    @property
    def config(self) -> CraftConfig:
        return self._config

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def certify(
        self,
        xs: np.ndarray,
        labels: np.ndarray,
        epsilon: float,
        clip_min: Optional[float] = 0.0,
        clip_max: Optional[float] = 1.0,
    ) -> List[VerificationResult]:
        """Certify l-infinity robustness of every row of ``xs`` in one pass.

        Semantically equivalent to mapping
        :func:`repro.verify.robustness.certify_sample` over the rows;
        misclassified samples short-circuit exactly as in the sequential
        path.
        """
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        labels = np.asarray(labels, dtype=int).reshape(-1)
        if xs.shape[0] != labels.shape[0]:
            raise VerificationError("xs and labels must have matching lengths")
        # The prediction pass solves the anchor fixpoints with
        # pr/default-alpha/1e-9/2000; when the config asks for exactly those
        # parameters (the default) they double as the phase-zero anchors
        # instead of re-running up to 2000 full-batch iterations.
        results, queued, anchors = prediction_pass(self._model, self._config, xs, labels)
        if queued:
            balls = [
                LinfBall(center=xs[i], epsilon=epsilon, clip_min=clip_min, clip_max=clip_max)
                for i in queued
            ]
            specs = [
                ClassificationSpec(target=int(labels[i]), num_classes=self._model.output_dim)
                for i in queued
            ]
            for index, result in zip(queued, self.certify_regions(balls, specs, anchors)):
                results[index] = result
        return results

    def certify_regions(
        self,
        balls: Sequence[LinfBall],
        specs: Sequence[ClassificationSpec],
        anchor_fixpoints: Optional[np.ndarray] = None,
    ) -> List[VerificationResult]:
        """Run both Craft phases for every (precondition, postcondition) pair.

        ``anchor_fixpoints`` optionally supplies the pre-solved concrete
        fixpoints of the ball centres (shape ``(B, latent)``), skipping the
        phase-zero batched solve; the caller is responsible for having
        produced them with the configuration's solver parameters.
        """
        balls = list(balls)
        specs = list(specs)
        if len(balls) != len(specs):
            raise VerificationError("balls and specs must have matching lengths")
        if not balls:
            return []
        for ball in balls:
            if ball.dim != self._model.input_dim:
                raise VerificationError(
                    f"precondition dimension {ball.dim} does not match the model "
                    f"input dimension {self._model.input_dim}"
                )
        start = time.perf_counter()
        config = self._config
        batch = len(balls)
        self.consolidation_stats = ConsolidationStats()

        # Admission boundary: the input stack crosses to the configured
        # backend exactly once here; every derived stack (injections,
        # iterates, histories) stays device-resident until verdict
        # extraction.
        input_elements = self._domain_cls.from_elements(
            [ball.to_element(config.domain) for ball in balls]
        ).to_backend(self._backend)
        if anchor_fixpoints is None:
            centers = np.stack([ball.center for ball in balls])
            anchor_fixpoints = solve_fixpoint_batch(
                self._model,
                centers,
                method=config.solver1,
                alpha=config.alpha1 if config.solver1 == "pr" else None,
                tol=config.concrete_tol,
                max_iterations=config.concrete_max_iterations,
            ).z
        blocks = 2 if self._layout.has_aux else 1
        initial = self._domain_cls.from_points(
            np.tile(anchor_fixpoints, (1, blocks))
        ).to_backend(self._backend)
        contraction_step = make_batched_abstract_step(
            self._model,
            self._layout,
            input_elements,
            config.solver1,
            config.alpha1,
            use_box_component=config.use_box_component,
        )

        containment = self._containment_phase(contraction_step, initial)
        contained_samples = [i for i in range(batch) if containment[i].contained]
        tightening: Dict[int, _TighteningRecord] = {}
        if contained_samples:
            tightening = self._tighten_and_certify(
                input_elements, specs, containment, contained_samples
            )

        per_region_time = (time.perf_counter() - start) / batch
        return [
            self._assemble_result(containment[i], tightening.get(i), per_region_time)
            for i in range(batch)
        ]

    # ------------------------------------------------------------------
    # Consolidation-basis policy (per-sample vs shared)
    # ------------------------------------------------------------------

    def _compute_consolidation_basis(self, state: "BatchedDomain"):
        """Consolidation basis under the configured policy.

        ``"per_sample"`` returns the ``(B, n, n)`` per-sample PCA stack
        (one SVD per sample — the paper's Appendix C behaviour);
        ``"shared"`` returns one pooled ``(n, n)`` basis for the whole
        stack (a single pooled-Gram eigendecomposition or randomized
        range-finder sketch).  Basis-free domains (Box) return ``None``
        either way.
        """
        if self._basis_mode == "shared":
            return state.shared_pca_basis(search=self._search)
        return state.pca_basis(search=self._search)

    def _consolidate(
        self, state: "BatchedDomain", w_mul: float, w_add: float, basis=None
    ) -> "BatchedDomain":
        """One driver-level consolidation under the basis policy.

        In shared mode the width-inflation guard compares each sample's
        post-consolidation mean width against its pre-consolidation width
        and re-consolidates offending samples
        (> ``config.shared_basis_max_inflation``) onto their own
        per-sample basis — so a pooled basis that happens to fit one
        sample badly costs one extra SVD for that sample instead of
        precision for the whole batch.  Counters land in
        :attr:`consolidation_stats`.
        """
        start = time.perf_counter()
        stats = self.consolidation_stats
        stats.events += 1
        if basis is None:
            basis = self._compute_consolidation_basis(state)
        shared = (
            self._basis_mode == "shared" and basis is not None and basis.ndim == 2
        )
        result = state.consolidate(basis, w_mul, w_add)
        if shared:
            stats.shared_events += 1
            before = state.mean_width
            # Only states with meaningful width can inflate *because of the
            # basis*; near-point states consolidate to floored coefficients
            # under any basis, so the guard stays disarmed for them.
            eligible = before > _GUARD_MIN_WIDTH
            inflation = np.where(eligible, result.mean_width / np.maximum(before, _GUARD_MIN_WIDTH), 0.0)
            if np.any(eligible):
                stats.max_width_inflation = max(
                    stats.max_width_inflation, float(inflation.max())
                )
            bad = inflation > self._config.shared_basis_max_inflation
            if np.any(bad):
                rows = np.nonzero(bad)[0]
                subset = state.select(rows)
                repaired = subset.consolidate(
                    subset.pca_basis(search=self._search), w_mul, w_add
                )
                result = _scatter_rows(result, rows, repaired)
                stats.fallback_samples += int(rows.size)
        stats.seconds += time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    # Phase one: batched containment search
    # ------------------------------------------------------------------

    def _containment_phase(self, step, initial: "BatchedDomain") -> List[_ContainmentRecord]:
        settings = self._config.contraction
        expansion = ExpansionSchedule.from_config(self._config)
        batch = initial.batch_size
        records: List[Optional[_ContainmentRecord]] = [None] * batch
        # (active indices, mean widths) per iteration; scattered into
        # per-sample traces only on exit to keep the hot loop free of
        # per-row Python work.
        trace_log: List[Tuple[np.ndarray, np.ndarray]] = []

        active = np.arange(batch)
        state = initial
        current_step = step
        history: deque = deque(maxlen=settings.history_size)
        basis: Optional[np.ndarray] = None
        consolidations = 0
        peak_error_terms = np.zeros(batch, dtype=int)
        # Acceleration proposer bookkeeping, indexed by absolute sample id
        # so it survives active-set shrinks.  The three rolling step-width
        # slots feed the geometric-tail extrapolation with exactly the
        # same scalars the sequential driver sees.
        accel: Optional[AccelerationConfig] = (
            self._config.acceleration if self._config.acceleration.enabled else None
        )
        proposals_used = np.zeros(batch, dtype=int)
        step_w1 = np.full(batch, np.nan)
        step_w2 = np.full(batch, np.nan)
        step_w3 = np.full(batch, np.nan)

        for iteration in range(settings.max_iterations):
            if active.size == 0:
                break
            if iteration % settings.consolidate_every == 0:
                if basis is None or iteration % settings.basis_recompute_every == 0:
                    # Timed here because the basis is cached across events
                    # (recomputed every basis_recompute_every iterations)
                    # and handed to _consolidate pre-built — this is the
                    # phase-one share of the per-sample SVD cost.
                    basis_start = time.perf_counter()
                    basis = self._compute_consolidation_basis(state)
                    self.consolidation_stats.seconds += (
                        time.perf_counter() - basis_start
                    )
                w_mul, w_add = expansion.step()
                state = self._consolidate(state, w_mul, w_add, basis=basis)
                history.append(state)
                consolidations += 1

                if accel is not None:
                    exit_rows = self._acceleration_proposals(
                        accel,
                        state,
                        current_step,
                        active,
                        iteration,
                        consolidations,
                        proposals_used,
                        peak_error_terms,
                        step_w1,
                        step_w2,
                        step_w3,
                        records,
                    )
                    if exit_rows.size:
                        # Accepted samples leave the batch *before* the
                        # plain step, so a sample's iteration count can
                        # only shrink relative to the unaccelerated run.
                        keep = np.setdiff1d(np.arange(active.size), exit_rows)
                        active = active[keep]
                        if active.size == 0:
                            break
                        state = state.select(keep)
                        history = deque(
                            (entry.select(keep) for entry in history),
                            maxlen=settings.history_size,
                        )
                        if basis is not None and basis.ndim == 3:
                            basis = basis[self._backend.asindex(keep)]
                        current_step = current_step.select(keep)

            next_state = current_step(state)
            peak_error_terms[active] = np.maximum(
                peak_error_terms[active], getattr(next_state, "num_generators", 0)
            )
            widths = next_state.width
            if settings.track_trace:
                trace_log.append((active, widths.mean(axis=1)))
            if accel is not None:
                step_w1[active] = step_w2[active]
                step_w2[active] = step_w3[active]
                step_w3[active] = widths.mean(axis=1)

            diverged = (widths.max(axis=1) > settings.abort_width) | ~np.isfinite(
                widths
            ).all(axis=1)
            contained = np.zeros(active.size, dtype=bool)
            reference_pick = np.full(active.size, -1, dtype=int)
            # Mirror the sequential engine: compare against the most recent
            # consolidated states first, record the first (newest) match.
            for h_index in range(len(history) - 1, -1, -1):
                pending = ~diverged & ~contained
                if not pending.any():
                    break
                flags = history[h_index].contains(next_state)
                newly = pending & flags
                contained |= newly
                reference_pick[newly] = h_index

            exit_mask = diverged | contained
            for row in np.nonzero(exit_mask)[0]:
                sample = int(active[row])
                records[sample] = _ContainmentRecord(
                    contained=bool(contained[row]),
                    diverged=bool(diverged[row]),
                    state=next_state.element(row),
                    reference=(
                        history[reference_pick[row]].element(row)
                        if contained[row]
                        else None
                    ),
                    iterations=iteration + 1,
                    consolidations=consolidations,
                    peak_error_terms=int(peak_error_terms[sample]),
                    proposals=int(proposals_used[sample]),
                )
            if exit_mask.any():
                keep = np.nonzero(~exit_mask)[0]
                active = active[keep]
                if active.size == 0:
                    break
                state = next_state.select(keep)
                history = deque(
                    (entry.select(keep) for entry in history), maxlen=settings.history_size
                )
                # A shared (n, n) basis is row-independent; only per-sample
                # basis stacks are gathered down with the batch.
                if basis is not None and basis.ndim == 3:
                    basis = basis[self._backend.asindex(keep)]
                current_step = current_step.select(keep)
            else:
                state = next_state

        for row, sample in enumerate(active):
            records[int(sample)] = _ContainmentRecord(
                contained=False,
                diverged=False,
                state=state.element(row),
                reference=None,
                iterations=settings.max_iterations,
                consolidations=consolidations,
                peak_error_terms=int(peak_error_terms[int(sample)]),
                proposals=int(proposals_used[int(sample)]),
            )
        for active_rows, means in trace_log:
            for row, sample in zip(active_rows.tolist(), means.tolist()):
                records[row].width_trace.append(sample)
        return records

    def _acceleration_proposals(
        self,
        accel: AccelerationConfig,
        state: "BatchedDomain",
        current_step,
        active: np.ndarray,
        iteration: int,
        consolidations: int,
        proposals_used: np.ndarray,
        peak_error_terms: np.ndarray,
        step_w1: np.ndarray,
        step_w2: np.ndarray,
        step_w3: np.ndarray,
        records: List[Optional[_ContainmentRecord]],
    ) -> np.ndarray:
        """Run one round of extrapolated candidate-enclosure proposals.

        Called at every consolidation event, right after ``state`` (the
        just-consolidated stack) joined the history.  For each qualifying
        row the last three *plain* step widths are fit to a geometric
        tail (:func:`repro.core.contraction.proposal_factors` — the same
        vectorised decision function the sequential driver routes its
        scalars through, so both engines propose on identical rows with
        identical factors); qualifying rows are dilated into candidate
        enclosures and checked with up to ``consolidate_every`` *exact*
        abstract steps — the Theorem B.1 proof obligation, untouched by
        the extrapolation.  Accepted rows get their ``records`` entry
        written here and their active-row indices returned so the caller
        can gather them out of the batch before the plain step; rejected
        proposals leave the plain trajectory untouched.
        """
        settings = self._config.contraction
        cand = np.nonzero(proposals_used[active] < accel.max_proposals)[0]
        if cand.size == 0:
            return np.empty(0, dtype=int)
        cand_ids = active[cand]
        # The proposal decision is pure *search*: an under- or over-eager
        # proposal only costs/saves exact containment steps, never
        # soundness (the Theorem B.1 unroll below always runs in float64).
        # Under the float32 search policy the heuristic therefore sees
        # float32-rounded widths.
        f32 = (lambda a: a.astype(np.float32)) if self._search else (lambda a: a)
        factors, mask = proposal_factors(
            accel,
            f32(state.width.mean(axis=1)[cand]),
            f32(step_w1[cand_ids]),
            f32(step_w2[cand_ids]),
            f32(step_w3[cand_ids]),
        )
        factors = np.asarray(factors, dtype=float)
        prop = cand[mask]
        if prop.size == 0:
            return np.empty(0, dtype=int)
        proposals_used[active[prop]] += 1
        candidate = state.select(prop).dilate(factors[mask])
        sub_step = current_step.select(prop)
        trial = candidate
        # Positions into ``prop`` still being stepped; accepted and
        # non-finite rows are gathered out as the unroll proceeds.
        alive = np.arange(prop.size)
        exit_rows: List[int] = []
        budget = min(settings.consolidate_every, settings.max_iterations - iteration)
        for unrolled in range(1, budget + 1):
            trial = sub_step(trial)
            alive_ids = active[prop[alive]]
            peak_error_terms[alive_ids] = np.maximum(
                peak_error_terms[alive_ids], getattr(trial, "num_generators", 0)
            )
            finite = np.isfinite(trial.width).all(axis=1)
            flags = candidate.contains(trial) & finite
            if flags.any():
                for pos in np.nonzero(flags)[0]:
                    arow = int(prop[alive[pos]])
                    sample = int(active[arow])
                    records[sample] = _ContainmentRecord(
                        contained=True,
                        diverged=False,
                        state=trial.element(pos),
                        reference=candidate.element(pos),
                        iterations=iteration + unrolled,
                        consolidations=consolidations,
                        peak_error_terms=int(peak_error_terms[sample]),
                        accelerated=True,
                        proposals=int(proposals_used[sample]),
                    )
                    exit_rows.append(arow)
            drop = flags | ~finite
            if drop.any():
                keep = np.nonzero(~drop)[0]
                if keep.size == 0:
                    break
                alive = alive[keep]
                candidate = candidate.select(keep)
                trial = trial.select(keep)
                sub_step = sub_step.select(keep)
        return np.asarray(sorted(exit_rows), dtype=int)

    # ------------------------------------------------------------------
    # Phase two: batched tightening and certification
    # ------------------------------------------------------------------

    def _tighten_and_certify(
        self,
        input_elements: "BatchedDomain",
        specs: Sequence[ClassificationSpec],
        containment: List[_ContainmentRecord],
        contained_samples: List[int],
    ) -> Dict[int, _TighteningRecord]:
        config = self._config
        probe_budget = max(5, config.tighten_max_iterations // 5)
        candidates = list(config.candidate_parameters())

        # All tightening runs start from the same contraction states; stack
        # them (and the per-sample postcondition matrices) once, so probe
        # runs only gather rows instead of re-stacking elements.
        stacks = _TighteningStacks(
            inputs=input_elements.select(np.asarray(contained_samples)),
            states=self._domain_cls.from_elements(
                [containment[s].state for s in contained_samples]
            ).to_backend(self._backend),
            previous=self._domain_cls.from_elements(
                [
                    containment[s].reference
                    if containment[s].reference is not None
                    else containment[s].state
                    for s in contained_samples
                ]
            ).to_backend(self._backend),
            initial_states=[containment[s].state for s in contained_samples],
            differences=self._backend.asarray(
                np.stack([specs[s].difference_matrix() for s in contained_samples])
            ),
        )
        count = len(contained_samples)
        all_rows = np.arange(count)

        # Peak error-term counts are merged across every run a sample took
        # part in (probes, full-budget continuation, slope attempts) — the
        # measured working set the calibration counters report.
        peaks = np.zeros(count, dtype=int)

        def merge_peaks(rows, records):
            for i, record in zip(rows, records):
                peaks[i] = max(peaks[i], record.peak_error_terms)

        probe_runs = [
            self._run_tightening(stacks, all_rows, solver, alpha, 0.0, probe_budget)
            for solver, alpha in candidates
        ]
        for run in probe_runs:
            merge_peaks(all_rows, run)
        margins = np.array([[record.margin for record in run] for run in probe_runs])
        best_candidate = np.argmax(margins, axis=0)
        best: List[_TighteningRecord] = [
            probe_runs[best_candidate[i]][i] for i in range(count)
        ]

        # Continue the most promising candidate with the full budget, grouped
        # so samples sharing a candidate advance in one batch.
        groups: Dict[int, List[int]] = {}
        for i in range(count):
            if not best[i].certified:
                groups.setdefault(int(best_candidate[i]), []).append(i)
        for candidate_index, rows in groups.items():
            solver, alpha = candidates[candidate_index]
            full = self._run_tightening(
                stacks, np.asarray(rows), solver, alpha, 0.0, config.tighten_max_iterations
            )
            merge_peaks(rows, full)
            for i, record in zip(rows, full):
                if record.margin >= best[i].margin:
                    best[i] = record

        deltas = config.slope_deltas()
        if deltas:
            eligible = [
                i
                for i in range(count)
                if not best[i].certified
                and best[i].margin > -config.slope_margin_threshold
            ]
            for delta in deltas:
                rows = [i for i in eligible if not best[i].certified]
                if not rows:
                    break
                by_candidate: Dict[Tuple[str, float], List[int]] = {}
                for i in rows:
                    by_candidate.setdefault((best[i].solver, best[i].alpha), []).append(i)
                for (solver, alpha), group_rows in by_candidate.items():
                    attempts = self._run_tightening(
                        stacks, np.asarray(group_rows), solver, alpha,
                        float(delta), config.tighten_max_iterations,
                    )
                    merge_peaks(group_rows, attempts)
                    for i, record in zip(group_rows, attempts):
                        if record.margin > best[i].margin:
                            best[i] = record

        for i in range(count):
            best[i] = replace(
                best[i],
                state=_materialise(best[i].state),
                output=_materialise(best[i].output),
                peak_error_terms=int(peaks[i]),
            )
        return {contained_samples[i]: best[i] for i in range(count)}

    def _run_tightening(
        self,
        stacks: "_TighteningStacks",
        rows: np.ndarray,
        solver: str,
        alpha: float,
        slope_delta: float,
        budget: int,
    ) -> List[_TighteningRecord]:
        config = self._config
        count = len(rows)
        full_batch = count == stacks.states.batch_size and np.array_equal(
            rows, np.arange(count)
        )
        step = make_batched_abstract_step(
            self._model,
            self._layout,
            stacks.inputs if full_batch else stacks.inputs.select(rows),
            solver,
            alpha,
            slope_delta=slope_delta,
            use_box_component=config.use_box_component,
        )
        state = stacks.states if full_batch else stacks.states.select(rows)
        previous = stacks.previous if full_batch else stacks.previous.select(rows)
        difference_stack = stacks.differences[self._backend.asindex(rows)]

        best_margin = np.full(count, -np.inf)
        # Best states/outputs are tracked as (stack, row) references and only
        # materialised for the finally selected record per sample — margins
        # improve on most iterations, and copying a (n, k) slice out of the
        # stack every time would rival the cost of the step itself.
        best_state: List[Tuple[object, Optional[int]]] = [
            (stacks.initial_states[r], None) for r in rows
        ]
        best_output: List[Optional[Tuple[object, int]]] = [None] * count
        certified = np.zeros(count, dtype=bool)
        since_improvement = np.zeros(count, dtype=int)
        iterations = np.zeros(count, dtype=int)
        peak_error_terms = np.full(
            count, getattr(state, "num_generators", 0), dtype=int
        )
        trace_log: List[Tuple[np.ndarray, np.ndarray]] = []

        active = np.arange(count)
        current_step = step
        for iteration in range(1, budget + 1):
            if active.size == 0:
                break
            if config.tighten_should_consolidate(iteration):
                # Periodic phase-two consolidation (Appendix C), same cadence
                # as the sequential driver: bounds the error-term growth —
                # roughly (input dim + state dim) fresh columns per step —
                # which is what keeps wide-input batches inside the LLC.
                # The cadence is indexed by the global iteration counter, and
                # all active rows share it, so per-sample behaviour is
                # independent of batch composition.  This is the sweep hot
                # path the shared-basis mode amortises: one pooled basis per
                # event instead of one SVD per sample (_consolidate).
                state = self._consolidate(state, 0.0, 0.0)
            new_state = current_step(state)
            iterations[active] = iteration
            peak_error_terms[active] = np.maximum(
                peak_error_terms[active], getattr(new_state, "num_generators", 0)
            )
            trace_log.append((active, new_state.mean_width))

            if config.same_iteration_containment:
                proper_previous = self._consolidate(previous, 0.0, 0.0)
                usable = proper_previous.contains(new_state)
            else:
                usable = np.ones(active.size, dtype=bool)

            outputs = new_state.affine(self._output_selector, self._output_bias)
            differences = outputs.affine(
                difference_stack[self._backend.asindex(active)]
            )
            lower, _ = differences.concretize_bounds()
            margins = lower.min(axis=1)
            holds = margins > 0.0

            improved = usable & (margins > best_margin[active])
            for row in np.nonzero(improved)[0]:
                sample_row = int(active[row])
                best_margin[sample_row] = margins[row]
                best_state[sample_row] = (new_state, int(row))
                best_output[sample_row] = (outputs, int(row))
                since_improvement[sample_row] = 0
            stalled = active[~improved]
            since_improvement[stalled] += 1

            certified_now = usable & holds
            certified[active[certified_now]] = True

            widths = new_state.width
            aborted = ~np.isfinite(widths).all(axis=1) | (
                widths.max(axis=1) > config.contraction.abort_width
            )
            exhausted = since_improvement[active] >= config.tighten_patience

            exit_mask = certified_now | aborted | exhausted
            if exit_mask.any():
                keep = np.nonzero(~exit_mask)[0]
                active = active[keep]
                if active.size == 0:
                    break
                previous = state.select(keep)
                state = new_state.select(keep)
                current_step = current_step.select(keep)
            else:
                previous = state
                state = new_state

        traces: List[List[float]] = [[] for _ in range(count)]
        for active_rows, means in trace_log:
            for row, mean in zip(active_rows.tolist(), means.tolist()):
                traces[row].append(mean)
        return [
            _TighteningRecord(
                certified=bool(certified[i]),
                margin=float(best_margin[i]),
                iterations=int(iterations[i]),
                state=best_state[i],
                output=best_output[i],
                alpha=alpha,
                solver=solver,
                slope_delta=slope_delta,
                width_trace=traces[i],
                peak_error_terms=int(peak_error_terms[i]),
            )
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    # Result assembly (mirrors CraftVerifier.solve)
    # ------------------------------------------------------------------

    def _assemble_result(
        self,
        containment: _ContainmentRecord,
        tightening: Optional[_TighteningRecord],
        time_seconds: float,
    ) -> VerificationResult:
        if not containment.contained:
            outcome = (
                VerificationOutcome.DIVERGED
                if containment.diverged
                else VerificationOutcome.NO_CONTAINMENT
            )
            return VerificationResult(
                outcome=outcome,
                contained=False,
                certified=False,
                margin=-np.inf,
                iterations_phase1=containment.iterations,
                iterations_phase2=0,
                time_seconds=time_seconds,
                fixpoint_abstraction=FixpointAbstraction(
                    element=containment.state,
                    contained=False,
                    iterations_phase1=containment.iterations,
                    iterations_phase2=0,
                    width_trace_phase1=containment.width_trace,
                ),
                notes="containment phase did not detect contraction",
                stage=self._config.domain,
                peak_error_terms=containment.peak_error_terms,
                accel_proposals=containment.proposals,
            )
        outcome = (
            VerificationOutcome.VERIFIED
            if tightening.certified
            else VerificationOutcome.UNKNOWN
        )
        abstraction = FixpointAbstraction(
            element=tightening.state,
            contained=True,
            iterations_phase1=containment.iterations,
            iterations_phase2=tightening.iterations,
            width_trace_phase1=containment.width_trace,
            width_trace_phase2=tightening.width_trace,
        )
        return VerificationResult(
            outcome=outcome,
            contained=True,
            certified=tightening.certified,
            margin=tightening.margin,
            iterations_phase1=containment.iterations,
            iterations_phase2=tightening.iterations,
            time_seconds=time_seconds,
            selected_alpha2=tightening.alpha,
            selected_solver2=tightening.solver,
            slope_optimized=tightening.slope_delta != 0.0,
            fixpoint_abstraction=abstraction,
            output_element=tightening.output,
            stage=self._config.domain,
            peak_error_terms=max(
                containment.peak_error_terms, tightening.peak_error_terms
            ),
            accelerated=containment.accelerated,
            accel_proposals=containment.proposals,
        )
