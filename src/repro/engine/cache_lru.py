"""In-memory LRU tier over the on-disk fixpoint cache.

Hot models answer repeat traffic without touching disk: the tier holds
recently used cache *payloads* (the JSON dicts of
:class:`~repro.engine.cache.FixpointCache`), keyed by the same bucket
keys, bounded both by entry count and by an approximate byte budget.
Eviction is strict LRU — any get or put refreshes recency.

The tier is a read-through/write-through companion of the disk store
(:class:`~repro.engine.cache.TieredVerdictCache` populates it on disk
hits and admissions); it is also where dominance-derived answers are
*materialised* (payloads flagged ``derived: True``), which never reach
disk.  Byte accounting measures the JSON serialisation of each payload —
the same bytes the disk tier would have re-read.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.exceptions import ConfigurationError


def payload_bytes(payload: Dict) -> int:
    """Approximate in-memory cost of one payload (its JSON size)."""
    return len(json.dumps(payload, default=str).encode("utf-8"))


class LRUTier:
    """Bounded in-memory payload cache (entries *and* bytes)."""

    def __init__(self, max_entries: int = 4096, max_bytes: int = 16 * 1024 * 1024):
        if max_entries < 1:
            raise ConfigurationError("max_entries must be positive")
        if max_bytes < 1:
            raise ConfigurationError("max_bytes must be positive")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, Tuple[Dict, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Dict]:
        """The payload under ``key`` (refreshing recency), or ``None``."""
        slot = self._entries.get(key)
        if slot is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return slot[0]

    def put(self, key: str, payload: Dict) -> bool:
        """Insert/refresh ``key``; returns ``False`` if the payload alone
        exceeds the byte budget (the tier stays unchanged)."""
        size = payload_bytes(payload)
        if size > self.max_bytes:
            return False
        existing = self._entries.pop(key, None)
        if existing is not None:
            self.current_bytes -= existing[1]
        self._entries[key] = (payload, size)
        self.current_bytes += size
        self._evict()
        return True

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries or self.current_bytes > self.max_bytes:
            _, (_, size) = self._entries.popitem(last=False)
            self.current_bytes -= size
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0
