"""Per-query domain escalation: the mixed-domain waterfall scheduler.

The paper's Table 4 shows the precision/cost ladder Box → Zonotope →
CH-Zonotope: the cheap domains certify many queries in a fraction of the
time, and only the hard residue needs the expensive domain.  Until PR 4
the engines fixed **one** domain per sweep (``CraftConfig.domain``), so
every query paid CH-Zonotope cost even when Box would have certified it.

This module moves the domain choice into the scheduler.  An **escalation
ladder** (``CraftConfig.domains``, cheapest first) is run as a waterfall:

1. every query starts in the first (cheapest) configured domain;
2. queries whose verdict is *resolved* — ``VERIFIED`` (a sound
   certificate in any domain is final) or ``MISCLASSIFIED`` (falsified by
   the concrete network, domain-independent) — exit the waterfall early;
3. queries that come back ``UNKNOWN``, ``NO_CONTAINMENT`` or ``DIVERGED``
   are re-enqueued into the next, more precise stage;
4. the last stage's verdict is final whatever it is.

Because the final stage runs the exact single-domain configuration a pure
sweep would have used, a ladder ending in ``"chzonotope"`` can never flip
a certified or falsified verdict relative to the pure CH-Zonotope sweep —
escalation only ever *adds* certificates from cheaper stages.  That
no-flip property is the ladder's acceptance contract
(``tests/engine/test_escalation.py``, ``benchmarks/bench_escalation.py``).

:class:`EscalationLadder` is the single-process waterfall (used by the
batch scheduler and the domain-splitting certifier);
:class:`~repro.engine.sharded.ShardedScheduler` runs the same waterfall
with per-``(stage, batch)`` shards fanned out to worker processes, so
escalated stragglers never serialize a sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import CraftConfig
from repro.core.results import VerificationOutcome, VerificationResult
from repro.exceptions import ConfigurationError, VerificationError
from repro.mondeq.model import MonDEQ
from repro.verify.specs import ClassificationSpec, LinfBall


def stage_histogram(results) -> Dict[str, int]:
    """Resolving-stage counts of a result list, cheapest domain first.

    The single shared copy of the histogram every report surface uses
    (:class:`~repro.engine.results.EngineReport`,
    ``RobustnessReport.stage_counts``, the Table 4 ablation rows) — the
    counting rule must not drift between them.  ``None`` stages
    (misclassified queries, which never enter the waterfall) are skipped.
    """
    from repro.core.config import DOMAIN_LADDER

    counts: Dict[str, int] = {}
    for result in results:
        if result is not None and result.stage is not None:
            counts[result.stage] = counts.get(result.stage, 0) + 1
    return {name: counts[name] for name in DOMAIN_LADDER if name in counts}


def should_escalate(result: VerificationResult) -> bool:
    """Whether a stage verdict re-enqueues the query into the next stage.

    Certified verdicts are sound in every domain and falsified verdicts
    (``MISCLASSIFIED``) are decided by the concrete network, so both are
    final; everything else — ``UNKNOWN``, ``NO_CONTAINMENT``,
    ``DIVERGED`` — may be an artefact of the cheap abstraction and climbs
    the ladder.
    """
    return not result.certified and result.outcome is not VerificationOutcome.MISCLASSIFIED


@dataclass
class StageStats:
    """Per-stage accounting of one waterfall sweep.

    ``elapsed_seconds`` is per-stage wall-clock in the single-process
    :class:`EscalationLadder`; the sharded scheduler instead sums the
    *worker-side* shard times of the stage (its shards run concurrently
    and interleave with other stages, so a stage has no well-defined
    wall-clock there) — compare the field across engines as work done,
    not as latency.  The same caveat applies to ``consolidation_seconds``.

    The consolidation counters aggregate the per-driver
    :class:`~repro.engine.craft.ConsolidationStats`:
    ``shared_consolidations`` / ``consolidation_fallbacks`` show how often
    the stage used a pooled basis and how many samples its width-inflation
    guard re-consolidated per-sample; ``max_width_inflation`` is the worst
    post/pre mean-width ratio a shared consolidation produced.
    ``peak_error_terms`` (measured, the largest generator-stack width any
    query of the stage streamed) against ``estimated_error_terms`` (the
    analytic bound of :func:`repro.engine.working_set.max_error_terms`)
    calibrates the cache-fitting batch sizing.
    """

    domain: str
    batch_size: int = 0
    attempted: int = 0
    resolved: int = 0
    certified: int = 0
    escalated: int = 0
    batches: int = 0
    elapsed_seconds: float = 0.0
    consolidations: int = 0
    shared_consolidations: int = 0
    consolidation_fallbacks: int = 0
    consolidation_seconds: float = 0.0
    max_width_inflation: float = 0.0
    peak_error_terms: int = 0
    estimated_error_terms: int = 0
    #: Queries this stage never ran because a *dominating* cache entry —
    #: a certified superset region, or a falsifying point inside the
    #: query — resolved in this stage's domain answered them
    #: (:mod:`repro.engine.cache_dominance`).  Attributed by the serving
    #: entry's resolving stage via :func:`fold_dominance_hits`.
    cache_dominance_hits: int = 0
    #: Total phase-one iterations the stage's queries ran — the quantity
    #: the acceleration proposer exists to shrink (compare sweeps with the
    #: knob on and off at fixed ``attempted``).
    phase1_iterations: int = 0
    #: Queries of this stage that exited phase one through an accepted
    #: acceleration proposal.
    accel_accepted: int = 0
    #: Acceleration proposals tried by this stage's queries (accepted or
    #: rejected); each costs one extra exact abstract step.
    accel_proposals: int = 0

    def record_consolidation(self, stats) -> None:
        """Fold one driver run's ``ConsolidationStats`` into this stage."""
        self.consolidations += stats.events
        self.shared_consolidations += stats.shared_events
        self.consolidation_fallbacks += stats.fallback_samples
        self.consolidation_seconds += stats.seconds
        self.max_width_inflation = max(
            self.max_width_inflation, stats.max_width_inflation
        )

    def record_peaks(self, results) -> None:
        """Track the largest measured error-term count of the stage."""
        for result in results:
            if result is not None and result.peak_error_terms:
                self.peak_error_terms = max(
                    self.peak_error_terms, result.peak_error_terms
                )

    def record_acceleration(self, results) -> None:
        """Fold phase-one iteration and acceleration counters of a batch."""
        for result in results:
            if result is None:
                continue
            self.phase1_iterations += result.iterations_phase1
            self.accel_accepted += int(result.accelerated)
            self.accel_proposals += result.accel_proposals

    def as_row(self) -> Dict:
        return {
            "domain": self.domain,
            "batch_size": self.batch_size,
            "attempted": self.attempted,
            "resolved": self.resolved,
            "certified": self.certified,
            "escalated": self.escalated,
            "batches": self.batches,
            "time": round(self.elapsed_seconds, 3),
            "consolidations": self.consolidations,
            "shared_consolidations": self.shared_consolidations,
            "consolidation_fallbacks": self.consolidation_fallbacks,
            "consolidation_time": round(self.consolidation_seconds, 3),
            "max_width_inflation": round(self.max_width_inflation, 3),
            "peak_error_terms": self.peak_error_terms,
            "estimated_error_terms": self.estimated_error_terms,
            "cache_dominance_hits": self.cache_dominance_hits,
            "phase1_iterations": self.phase1_iterations,
            "accel_accepted": self.accel_accepted,
            "accel_proposals": self.accel_proposals,
        }


def fold_dominance_hits(stage_rows: List[Dict], results) -> List[Dict]:
    """Attribute dominance-served verdicts to per-stage accounting rows.

    A dominance hit replays the serving entry's resolving stage, so it is
    counted against that stage's row (the stage whose work the cache
    saved).  Rows are copied, never mutated in place; stages that only
    appear through dominance hits (e.g. a sweep answered entirely from
    the cache, where no ladder ran) get a synthesised row, appended in
    ladder order.  Misclassified-point serves carry no stage (they never
    entered a waterfall) and are not attributed.
    """
    from repro.core.config import DOMAIN_LADDER

    hits: Dict[str, int] = {}
    for result in results:
        if (
            result is not None
            and result.cache_tier == "dominance"
            and result.stage is not None
        ):
            hits[result.stage] = hits.get(result.stage, 0) + 1
    if not hits:
        return stage_rows
    rows = [dict(row) for row in stage_rows]
    by_domain = {row["domain"]: row for row in rows}
    for name in DOMAIN_LADDER:
        if name in hits and name not in by_domain:
            row = StageStats(domain=name).as_row()
            rows.append(row)
            by_domain[name] = row
    for name, count in hits.items():
        if name in by_domain:
            by_domain[name]["cache_dominance_hits"] = (
                by_domain[name].get("cache_dominance_hits", 0) + count
            )
    return rows


class EscalationLadder:
    """Single-process waterfall over the stages of ``config.domains``.

    Each stage owns a :class:`~repro.engine.craft.BatchedCraft` built from
    the stage's single-domain configuration
    (:meth:`CraftConfig.stage_config`) and a stage-aware batch size
    (:func:`repro.engine.working_set.auto_batch_size` with the stage's
    domain layout — Box stages batch wide, CH-Zonotope stages keep the
    LLC fit).  A singleton ladder degrades to exactly the pre-escalation
    batched sweep.

    ``stage_stats`` holds the per-stage accounting of the most recent
    :meth:`certify_regions` call (the schedulers surface it through
    :class:`~repro.engine.results.EngineReport`).
    """

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        batch_size: Optional[int] = None,
    ):
        from repro.engine.craft import BatchedCraft
        from repro.engine.working_set import auto_batch_size, stage_error_term_estimates

        self.model = model
        self.config = config if config is not None else CraftConfig()
        self._stage_configs = self.config.stage_configs()
        self._crafts = [
            BatchedCraft(model, stage_config) for stage_config in self._stage_configs
        ]
        #: Analytic per-stage peak error-term estimates (the measured
        #: counterpart lands in ``StageStats.peak_error_terms``).
        self.estimated_error_terms: Dict[str, int] = stage_error_term_estimates(
            model, self.config
        )
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be positive")
        self.batch_sizes: Dict[str, int] = {
            stage_config.domain: (
                batch_size
                if batch_size is not None
                else auto_batch_size(model, stage_config, domain=stage_config.domain)
            )
            for stage_config in self._stage_configs
        }
        self.stage_stats: List[StageStats] = []
        self.num_batches: int = 0

    @property
    def domains(self) -> Sequence[str]:
        return self.config.domains

    # ------------------------------------------------------------------
    # Entry points (signature-compatible with BatchedCraft)
    # ------------------------------------------------------------------

    def certify(
        self,
        xs: np.ndarray,
        labels: np.ndarray,
        epsilon: float,
        clip_min: Optional[float] = 0.0,
        clip_max: Optional[float] = 1.0,
    ) -> List[VerificationResult]:
        """Waterfall counterpart of :meth:`BatchedCraft.certify`.

        One shared prediction pass short-circuits misclassified queries
        (the solver parameters are ladder-invariant, so its anchors are
        valid for every stage); correctly classified queries then climb
        the ladder.
        """
        from repro.engine.craft import prediction_pass

        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        labels = np.asarray(labels, dtype=int).reshape(-1)
        if xs.shape[0] != labels.shape[0]:
            raise VerificationError("xs and labels must have matching lengths")
        results, queued, anchors = prediction_pass(self.model, self.config, xs, labels)
        if queued:
            balls = [
                LinfBall(center=xs[i], epsilon=epsilon, clip_min=clip_min, clip_max=clip_max)
                for i in queued
            ]
            specs = [
                ClassificationSpec(target=int(labels[i]), num_classes=self.model.output_dim)
                for i in queued
            ]
            for index, result in zip(queued, self.certify_regions(balls, specs, anchors)):
                results[index] = result
        return results

    def certify_regions(
        self,
        balls: Sequence[LinfBall],
        specs: Sequence[ClassificationSpec],
        anchor_fixpoints: Optional[np.ndarray] = None,
    ) -> List[VerificationResult]:
        """Run the waterfall for every (precondition, postcondition) pair.

        Each stage certifies the still-pending queries in stage-sized
        batches; resolved verdicts exit, the rest re-enqueue into the next
        stage.  ``anchor_fixpoints`` rows are valid for every stage (the
        solver parameters are shared), so escalated queries reuse them.
        """
        balls = list(balls)
        specs = list(specs)
        if len(balls) != len(specs):
            raise VerificationError("balls and specs must have matching lengths")
        total = len(balls)
        results: List[Optional[VerificationResult]] = [None] * total
        anchors = (
            np.asarray(anchor_fixpoints) if anchor_fixpoints is not None else None
        )
        pending = list(range(total))
        self.stage_stats = [
            StageStats(
                domain=cfg.domain,
                batch_size=self.batch_sizes[cfg.domain],
                estimated_error_terms=self.estimated_error_terms[cfg.domain],
            )
            for cfg in self._stage_configs
        ]
        self.num_batches = 0
        last = len(self._crafts) - 1
        for stage_index, craft in enumerate(self._crafts):
            if not pending:
                break
            stats = self.stage_stats[stage_index]
            stats.attempted = len(pending)
            stage_start = time.perf_counter()
            escalated: List[int] = []
            batch = stats.batch_size
            for offset in range(0, len(pending), batch):
                chunk = pending[offset : offset + batch]
                chunk_results = craft.certify_regions(
                    [balls[i] for i in chunk],
                    [specs[i] for i in chunk],
                    anchors[chunk] if anchors is not None else None,
                )
                stats.batches += 1
                self.num_batches += 1
                stats.record_consolidation(craft.consolidation_stats)
                stats.record_peaks(chunk_results)
                stats.record_acceleration(chunk_results)
                for index, result in zip(chunk, chunk_results):
                    if stage_index == last or not should_escalate(result):
                        results[index] = result
                        stats.resolved += 1
                        stats.certified += int(result.certified)
                    else:
                        escalated.append(index)
            stats.escalated = len(escalated)
            stats.elapsed_seconds = time.perf_counter() - stage_start
            pending = escalated
        return results
