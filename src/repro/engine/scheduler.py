"""Batch scheduling over the tiered fixpoint-verdict cache.

The scheduler is the entry point the verification front-ends use: it takes
an arbitrary number of certification queries against one set of monDEQ
weights, answers what it can from the cache, chunks the misses into batches
of ``batch_size`` and runs :class:`~repro.engine.craft.BatchedCraft` per
chunk, then aggregates everything into an
:class:`~repro.engine.results.EngineReport`.

The cache machinery lives in :mod:`repro.engine.cache` (on-disk store,
exact/quantised keys, the dominance index and the in-memory LRU tier —
configured through :class:`~repro.core.config.CacheConfig`); the names
historically importable from this module (:class:`FixpointCache`,
:func:`config_fingerprint`, :func:`weights_hash`) are re-exported for
compatibility.  Re-running a sweep with unchanged weights (the Table 2 /
Fig. 11 setting) answers repeated queries from the cache — and, with the
dominance index, also answers *contained* repeat queries (cell splits,
jittered centres) that were never literally asked.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import CraftConfig
from repro.core.results import VerificationResult
from repro.engine.cache import (  # noqa: F401  (compatibility re-exports)
    FixpointCache,
    RegionQuery,
    TieredVerdictCache,
    _config_signature,
    build_verdict_cache,
    config_fingerprint,
    weights_hash,
)
from repro.engine.results import EngineReport
from repro.exceptions import ConfigurationError
from repro.mondeq.model import MonDEQ


class BatchCertificationScheduler:
    """Run certification queries through the escalation waterfall, batched.

    The scheduler owns one :class:`~repro.engine.escalation.EscalationLadder`
    — for single-domain configurations that is a one-stage waterfall, i.e.
    exactly the pre-escalation batched sweep; for ladder configurations
    (``CraftConfig.domains`` with several stages) every query starts in
    the cheapest domain and only unresolved queries climb.

    ``batch_size=None`` (the default) sizes every ladder stage from its
    own phase-two working-set estimate so one batch fits the last-level
    cache — see :mod:`repro.engine.working_set`; an integer pins the size
    for all stages (as does ``CraftConfig.engine_batch_size``).

    ``cache_dir`` enables the tiered verdict cache
    (:class:`~repro.engine.cache.TieredVerdictCache`): entries are keyed
    by the *ladder* configuration and record the resolving stage, so a
    cached verdict replays at its final stage without re-climbing the
    ladder; dominance hits replay the serving entry's stage and are
    counted per stage row (``cache_dominance_hits``).
    """

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        batch_size: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ):
        from repro.engine.escalation import EscalationLadder

        self.model = model
        self.config = config if config is not None else CraftConfig()
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be positive")
        self._ladder = EscalationLadder(model, self.config, batch_size=batch_size)
        # The advertised batch size is the final (most precise) stage's —
        # the one whose working set actually risks spilling the LLC.
        self.batch_size = self._ladder.batch_sizes[self.config.domain]
        self.stage_batch_sizes = dict(self._ladder.batch_sizes)
        self.cache = (
            build_verdict_cache(cache_dir, self.config, model)
            if cache_dir is not None
            else None
        )

    def certify(
        self,
        xs: np.ndarray,
        labels: Sequence[int],
        epsilon: float,
        clip_min: Optional[float] = 0.0,
        clip_max: Optional[float] = 1.0,
    ) -> EngineReport:
        """Certify every (row of ``xs``, label) query, using cache and batches."""
        from repro.engine.escalation import fold_dominance_hits

        start = time.perf_counter()
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        labels = np.asarray(labels, dtype=int).reshape(-1)
        total = xs.shape[0]
        results: List[Optional[VerificationResult]] = [None] * total

        queries: List[Optional[RegionQuery]] = [None] * total
        misses: List[int] = []
        cache_hits = 0
        dominance_hits = 0
        if self.cache is not None:
            # One incremental scan per sweep picks up entries concurrent
            # writers published since the last certify call.  Long-lived
            # holders outside the sweep lifecycle (the service frontend)
            # arm CacheConfig.refresh_seconds instead, which re-checks
            # staleness on lookup between these per-sweep scans.
            self.cache.refresh()
        for index in range(total):
            if self.cache is not None:
                query = RegionQuery(
                    center=xs[index], epsilon=epsilon, target=int(labels[index]),
                    clip_min=clip_min, clip_max=clip_max,
                )
                queries[index] = query
                cached = self.cache.lookup(query)
                if cached is not None:
                    results[index] = cached
                    cache_hits += 1
                    dominance_hits += int(cached.cache_tier == "dominance")
                    continue
            misses.append(index)

        num_batches = 0
        stage_rows: List[dict] = []
        if misses:
            miss_results = self._ladder.certify(
                xs[misses], labels[misses], epsilon, clip_min=clip_min, clip_max=clip_max
            )
            num_batches = self._ladder.num_batches
            stage_rows = [stats.as_row() for stats in self._ladder.stage_stats]
            for index, result in zip(misses, miss_results):
                results[index] = result
                if self.cache is not None:
                    self.cache.admit(queries[index], result)

        if dominance_hits:
            stage_rows = fold_dominance_hits(stage_rows, results)
        return EngineReport(
            results=results,
            cache_hits=cache_hits,
            cache_dominance_hits=dominance_hits,
            num_batches=num_batches,
            elapsed_seconds=time.perf_counter() - start,
            stages=stage_rows,
        )
