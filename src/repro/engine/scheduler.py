"""Batch scheduling and the on-disk fixpoint cache.

The scheduler is the entry point the verification front-ends use: it takes
an arbitrary number of certification queries against one set of monDEQ
weights, answers what it can from the cache, chunks the misses into batches
of ``batch_size`` and runs :class:`~repro.engine.craft.BatchedCraft` per
chunk, then aggregates everything into an
:class:`~repro.engine.results.EngineReport`.

Cache entries are keyed by ``sha256(weights hash | center bytes | epsilon |
clip range | target | config signature)`` — see :class:`FixpointCache` for
the exact layout — so re-running a sweep with unchanged weights (the
Table 2 / Fig. 11 setting) skips already-certified regions entirely.  Only
scalar verdict data (outcome, margin, iteration counts) is persisted; the
abstraction elements are not, since cached queries do not need them.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import CraftConfig
from repro.core.results import VerificationOutcome, VerificationResult
from repro.engine.results import EngineReport
from repro.exceptions import ConfigurationError
from repro.mondeq.model import MonDEQ


def weights_hash(model: MonDEQ) -> str:
    """A stable hexadecimal digest of the model's parameters."""
    digest = hashlib.sha256()
    for name in sorted(model.parameters()):
        array = np.ascontiguousarray(model.parameters()[name], dtype=float)
        digest.update(name.encode())
        digest.update(array.tobytes())
    digest.update(repr(float(model.monotonicity)).encode())
    return digest.hexdigest()


def _config_signature(config: CraftConfig) -> str:
    """The configuration fields that influence a certification verdict.

    The library version is part of the signature: an upgrade that changes
    certification behaviour (solver numerics, membership tolerances, …)
    must invalidate on-disk verdicts by construction.
    """
    import repro  # late import: repro/__init__ imports this module's package

    fields = (
        repro.__version__,
        config.domain, config.domains, config.solver1, config.alpha1, config.solver2,
        config.alpha2, tuple(config.alpha2_grid), config.expansion,
        config.w_mul, config.w_add, config.expansion_mul_growth,
        config.expansion_add_growth, config.expansion_growth_every,
        config.slope_optimization, tuple(config.slope_candidates_reduced),
        tuple(config.slope_candidates_reference), config.slope_margin_threshold,
        config.same_iteration_containment, config.use_box_component,
        config.tighten_max_iterations, config.tighten_patience,
        config.tighten_consolidate_every,
        config.consolidation_basis, config.shared_basis_max_inflation,
        config.stage_phase_one_budgets,
        config.concrete_tol, config.concrete_max_iterations,
        config.contraction.max_iterations, config.contraction.consolidate_every,
        config.contraction.basis_recompute_every, config.contraction.history_size,
        config.contraction.abort_width,
    )
    return repr(fields)


def config_fingerprint(config: CraftConfig) -> str:
    """Version stamp persisted inside every cache entry.

    The query *key* already hashes the configuration, so a mismatched
    config cannot hit by key alone; the stamp additionally travels inside
    the payload so an entry can prove which configuration (and library
    version) wrote it.  That makes corruption and key-collision scenarios
    fail closed — and it is the hook a future quantised/nearest-neighbour
    keying mode needs, where the key will no longer pin the exact config.
    """
    return hashlib.sha256(_config_signature(config).encode()).hexdigest()


class FixpointCache:
    """Directory-backed cache of certification verdicts.

    One JSON file per query, named by the query key.  Values restore a
    :class:`VerificationResult` without the abstraction elements (which are
    only needed by the live certification path, never by cache consumers).

    The cache is safe for concurrent writers *without file locking*: every
    entry is its own file, written to a writer-unique temporary name and
    published with the atomic ``os.replace`` — readers observe either the
    previous entry or the complete new one, never a torn write.  When a
    ``signature`` (see :func:`config_fingerprint`) is given, entries
    stamped by a different configuration are rejected on load.
    """

    #: Scratch files older than this are presumed orphaned (a worker killed
    #: between writing and publishing) and swept on cache construction; no
    #: live writer holds a scratch file anywhere near this long.
    STALE_TMP_SECONDS = 600.0

    def __init__(self, directory: str, signature: Optional[str] = None):
        self.directory = directory
        self.signature = signature
        os.makedirs(directory, exist_ok=True)
        self._sweep_stale_scratch()

    def _sweep_stale_scratch(self) -> None:
        cutoff = time.time() - self.STALE_TMP_SECONDS
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.directory, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
            except OSError:
                continue

    @staticmethod
    def query_key(
        model_digest: str,
        center: np.ndarray,
        epsilon: float,
        target: int,
        config: CraftConfig,
        clip_min: Optional[float],
        clip_max: Optional[float],
    ) -> str:
        digest = hashlib.sha256()
        digest.update(model_digest.encode())
        digest.update(np.ascontiguousarray(center, dtype=float).tobytes())
        digest.update(repr((float(epsilon), clip_min, clip_max, int(target))).encode())
        digest.update(_config_signature(config).encode())
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[VerificationResult]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if self.signature is not None and data.get("signature") != self.signature:
            # Version stamp mismatch: the entry was written by a different
            # configuration or library version.  Treat it as a miss so the
            # query is re-certified and the entry overwritten.
            return None
        return VerificationResult(
            outcome=VerificationOutcome(data["outcome"]),
            contained=bool(data["contained"]),
            certified=bool(data["certified"]),
            margin=float(data["margin"]),
            iterations_phase1=int(data["iterations_phase1"]),
            iterations_phase2=int(data["iterations_phase2"]),
            time_seconds=float(data["time_seconds"]),
            selected_alpha2=data.get("selected_alpha2"),
            selected_solver2=data.get("selected_solver2"),
            slope_optimized=bool(data.get("slope_optimized", False)),
            notes=data.get("notes", "") + " [cached]",
            # The resolving ladder stage travels with the verdict, so a
            # cached escalation-sweep query replays at its final stage
            # without re-climbing the ladder.
            stage=data.get("stage"),
            cached=True,
            peak_error_terms=data.get("peak_error_terms"),
        )

    def store(self, key: str, result: VerificationResult) -> None:
        payload = {
            "outcome": result.outcome.value,
            "contained": result.contained,
            "certified": result.certified,
            # json round-trips -Infinity natively, so -inf margins
            # (misclassified / no-containment queries) survive unchanged.
            "margin": float(result.margin),
            "iterations_phase1": result.iterations_phase1,
            "iterations_phase2": result.iterations_phase2,
            "time_seconds": result.time_seconds,
            "selected_alpha2": result.selected_alpha2,
            "selected_solver2": result.selected_solver2,
            "slope_optimized": result.slope_optimized,
            "notes": result.notes,
            "signature": self.signature,
            "stage": result.stage,
            "peak_error_terms": result.peak_error_terms,
        }
        path = self._path(key)
        # The temporary name is writer-unique (pid + fresh uuid, so two
        # cache instances or threads in one process cannot collide either);
        # os.replace then publishes atomically on POSIX.
        temporary = f"{path}.{os.getpid()}.{uuid.uuid4().hex[:12]}.tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temporary, path)


class BatchCertificationScheduler:
    """Run certification queries through the escalation waterfall, batched.

    The scheduler owns one :class:`~repro.engine.escalation.EscalationLadder`
    — for single-domain configurations that is a one-stage waterfall, i.e.
    exactly the pre-escalation batched sweep; for ladder configurations
    (``CraftConfig.domains`` with several stages) every query starts in
    the cheapest domain and only unresolved queries climb.

    ``batch_size=None`` (the default) sizes every ladder stage from its
    own phase-two working-set estimate so one batch fits the last-level
    cache — see :mod:`repro.engine.working_set`; an integer pins the size
    for all stages (as does ``CraftConfig.engine_batch_size``).

    Cache entries are keyed by the *ladder* configuration and record the
    resolving stage, so a cached verdict replays at its final stage
    without re-climbing the ladder.
    """

    def __init__(
        self,
        model: MonDEQ,
        config: Optional[CraftConfig] = None,
        batch_size: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ):
        from repro.engine.escalation import EscalationLadder

        self.model = model
        self.config = config if config is not None else CraftConfig()
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be positive")
        self._ladder = EscalationLadder(model, self.config, batch_size=batch_size)
        # The advertised batch size is the final (most precise) stage's —
        # the one whose working set actually risks spilling the LLC.
        self.batch_size = self._ladder.batch_sizes[self.config.domain]
        self.stage_batch_sizes = dict(self._ladder.batch_sizes)
        self.cache = (
            FixpointCache(cache_dir, signature=config_fingerprint(self.config))
            if cache_dir is not None
            else None
        )
        self._model_digest = weights_hash(model) if self.cache is not None else None

    def certify(
        self,
        xs: np.ndarray,
        labels: Sequence[int],
        epsilon: float,
        clip_min: Optional[float] = 0.0,
        clip_max: Optional[float] = 1.0,
    ) -> EngineReport:
        """Certify every (row of ``xs``, label) query, using cache and batches."""
        start = time.perf_counter()
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        labels = np.asarray(labels, dtype=int).reshape(-1)
        total = xs.shape[0]
        results: List[Optional[VerificationResult]] = [None] * total

        keys: List[Optional[str]] = [None] * total
        misses: List[int] = []
        cache_hits = 0
        for index in range(total):
            if self.cache is not None:
                key = FixpointCache.query_key(
                    self._model_digest, xs[index], epsilon, int(labels[index]),
                    self.config, clip_min, clip_max,
                )
                keys[index] = key
                cached = self.cache.load(key)
                if cached is not None:
                    results[index] = cached
                    cache_hits += 1
                    continue
            misses.append(index)

        num_batches = 0
        stage_rows: List[dict] = []
        if misses:
            miss_results = self._ladder.certify(
                xs[misses], labels[misses], epsilon, clip_min=clip_min, clip_max=clip_max
            )
            num_batches = self._ladder.num_batches
            stage_rows = [stats.as_row() for stats in self._ladder.stage_stats]
            for index, result in zip(misses, miss_results):
                results[index] = result
                if self.cache is not None:
                    self.cache.store(keys[index], result)

        return EngineReport(
            results=results,
            cache_hits=cache_hits,
            num_batches=num_batches,
            elapsed_seconds=time.perf_counter() - start,
            stages=stage_rows,
        )
