"""Global robustness certification on the HCAS setting (Section 6.2, Fig. 11).

A monDEQ is trained on the tabular policy produced by the HCAS MDP
substrate (:mod:`repro.datasets.hcas`); domain splitting then certifies
that the monDEQ's advisory is constant over cells of the (x, y) input
slice, reproducing the certified-decision-region picture of Fig. 11 and the
coverage number reported in the text (82.8 % in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import ContractionSettings, CraftConfig
from repro.datasets.hcas import ACTION_NAMES, HCASGrid, make_hcas_dataset
from repro.experiments.model_zoo import get_model
from repro.mondeq.model import MonDEQ
from repro.verify.global_cert import DomainSplittingCertifier, GlobalCertificationResult
from repro.verify.specs import ClassificationSpec
from repro.domains.interval import Interval


@dataclass
class HCASExperimentResult:
    """Coverage and per-cell decisions of the HCAS certification."""

    coverage: float
    certified_cells: int
    total_cells: int
    table_accuracy: float
    cells: List[Dict]

    def summary(self) -> Dict[str, float]:
        return {
            "coverage": self.coverage,
            "certified_cells": self.certified_cells,
            "total_cells": self.total_cells,
            "table_accuracy": self.table_accuracy,
        }


def _grid_for_scale(scale: str) -> HCASGrid:
    grids = {
        "smoke": HCASGrid(x_points=7, y_points=7, theta_points=5, horizon=12),
        "small": HCASGrid(x_points=11, y_points=11, theta_points=7, horizon=20),
        "full": HCASGrid(),
    }
    return grids[scale]


def run_hcas(
    scale: str = "small",
    theta: float = -90.0,
    config: Optional[CraftConfig] = None,
    max_depth: Optional[int] = None,
) -> HCASExperimentResult:
    """Certify the HCAS monDEQ's advisories over the ``theta``-slice of the
    input space via domain splitting (Fig. 11)."""
    model, dataset = get_model("HCAS-FCx100", scale)
    if config is None:
        config = CraftConfig(
            slope_optimization="none",
            contraction=ContractionSettings(max_iterations=300),
        )
    if max_depth is None:
        max_depth = {"smoke": 2, "small": 3, "full": 5}[scale]

    accuracy = float(
        np.mean(model.predict_batch(dataset.x_test[:50]) == dataset.y_test[:50])
    )

    # The certified slice: x and y span the normalised feature cube, theta is
    # pinned to the slice value (a thin interval, as in Fig. 11).
    hcas = make_hcas_dataset(_grid_for_scale(scale), seed=0)
    theta_feature = float((theta - hcas.feature_low[2]) / hcas.feature_scale[2])
    theta_halfwidth = 0.5 / hcas.feature_scale[2]

    certifier = DomainSplittingCertifier(model, config, max_depth=max_depth)
    region = Interval(
        np.array([0.0, 0.0, theta_feature - theta_halfwidth]),
        np.array([1.0, 1.0, theta_feature + theta_halfwidth]),
    )
    result = certifier.certify_region(region)
    cells = [
        {
            "lower": cell.region.lower.tolist(),
            "upper": cell.region.upper.tolist(),
            "action": ACTION_NAMES[cell.predicted_class],
            "certified": cell.certified,
            "depth": cell.depth,
        }
        for cell in result.cells
    ]
    return HCASExperimentResult(
        coverage=result.coverage,
        certified_cells=len(result.certified_cells()),
        total_cells=len(result.cells),
        table_accuracy=accuracy,
        cells=cells,
    )


def policy_slice_table(scale: str = "small", theta: float = -90.0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ground-truth policy slice of Fig. 11 (left panel)."""
    hcas = make_hcas_dataset(_grid_for_scale(scale), seed=0)
    return hcas.policy_slice(theta)
