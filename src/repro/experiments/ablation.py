"""Ablation study on Craft's components (Table 4).

Each row disables or modifies one component of the reference configuration
(CH-Zonotope with PR-then-FB, slope optimisation, expansion) and re-runs the
local-robustness evaluation on the FCx87-scale model:

* ``no_zono_component``  — Box domain only.
* ``no_box_component``   — CH-Zonotope without the Box error vector.
* ``only_pr`` / ``only_fb`` — a single operator-splitting method for both
  phases.
* ``no_lambda_optimization`` / ``reduced_lambda_optimization`` — ReLU slope
  optimisation off / coarse.
* ``same_iteration_containment`` — certification only from states contained
  in their immediate predecessor (no fixpoint-set preservation).
* ``no_expansion`` — expansion disabled.
* ``escalation_ladder`` — the per-query domain waterfall (Box → Zonotope →
  CH-Zonotope): same final precision as the reference, cheap stages absorb
  the easy queries; the row's ``stages`` histogram shows where queries
  resolved.

Every row's sweep routes through the multi-domain batched certification
engine by default (``engine="batched"``) — the Box rows batch exactly like
the CH-Zonotope rows since the engine dispatches on ``CraftConfig.domain``.
``engine="sharded"`` fans each row out over worker processes and
``engine="sequential"`` restores the per-sample reference loop; all engines
produce identical counts (the parity contract).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import CraftConfig
from repro.core.results import VerificationOutcome
from repro.experiments.model_zoo import get_model
from repro.verify.robustness import certify_local_robustness

ABLATION_NAMES: Sequence[str] = (
    "reference",
    "no_zono_component",
    "no_box_component",
    "only_pr",
    "only_fb",
    "no_lambda_optimization",
    "reduced_lambda_optimization",
    "same_iteration_containment",
    "no_expansion",
    "escalation_ladder",
)

_SAMPLES_BY_SCALE = {"smoke": 4, "small": 16, "full": 40}


def run_table4(
    scale: str = "small",
    model_name: str = "FCx87",
    epsilon: float = 0.05,
    ablations: Optional[Sequence[str]] = None,
    max_samples: Optional[int] = None,
    engine: str = "batched",
    num_workers: Optional[int] = None,
) -> List[Dict]:
    """Containment count, certified count and mean runtime per ablation.

    ``engine`` selects the execution strategy for every row's sweep
    (``"batched"`` by default; ``"sharded"`` / ``"sequential"`` as in
    :func:`repro.verify.robustness.certify_local_robustness`).
    Misclassified samples are excluded from the per-row statistics, exactly
    as in the sequential implementation — the engines' prediction pass
    short-circuits them with a ``MISCLASSIFIED`` outcome.
    """
    model, dataset = get_model(model_name, scale)
    if ablations is None:
        ablations = ABLATION_NAMES if scale != "smoke" else ("reference", "no_zono_component")
    if max_samples is None:
        max_samples = _SAMPLES_BY_SCALE[scale]
    xs = dataset.x_test[:max_samples]
    ys = dataset.y_test[:max_samples].astype(int)

    rows = []
    for name in ablations:
        config = CraftConfig.ablation(name)
        results = certify_local_robustness(
            model, xs, ys, epsilon, config, engine=engine, num_workers=num_workers
        )
        evaluated = [
            result
            for result in results
            if result.outcome != VerificationOutcome.MISCLASSIFIED
        ]
        from repro.engine.escalation import stage_histogram

        rows.append(
            {
                "ablation": name,
                "evaluated": len(evaluated),
                "contained": sum(result.contained for result in evaluated),
                "certified": sum(result.certified for result in evaluated),
                "time": (
                    float(np.mean([result.time_seconds for result in evaluated]))
                    if evaluated
                    else 0.0
                ),
                # Resolving-stage histogram: single-domain rows collapse to
                # one stage; the escalation_ladder row shows the waterfall.
                "stages": stage_histogram(evaluated),
            }
        )
    return rows
