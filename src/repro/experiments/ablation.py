"""Ablation study on Craft's components (Table 4).

Each row disables or modifies one component of the reference configuration
(CH-Zonotope with PR-then-FB, slope optimisation, expansion) and re-runs the
local-robustness evaluation on the FCx87-scale model:

* ``no_zono_component``  — Box domain only.
* ``no_box_component``   — CH-Zonotope without the Box error vector.
* ``only_pr`` / ``only_fb`` — a single operator-splitting method for both
  phases.
* ``no_lambda_optimization`` / ``reduced_lambda_optimization`` — ReLU slope
  optimisation off / coarse.
* ``same_iteration_containment`` — certification only from states contained
  in their immediate predecessor (no fixpoint-set preservation).
* ``no_expansion`` — expansion disabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import CraftConfig
from repro.experiments.model_zoo import get_model
from repro.verify.robustness import certify_sample

ABLATION_NAMES: Sequence[str] = (
    "reference",
    "no_zono_component",
    "no_box_component",
    "only_pr",
    "only_fb",
    "no_lambda_optimization",
    "reduced_lambda_optimization",
    "same_iteration_containment",
    "no_expansion",
)

_SAMPLES_BY_SCALE = {"smoke": 4, "small": 16, "full": 40}


def run_table4(
    scale: str = "small",
    model_name: str = "FCx87",
    epsilon: float = 0.05,
    ablations: Optional[Sequence[str]] = None,
    max_samples: Optional[int] = None,
) -> List[Dict]:
    """Containment count, certified count and mean runtime per ablation."""
    model, dataset = get_model(model_name, scale)
    if ablations is None:
        ablations = ABLATION_NAMES if scale != "smoke" else ("reference", "no_zono_component")
    if max_samples is None:
        max_samples = _SAMPLES_BY_SCALE[scale]
    xs = dataset.x_test[:max_samples]
    ys = dataset.y_test[:max_samples]

    rows = []
    for name in ablations:
        config = CraftConfig.ablation(name)
        contained = 0
        certified = 0
        times = []
        evaluated = 0
        for x, label in zip(xs, ys):
            if model.predict(x) != int(label):
                continue
            evaluated += 1
            result = certify_sample(model, x, int(label), epsilon, config)
            contained += result.contained
            certified += result.certified
            times.append(result.time_seconds)
        rows.append(
            {
                "ablation": name,
                "evaluated": evaluated,
                "contained": contained,
                "certified": certified,
                "time": float(np.mean(times)) if times else 0.0,
            }
        )
    return rows
