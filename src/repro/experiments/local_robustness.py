"""Local-robustness experiments: Tables 2 and 3, Figs. 12, 13, 17 and 20.

All runners work on the scaled-down model zoo (see
:mod:`repro.experiments.model_zoo` and DESIGN.md for the substitutions) and
return plain dictionaries/lists so the benchmark harness can print the same
rows/series as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import ContractionSettings, CraftConfig
from repro.core.contraction import ContractionEngine, domain_ops_for
from repro.core.craft import CraftVerifier
from repro.core.expansion import ExpansionSchedule
from repro.domains.zonotope import Zonotope
from repro.experiments.model_zoo import get_model
from repro.mondeq.abstract_solvers import (
    build_initial_state,
    layout_for,
    make_abstract_step,
    make_output_map,
)
from repro.mondeq.attacks import PGDConfig
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import solve_fixpoint
from repro.verify.baselines import LipschitzVerifier, SemiSDPSurrogate
from repro.verify.robustness import RobustnessVerifier, build_fixpoint_problem, certify_sample
from repro.verify.specs import ClassificationSpec, LinfBall

_SAMPLES_BY_SCALE = {"smoke": 4, "small": 20, "full": 60}
_EPSILONS_MNIST = 0.05
_EPSILONS_CIFAR = 2.0 / 255.0


def _default_config() -> CraftConfig:
    return CraftConfig(slope_optimization="reduced")


def _attack_config(scale: str) -> PGDConfig:
    if scale == "smoke":
        return PGDConfig(steps=5, restarts=1)
    if scale == "small":
        return PGDConfig(steps=10, restarts=2)
    return PGDConfig(steps=30, restarts=3, targeted=True)


# ----------------------------------------------------------------------
# Table 2 — local robustness certification across architectures
# ----------------------------------------------------------------------


def run_table2(
    scale: str = "small",
    models: Optional[Sequence[str]] = None,
    config: Optional[CraftConfig] = None,
) -> List[Dict]:
    """Certified accuracy, containment count and runtime per architecture.

    Mirrors Table 2: one row per (dataset, model) pair with the columns
    ``acc`` (#correct), ``bound`` (#PGD-robust), ``cont`` (#contained),
    ``cert`` (#certified) and the mean per-sample time.
    """
    if models is None:
        models = ["FCx40", "FCx87", "FCx100", "ConvSmall-MNIST", "FCx200-CIFAR"]
        if scale == "smoke":
            models = ["FCx40"]
    config = config if config is not None else _default_config()
    rows = []
    for name in models:
        model, dataset = get_model(name, scale)
        epsilon = _EPSILONS_CIFAR if dataset.name == "cifar_like" else _EPSILONS_MNIST
        verifier = RobustnessVerifier(model, config, _attack_config(scale))
        report = verifier.evaluate(
            dataset.x_test, dataset.y_test, epsilon,
            max_samples=_SAMPLES_BY_SCALE[scale],
        )
        row = report.as_row()
        row["dataset"] = dataset.name
        row["latent"] = model.latent_dim
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 3 — comparison against the SemiSDP surrogate and Lipschitz bounds
# ----------------------------------------------------------------------


def run_table3(
    scale: str = "small",
    models: Optional[Sequence[str]] = None,
    epsilons: Sequence[float] = (0.01, 0.02, 0.05, 0.07, 0.1),
    config: Optional[CraftConfig] = None,
) -> List[Dict]:
    """Craft vs the SemiSDP surrogate (and the global-Lipschitz baseline).

    One row per (model, epsilon) with certified counts and mean runtimes for
    each verifier; the SemiSDP column uses the calibrated surrogate
    documented in DESIGN.md (its ``#Cert.`` is computed, its runtime is the
    published scaling model).
    """
    if models is None:
        models = ["FCx40", "FCx87"] if scale != "smoke" else ["FCx40"]
    config = config if config is not None else _default_config()
    num_samples = _SAMPLES_BY_SCALE[scale]
    rows = []
    for name in models:
        model, dataset = get_model(name, scale)
        surrogate = SemiSDPSurrogate(model)
        lipschitz = LipschitzVerifier(model)
        xs = dataset.x_test[:num_samples]
        ys = dataset.y_test[:num_samples]
        for epsilon in epsilons:
            craft_certified = 0
            craft_times = []
            semisdp_certified = 0
            lipschitz_certified = 0
            bound = 0
            correct = 0
            attack_config = _attack_config(scale)
            verifier = RobustnessVerifier(model, config, attack_config)
            report = verifier.evaluate(xs, ys, epsilon, max_samples=num_samples)
            for record, x, label in zip(report.records, xs, ys):
                correct += record.correct
                bound += bool(record.empirically_robust)
                craft_certified += record.certified
                if record.correct:
                    craft_times.append(record.time_seconds)
                    semisdp_certified += surrogate.certify(x, int(label), epsilon).certified
                    lipschitz_certified += lipschitz.certify(x, int(label), epsilon).certified
            rows.append(
                {
                    "model": name,
                    "latent": model.latent_dim,
                    "epsilon": epsilon,
                    "acc": correct,
                    "bound": bound,
                    "craft_cert": craft_certified,
                    "craft_time": float(np.mean(craft_times)) if craft_times else 0.0,
                    "semisdp_cert": semisdp_certified,
                    "semisdp_time_model": surrogate.modelled_runtime(),
                    "lipschitz_cert": lipschitz_certified,
                    "samples": num_samples,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 12 — stability with respect to the damping parameter alpha
# ----------------------------------------------------------------------


def run_alpha_stability(
    scale: str = "small",
    model_name: str = "FCx40",
    alphas: Sequence[float] = (0.01, 0.02, 0.04, 0.06, 0.08, 0.1, 0.12, 0.15),
    epsilon: float = _EPSILONS_MNIST,
    solvers: Sequence[str] = ("pr", "fb"),
    use_box: Sequence[bool] = (True, False),
    max_samples: Optional[int] = None,
) -> List[Dict]:
    """Containment / certification counts as a function of alpha (Fig. 12).

    For each (solver, with/without Box component, alpha) configuration the
    runner counts for how many samples the containment phase succeeds and
    how many are certified, reproducing the stability-range comparison.
    """
    model, dataset = get_model(model_name, scale)
    if max_samples is None:
        max_samples = max(4, _SAMPLES_BY_SCALE[scale] // 2)
    xs = dataset.x_test[:max_samples]
    ys = dataset.y_test[:max_samples]
    rows = []
    for solver in solvers:
        for box in use_box:
            for alpha in alphas:
                config = CraftConfig(
                    solver1=solver,
                    alpha1=float(alpha),
                    solver2="fb" if solver == "pr" else "fb",
                    slope_optimization="none",
                    use_box_component=box,
                )
                contained = 0
                certified = 0
                for x, label in zip(xs, ys):
                    if model.predict(x) != int(label):
                        continue
                    result = certify_sample(model, x, int(label), epsilon, config)
                    contained += result.contained
                    certified += result.certified
                rows.append(
                    {
                        "solver": solver,
                        "box_component": box,
                        "alpha": float(alpha),
                        "contained": contained,
                        "certified": certified,
                        "samples": int(max_samples),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Fig. 13 — mean concretisation width over solver iterations
# ----------------------------------------------------------------------


def run_width_trace(
    scale: str = "small",
    model_name: str = "FCx40",
    epsilon: float = _EPSILONS_MNIST,
    iterations: int = 40,
    sample_index: int = 0,
) -> Dict[str, List[float]]:
    """Mean width of the state abstraction per iteration, Box vs CH-Zonotope,
    for FB and PR splitting (Fig. 13)."""
    model, dataset = get_model(model_name, scale)
    x = dataset.x_test[sample_index]
    traces: Dict[str, List[float]] = {}
    for solver in ("fb", "pr"):
        for domain in ("box", "chzonotope"):
            alpha = 0.4 * model.fb_alpha_bound() if solver == "fb" else 0.1
            config = CraftConfig(
                domain=domain, solver1=solver, solver2="fb", alpha1=alpha,
                slope_optimization="none",
                contraction=ContractionSettings(max_iterations=iterations, abort_width=1e6),
            )
            problem = build_fixpoint_problem(
                model,
                LinfBall(center=x, epsilon=epsilon),
                ClassificationSpec(target=int(model.predict(x)), num_classes=model.output_dim),
                config,
            )
            engine = ContractionEngine(
                config.contraction, domain_ops_for(domain), ExpansionSchedule.from_config(config)
            )
            result = engine.run(problem.contraction_step, problem.initial_state)
            trace = list(result.width_trace)
            traces[f"{solver}_{domain}"] = trace
    return traces


# ----------------------------------------------------------------------
# Fig. 17 — adaptive alpha2 selection
# ----------------------------------------------------------------------


def run_adaptive_alpha(
    scale: str = "small",
    model_name: str = "FCx40",
    alpha1_values: Sequence[float] = (0.02, 0.12),
    epsilon: float = _EPSILONS_MNIST,
    max_samples: Optional[int] = None,
) -> List[Dict]:
    """Distribution of the line-searched alpha2 for different alpha1 (Fig. 17)."""
    model, dataset = get_model(model_name, scale)
    if max_samples is None:
        max_samples = max(4, _SAMPLES_BY_SCALE[scale] // 2)
    rows = []
    for alpha1 in alpha1_values:
        config = CraftConfig(solver1="pr", alpha1=float(alpha1), solver2="fb",
                             slope_optimization="none")
        for index in range(max_samples):
            x = dataset.x_test[index]
            label = int(dataset.y_test[index])
            if model.predict(x) != label:
                continue
            result = certify_sample(model, x, label, epsilon, config)
            if result.selected_alpha2 is None:
                continue
            rows.append(
                {
                    "alpha1": float(alpha1),
                    "alpha2": float(result.selected_alpha2),
                    "verified": bool(result.certified),
                    "sample": index,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 20 — sound CH-Zonotope bounds vs unsound Zonotope replay
# ----------------------------------------------------------------------


def run_unsound_zonotope_comparison(
    scale: str = "small",
    model_name: str = "FCx40",
    epsilon: float = _EPSILONS_MNIST,
    max_samples: Optional[int] = None,
    config: Optional[CraftConfig] = None,
) -> List[Dict]:
    """Compare the verification-objective bounds obtained with CH-Zonotope
    (consolidation + containment checks, sound) against a plain Zonotope
    replay of the same number of solver iterations without consolidation
    (no containment, hence unsound) — Fig. 20.
    """
    model, dataset = get_model(model_name, scale)
    config = config if config is not None else CraftConfig(slope_optimization="none")
    if max_samples is None:
        max_samples = max(4, _SAMPLES_BY_SCALE[scale] // 2)
    verifier = CraftVerifier(config)
    rows = []
    for index in range(max_samples):
        x = dataset.x_test[index]
        label = int(dataset.y_test[index])
        if model.predict(x) != label:
            continue
        ball = LinfBall(center=x, epsilon=epsilon)
        spec = ClassificationSpec(target=label, num_classes=model.output_dim)
        problem = build_fixpoint_problem(model, ball, spec, config)
        result = verifier.solve(problem)
        if not result.contained:
            continue
        total_iterations = result.iterations_phase1 + result.iterations_phase2

        # Unsound replay: the same solver iterations on a plain Zonotope,
        # no consolidation, no containment check.
        layout = layout_for(model, config.solver1)
        concrete = solve_fixpoint(model, x, method=config.solver1, alpha=config.alpha1)
        state = build_initial_state(model, layout, concrete.z, domain=Zonotope)
        step = make_abstract_step(model, layout, ball.to_zonotope(), config.solver1, config.alpha1)
        for _ in range(total_iterations):
            state = step(state)
        output = make_output_map(model, layout)(state)
        unsound_check = spec.evaluate(output)

        rows.append(
            {
                "sample": index,
                "verified": bool(result.certified),
                "craft_lower_bound": float(result.margin),
                "craft_width": _bound_width(result),
                "unsound_lower_bound": float(unsound_check.margin),
                "unsound_width": float(np.mean(output.width)),
                "iterations": int(total_iterations),
            }
        )
    return rows


def _bound_width(result) -> float:
    if result.output_element is None:
        return float("nan")
    return float(np.mean(result.output_element.width))
