"""Square-root case study (Section 6.5, Appendix A; Tables 5/6, Fig. 16)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.numerics.householder import (
    analyze_root_craft,
    analyze_root_kleene,
    exact_root_interval,
)

DEFAULT_INTERVALS: Sequence[Tuple[float, float]] = ((16.0, 20.0), (16.0, 25.0))


def run_table5(
    intervals: Sequence[Tuple[float, float]] = DEFAULT_INTERVALS,
    include_strong_kleene: bool = True,
) -> List[Dict]:
    """Fixpoint over-approximations per method and input interval.

    One row per input interval with the root interval (``1 / gamma(S*)``)
    obtained by the exact computation, Craft (fixpoints and reachable
    values, Table 6), and Kleene iteration with the conventional Zonotope
    transformer.  ``include_strong_kleene`` additionally reports Kleene with
    the same Taylor transformer Craft uses, to separate the effect of the
    termination strategy from that of the transformer.
    """
    rows = []
    for x_low, x_high in intervals:
        exact = exact_root_interval(x_low, x_high)
        craft = analyze_root_craft(x_low, x_high)
        kleene = analyze_root_kleene(x_low, x_high)
        row = {
            "interval": (x_low, x_high),
            "exact": exact,
            "craft_converged": craft.converged,
            "craft_fixpoints": craft.root_interval,
            "craft_reachable": craft.reachable_root_interval,
            "craft_iterations": craft.iterations,
            "kleene_converged": kleene.converged,
            "kleene_fixpoints": kleene.root_interval,
            "kleene_iterations": kleene.iterations,
        }
        if include_strong_kleene:
            strong = analyze_root_kleene(x_low, x_high, transformer="taylor")
            row["kleene_taylor_converged"] = strong.converged
            row["kleene_taylor_fixpoints"] = strong.root_interval
        rows.append(row)
    return rows


def run_fig16(
    intervals: Sequence[Tuple[float, float]] = DEFAULT_INTERVALS,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-iteration s-interval traces for Craft and Kleene (Fig. 16).

    The traces are reported as ``sqrt(x)`` estimates (``1/s``) per
    iteration, clipped to finite values where the abstraction still has a
    positive lower bound.
    """
    traces: Dict[str, List[Tuple[float, float]]] = {}
    for x_low, x_high in intervals:
        craft = analyze_root_craft(x_low, x_high)
        kleene = analyze_root_kleene(x_low, x_high)
        key = f"[{x_low:g},{x_high:g}]"
        traces[f"craft {key}"] = [_reciprocal(bounds) for bounds in craft.s_trace]
        traces[f"kleene {key}"] = [_reciprocal(bounds) for bounds in kleene.s_trace]
    return traces


def _reciprocal(bounds: Tuple[float, float]) -> Tuple[float, float]:
    low, high = bounds
    if low <= 0:
        return (0.0, float(np.inf))
    return (1.0 / high, 1.0 / low)
