"""Named monDEQ architectures trained on the synthetic datasets.

The paper evaluates FCx40 … FCx200 and ConvSmall monDEQs trained on MNIST
and CIFAR10.  This zoo provides scaled-down but structurally matching
counterparts trained on the synthetic stand-in datasets (see DESIGN.md);
the ``scale`` argument controls how far they are scaled down:

* ``smoke`` — tiny models for unit tests and CI (seconds).
* ``small`` — the default for the benchmark harness (a few minutes total).
* ``full``  — the largest configuration this environment supports.

Models are trained on demand and cached in memory (and optionally on disk)
so that different experiments share them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.datasets.synthetic import Dataset, make_cifar_like, make_mnist_like
from repro.exceptions import ConfigurationError
from repro.mondeq.conv import make_conv_mondeq
from repro.mondeq.model import MonDEQ
from repro.mondeq.training import TrainingConfig, train

_SCALES = ("smoke", "small", "full")


@dataclass(frozen=True)
class ModelSpec:
    """Description of one zoo entry."""

    name: str
    dataset: str
    latent_dim: int
    convolutional: bool = False
    latent_channels: int = 4
    monotonicity: float = 20.0
    epochs: int = 30
    learning_rate: float = 5e-3
    seed: int = 0

    def scaled(self, scale: str) -> "ModelSpec":
        """Return the spec adjusted for the requested scale."""
        if scale not in _SCALES:
            raise ConfigurationError(f"unknown scale {scale!r}; choose from {_SCALES}")
        if scale == "full":
            return self
        if scale == "small":
            return replace(self, latent_dim=max(8, self.latent_dim // 2), epochs=max(10, self.epochs // 2))
        return replace(self, latent_dim=max(6, self.latent_dim // 4), epochs=8)


# The paper's architectures, scaled to this environment (DESIGN.md).
MODEL_SPECS: Dict[str, ModelSpec] = {
    "FCx40": ModelSpec(name="FCx40", dataset="mnist_like", latent_dim=40),
    "FCx87": ModelSpec(name="FCx87", dataset="mnist_like", latent_dim=87 // 2),
    "FCx100": ModelSpec(name="FCx100", dataset="mnist_like", latent_dim=100 // 2),
    "FCx200": ModelSpec(name="FCx200", dataset="mnist_like", latent_dim=200 // 4),
    "ConvSmall-MNIST": ModelSpec(
        name="ConvSmall-MNIST", dataset="mnist_like", latent_dim=0,
        convolutional=True, latent_channels=4,
    ),
    "FCx200-CIFAR": ModelSpec(name="FCx200-CIFAR", dataset="cifar_like", latent_dim=200 // 4),
    "ConvSmall-CIFAR": ModelSpec(
        name="ConvSmall-CIFAR", dataset="cifar_like", latent_dim=0,
        convolutional=True, latent_channels=4,
    ),
    "HCAS-FCx100": ModelSpec(
        name="HCAS-FCx100", dataset="hcas", latent_dim=24, epochs=40, learning_rate=1e-2
    ),
}

_DATASET_CACHE: Dict[Tuple[str, str], Dataset] = {}
_MODEL_CACHE: Dict[Tuple[str, str], Tuple[MonDEQ, Dataset]] = {}


def get_dataset(name: str, scale: str = "small") -> Dataset:
    """Return (and cache) the named dataset at the requested scale."""
    if scale not in _SCALES:
        raise ConfigurationError(f"unknown scale {scale!r}; choose from {_SCALES}")
    key = (name, scale)
    if key in _DATASET_CACHE:
        return _DATASET_CACHE[key]
    sizes = {"smoke": (8, 4, 3), "small": (10, 40, 8), "full": (14, 60, 12)}
    image_size, train_per_class, test_per_class = sizes[scale]
    num_classes = 3 if scale == "smoke" else 5
    if name == "mnist_like":
        dataset = make_mnist_like(
            size=image_size, num_classes=num_classes,
            train_per_class=train_per_class, test_per_class=test_per_class, seed=0,
        )
    elif name == "cifar_like":
        dataset = make_cifar_like(
            size=max(6, image_size - 2), num_classes=num_classes,
            train_per_class=train_per_class, test_per_class=test_per_class, seed=1,
        )
    elif name == "hcas":
        from repro.datasets.hcas import HCASGrid, make_hcas_dataset

        grids = {
            "smoke": HCASGrid(x_points=7, y_points=7, theta_points=5, horizon=12),
            "small": HCASGrid(x_points=11, y_points=11, theta_points=7, horizon=20),
            "full": HCASGrid(),
        }
        hcas = make_hcas_dataset(grids[scale], seed=0)
        split = int(0.85 * hcas.features.shape[0])
        dataset = Dataset(
            name="hcas",
            x_train=hcas.features[:split],
            y_train=hcas.labels[:split],
            x_test=hcas.features[split:],
            y_test=hcas.labels[split:],
            num_classes=hcas.num_actions,
            image_shape=(3,),
        )
    else:
        raise ConfigurationError(f"unknown dataset {name!r}")
    _DATASET_CACHE[key] = dataset
    return dataset


def _build_model(spec: ModelSpec, dataset: Dataset, scale: str) -> MonDEQ:
    if spec.convolutional:
        channels, size = dataset.image_shape[0], dataset.image_shape[1]
        latent_channels = max(2, spec.latent_channels // (2 if scale == "smoke" else 1))
        model, _ = make_conv_mondeq(
            image_size=size, in_channels=channels, latent_channels=latent_channels,
            output_dim=dataset.num_classes, monotonicity=spec.monotonicity,
            seed=spec.seed, name=spec.name,
        )
        return model
    return MonDEQ.random(
        input_dim=dataset.input_dim, latent_dim=spec.latent_dim,
        output_dim=dataset.num_classes, monotonicity=spec.monotonicity,
        seed=spec.seed, name=spec.name,
    )


def get_model(
    name: str, scale: str = "small", cache_dir: Optional[str] = None
) -> Tuple[MonDEQ, Dataset]:
    """Return (and cache) a trained model of the named architecture.

    ``cache_dir`` optionally persists trained weights to ``.npz`` files so
    repeated benchmark invocations skip training.
    """
    if name not in MODEL_SPECS:
        raise ConfigurationError(f"unknown model {name!r}; choose from {sorted(MODEL_SPECS)}")
    key = (name, scale)
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]

    spec = MODEL_SPECS[name].scaled(scale)
    dataset = get_dataset(spec.dataset, scale)

    cached_path = None
    if cache_dir is not None:
        os.makedirs(cache_dir, exist_ok=True)
        cached_path = os.path.join(cache_dir, f"{name}_{scale}.npz")
        if os.path.exists(cached_path):
            model = MonDEQ.load(cached_path)
            _MODEL_CACHE[key] = (model, dataset)
            return model, dataset

    model = _build_model(spec, dataset, scale)
    config = TrainingConfig(
        epochs=spec.epochs,
        batch_size=32,
        learning_rate=spec.learning_rate,
        solver_tol=1e-5,
        solver_max_iterations=150,
    )
    train(model, dataset.x_train, dataset.y_train, config, seed=spec.seed)
    if cached_path is not None:
        model.save(cached_path)
    _MODEL_CACHE[key] = (model, dataset)
    return model, dataset


def clear_caches() -> None:
    """Drop all cached datasets and models (used by tests)."""
    _DATASET_CACHE.clear()
    _MODEL_CACHE.clear()
