"""Experiment runners regenerating every table and figure of the paper.

Each module exposes plain functions returning dictionaries / dataclasses so
that the pytest-benchmark harness in ``benchmarks/``, the example scripts in
``examples/`` and EXPERIMENTS.md generation all share the same code.

| Paper artefact | Runner |
|---|---|
| Table 2 (local robustness)         | :func:`repro.experiments.local_robustness.run_table2` |
| Table 3 (SemiSDP comparison)       | :func:`repro.experiments.local_robustness.run_table3` |
| Table 4 (ablation study)           | :func:`repro.experiments.ablation.run_table4` |
| Table 5 / 6, Fig. 16 (square root) | :func:`repro.experiments.sqrt_case_study.run_table5` |
| Fig. 2 / 4 (running example)       | :func:`repro.experiments.running_example.run_running_example` |
| Fig. 11 (HCAS global)              | :func:`repro.experiments.global_robustness.run_hcas` |
| Fig. 12 (alpha stability)          | :func:`repro.experiments.local_robustness.run_alpha_stability` |
| Fig. 13 (width traces)             | :func:`repro.experiments.local_robustness.run_width_trace` |
| Fig. 17 (adaptive alpha2)          | :func:`repro.experiments.local_robustness.run_adaptive_alpha` |
| Fig. 18 (containment checks)       | :func:`repro.experiments.domain_studies.run_containment_comparison` |
| Fig. 19 (consolidation volume)     | :func:`repro.experiments.domain_studies.run_consolidation_volume` |
| Fig. 20 (unsound Zonotope bounds)  | :func:`repro.experiments.local_robustness.run_unsound_zonotope_comparison` |

All runners accept a ``scale`` argument (``"smoke"``, ``"small"``, ``"full"``)
controlling model sizes and sample counts so that the full suite stays
runnable on a laptop CPU.
"""

from repro.experiments.model_zoo import ModelSpec, get_dataset, get_model, MODEL_SPECS

__all__ = ["MODEL_SPECS", "ModelSpec", "get_dataset", "get_model"]
