"""CH-Zonotope domain studies: containment checks (Fig. 18) and error
consolidation volume (Fig. 19, Appendix E.2/E.3)."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import CraftConfig
from repro.domains.chzonotope import CHZonotope
from repro.domains.containment import chzonotope_containment_scaling, lp_containment_margin
from repro.domains.volume import is_degenerate, zonotope_volume
from repro.datasets.gaussian import make_gaussian_mixture
from repro.experiments.model_zoo import get_model
from repro.mondeq.abstract_solvers import build_initial_state, layout_for, make_abstract_step
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import solve_fixpoint
from repro.mondeq.training import TrainingConfig, train
from repro.utils.rng import as_generator
from repro.verify.specs import LinfBall


# ----------------------------------------------------------------------
# Fig. 18 — CH-Zonotope containment vs the LP containment baseline
# ----------------------------------------------------------------------


def _containment_instances(
    model: MonDEQ,
    xs: np.ndarray,
    epsilon: float,
    alpha: float,
    max_instances: int,
) -> List[Dict]:
    """Generate (inner, outer) CH-Zonotope pairs as they arise inside Craft.

    For each sample the FB abstract iteration is run until the Theorem 4.2
    check first succeeds; the consolidated reference and the contained
    iterate form one containment instance (the setting of Appendix E.2).
    """
    layout = layout_for(model, "fb")
    instances = []
    for x in xs:
        if len(instances) >= max_instances:
            break
        ball = LinfBall(center=np.asarray(x, dtype=float).reshape(-1), epsilon=epsilon)
        concrete = solve_fixpoint(model, ball.center, method="fb", alpha=alpha)
        state = build_initial_state(model, layout, concrete.z, domain=CHZonotope)
        step = make_abstract_step(model, layout, ball.to_chzonotope(), "fb", alpha)
        reference: Optional[CHZonotope] = None
        for iteration in range(120):
            if iteration % 3 == 0:
                state = state.consolidate(w_mul=1e-3, w_add=1e-2)
                reference = state
            state = step(state)
            if reference is not None and reference.contains(state):
                instances.append({"outer": reference, "inner": state, "sample": x})
                break
    return instances


def run_containment_comparison(
    scale: str = "small",
    model_name: str = "FCx40",
    epsilon: float = 0.05,
    max_instances: int = 8,
    include_lp: bool = True,
    scaling_iterations: int = 6,
) -> List[Dict]:
    """Precision (maximal inner scaling) and runtime of the two checks (Fig. 18).

    For every containment instance the runner reports the largest scaling
    factor of the inner element for which each check still proves
    containment (binary search, Appendix E.2) and the wall-clock time of a
    single check.
    """
    model, dataset = get_model(model_name, scale)
    alpha = 0.4 * model.fb_alpha_bound()
    instances = _containment_instances(
        model, dataset.x_test, epsilon, alpha, max_instances
    )
    rows = []
    for instance in instances:
        outer: CHZonotope = instance["outer"]
        inner: CHZonotope = instance["inner"]

        start = time.perf_counter()
        ch_contained = outer.contains(inner)
        ch_time = time.perf_counter() - start
        ch_scaling = chzonotope_containment_scaling(
            inner, outer, lambda i, o: o.contains(i), iterations=scaling_iterations
        )
        row = {
            "dimension": outer.dim,
            "inner_generators": inner.num_generators,
            "ch_contained": bool(ch_contained),
            "ch_time": ch_time,
            "ch_scaling": ch_scaling,
        }
        if include_lp:
            start = time.perf_counter()
            lp_result = lp_containment_margin(inner, outer)
            lp_time = time.perf_counter() - start
            lp_scaling = chzonotope_containment_scaling(
                inner, outer,
                lambda i, o: lp_containment_margin(i, o).contained,
                iterations=scaling_iterations,
            )
            row.update(
                {
                    "lp_contained": bool(lp_result.contained),
                    "lp_margin": lp_result.margin,
                    "lp_time": lp_time,
                    "lp_scaling": lp_scaling,
                    "precision_ratio": ch_scaling / lp_scaling if lp_scaling > 0 else np.nan,
                    "speedup": lp_time / ch_time if ch_time > 0 else np.nan,
                }
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 19 — volume effect of error consolidation in low dimensions
# ----------------------------------------------------------------------


def run_consolidation_volume(
    latent_dims: Sequence[int] = (2, 3, 4),
    solvers: Sequence[str] = ("fb", "pr"),
    epsilon: float = 0.05,
    iterations: int = 60,
    growth_window: int = 5,
    num_inputs: int = 10,
    seed: int = 0,
) -> List[Dict]:
    """Volume ratio R (consolidation) and growth G (consolidation + solver
    contraction) per latent dimension and solver (Fig. 19).

    Small monDEQs are trained on the Gaussian-mixture toy dataset; exact
    zonotope volumes are tractable in 2–4 dimensions.
    """
    rng = as_generator(seed)
    xs_all, ys_all = make_gaussian_mixture(num_samples=240, input_dim=5, num_classes=3, seed=seed)
    rows = []
    for latent_dim in latent_dims:
        # A small monotonicity parameter and a positive bias keep the toy
        # fixpoints away from the all-inactive regime; following Appendix
        # E.3, samples where a latent dimension still collapses to zero are
        # excluded from the volume statistics.
        model = MonDEQ.random(
            input_dim=5, latent_dim=latent_dim, output_dim=3,
            monotonicity=3.0, scale=1.0, seed=latent_dim, name=f"toy-{latent_dim}d",
        )
        model.bias[:] = 0.5
        train(
            model, xs_all[:180], ys_all[:180],
            TrainingConfig(epochs=15, batch_size=32, learning_rate=1e-2, solver_tol=1e-6),
            seed=seed,
        )
        for solver in solvers:
            layout = layout_for(model, solver)
            alpha = 0.4 * model.fb_alpha_bound() if solver == "fb" else 0.1
            ratios = []
            growths = []
            candidates = rng.permutation(np.arange(180, 240))
            used = 0
            for index in candidates:
                if used >= num_inputs:
                    break
                x = xs_all[index]
                ball = LinfBall(center=x, epsilon=epsilon)
                concrete = solve_fixpoint(model, x, method=solver, alpha=alpha)
                if np.any(concrete.z <= 1e-6):
                    continue
                used += 1
                state = build_initial_state(model, layout, concrete.z, domain=CHZonotope)
                step = make_abstract_step(model, layout, ball.to_chzonotope(), solver, alpha)
                sample_ratios = []
                sample_growths = []
                warmup = max(6, iterations // 4)
                z_selector = layout.z_selector()

                def z_volume(element):
                    # Volumes are measured on the z block only: the PR
                    # auxiliary block coincides with z on active neurons, so
                    # the joint (z, u) volume is numerically degenerate.
                    return zonotope_volume(element.affine(z_selector), exact_limit=64)

                for iteration in range(iterations):
                    state = step(state)
                    if (iteration + 1) % 3:
                        continue
                    consolidated = state.consolidate()
                    measure = iteration >= warmup and not is_degenerate(
                        state.affine(z_selector)
                    )
                    if measure:
                        try:
                            volume_before = z_volume(state)
                            volume_after = z_volume(consolidated)
                            rolled = consolidated
                            for _ in range(growth_window):
                                rolled = step(rolled)
                            volume_rolled = z_volume(rolled.consolidate())
                        except Exception:  # too many generators for the exact formula
                            measure = False
                    if measure and volume_before > 0:
                        sample_ratios.append(volume_after / volume_before)
                        sample_growths.append(volume_rolled / volume_before)
                    state = consolidated
                if sample_ratios:
                    ratios.append(float(np.mean(sample_ratios)))
                    growths.append(float(np.mean(sample_growths)))
            rows.append(
                {
                    "latent_dim": int(latent_dim),
                    "solver": solver,
                    "volume_ratio": float(np.median(ratios)) if ratios else np.nan,
                    "volume_growth": float(np.median(growths)) if growths else np.nan,
                    "inputs": len(ratios),
                }
            )
    return rows
