"""The paper's running example (Section 2, Eq. 1, Figs. 2 and 4).

A 2-d monDEQ classifier on the square ``[-1, 1]^2`` with

    g(x, s) = ReLU( 1/10 [[5, -1], [1, 5]] s + 1/10 [[1, 1], [-1, 1]] x )
    y(s)    = (1, -1) s,

parametrised (Section 5.1, "Example") by ``m = 4``, ``P = I``,
``Q = [[1, 0], [1, 0]]``, FB damping ``alpha = 1/10``.  The example input is
``x = (0.2, 0.5)`` with fixpoint ``s* ~ (0.1231, 0.0846)`` and output
``y ~ 0.0385 > 0`` (class 1); the analysed region is the l-infinity ball of
radius 0.05 around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.config import CraftConfig
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import solve_fixpoint
from repro.verify.baselines import KleeneZonotopeVerifier
from repro.verify.robustness import certify_sample

EXAMPLE_INPUT = np.array([0.2, 0.5])
EXAMPLE_EPSILON = 0.05


def make_running_example_model() -> MonDEQ:
    """Construct the 2-d monDEQ of Eq. (1).

    The read-out maps the latent fixpoint to the two class scores
    ``(y, 0)``: class 1 is predicted exactly when ``y = s_1 - s_2 > 0``,
    matching the paper's single-output formulation.
    """
    p_weight = np.eye(2)
    q_weight = np.array([[1.0, 0.0], [1.0, 0.0]])
    u_weight = np.array([[1.0, 1.0], [-1.0, 1.0]])
    v_weight = np.array([[1.0, -1.0], [0.0, 0.0]])
    return MonDEQ(
        u_weight=u_weight,
        p_weight=p_weight,
        q_weight=q_weight,
        bias=np.zeros(2),
        v_weight=v_weight,
        v_bias=np.zeros(2),
        monotonicity=4.0,
        name="running-example",
    )


@dataclass
class RunningExampleResult:
    """Quantities visualised in Figs. 2 and 4."""

    fixpoint: np.ndarray
    output: float
    craft_certified: bool
    craft_margin: float
    craft_output_bounds: Tuple[float, float]
    kleene_certified: bool
    kleene_margin: float
    kleene_output_bounds: Tuple[float, float]

    def as_dict(self) -> Dict[str, float]:
        return {
            "fixpoint_1": float(self.fixpoint[0]),
            "fixpoint_2": float(self.fixpoint[1]),
            "output": self.output,
            "craft_certified": self.craft_certified,
            "craft_margin": self.craft_margin,
            "craft_lower": self.craft_output_bounds[0],
            "craft_upper": self.craft_output_bounds[1],
            "kleene_certified": self.kleene_certified,
            "kleene_margin": self.kleene_margin,
            "kleene_lower": self.kleene_output_bounds[0],
            "kleene_upper": self.kleene_output_bounds[1],
        }


def _output_score_bounds(result) -> Tuple[float, float]:
    """Bounds of the decision score ``y = y_1 - y_2`` from a verification result."""
    if result.output_element is None:
        return (-np.inf, np.inf)
    difference = result.output_element.affine(np.array([[1.0, -1.0]]))
    lower, upper = difference.concretize_bounds()
    return float(lower[0]), float(upper[0])


def run_running_example(
    x: np.ndarray = EXAMPLE_INPUT,
    epsilon: float = EXAMPLE_EPSILON,
    config: CraftConfig = None,
) -> RunningExampleResult:
    """Analyse the running example with Craft and the Kleene baseline.

    Reproduces the qualitative content of Figs. 2 and 4: Craft's output
    abstraction stays strictly positive (the region is certified to class 1)
    while the Kleene abstraction straddles zero and fails to certify.
    """
    model = make_running_example_model()
    if config is None:
        config = CraftConfig(
            solver1="fb", solver2="fb", alpha1=0.1, alpha2=0.1,
            slope_optimization="none",
        )
    concrete = solve_fixpoint(model, x, method="fb", alpha=0.1)
    output = float(model.readout(concrete.z)[0] - model.readout(concrete.z)[1])

    craft = certify_sample(model, x, label=0, epsilon=epsilon, config=config,
                           clip_min=-1.0, clip_max=1.0)
    kleene = KleeneZonotopeVerifier(model, solver="fb", alpha=0.1).certify(
        x, label=0, epsilon=epsilon
    )
    return RunningExampleResult(
        fixpoint=concrete.z,
        output=output,
        craft_certified=craft.certified,
        craft_margin=craft.margin,
        craft_output_bounds=_output_score_bounds(craft),
        kleene_certified=kleene.certified,
        kleene_margin=kleene.margin,
        kleene_output_bounds=_output_score_bounds(kleene),
    )
