"""Parallelotopes: proper CH-Zonotopes with a zero Box component.

The paper (Section 4, Fig. 7) observes that a CH-Zonotope with ``b = 0`` and
``p`` linearly independent error terms is exactly a Parallelotope (Amato &
Scozzari 2012), and that a CH-Zonotope is strictly more expressive because
it effectively carries twice as many error terms.  This module provides the
Parallelotope as a convenience wrapper so the Fig. 7 comparison (Box vs
Parallelotope vs proper CH-Zonotope over-approximations) and the "No Box"
ablation have a first-class object to talk about.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import DomainError
from repro.utils.linalg import pca_basis, safe_inverse
from repro.utils.validation import ensure_matrix, ensure_vector


class Parallelotope(CHZonotope):
    """A proper CH-Zonotope whose Box component is identically zero."""

    def __init__(self, center, generators):
        center = ensure_vector(center, "center")
        generators = ensure_matrix(
            generators, "generators", rows=center.shape[0], cols=center.shape[0]
        )
        if np.linalg.matrix_rank(generators) < center.shape[0]:
            raise DomainError("a Parallelotope requires an invertible error matrix")
        super().__init__(center, generators, np.zeros(center.shape[0]))

    @classmethod
    def enclosing(cls, element) -> "Parallelotope":
        """Smallest PCA-aligned parallelotope enclosing ``element``.

        ``element`` may be a :class:`Zonotope`, :class:`CHZonotope`, or
        :class:`Interval`.  This is the red over-approximation of Fig. 7.
        """
        if isinstance(element, Interval):
            radius = np.maximum(element.radius, 1e-12)
            return cls(element.center, np.diag(radius))
        if isinstance(element, CHZonotope):
            zonotope = element.to_zonotope()
        elif isinstance(element, Zonotope):
            zonotope = element
        else:
            raise DomainError(
                f"cannot enclose element of type {type(element).__name__}"
            )
        if zonotope.num_generators == 0:
            return cls(zonotope.center, np.eye(zonotope.dim) * 1e-12)
        basis = pca_basis(zonotope.generators)
        inverse = safe_inverse(basis, context="PCA basis")
        coefficients = np.abs(inverse @ zonotope.generators).sum(axis=1)
        coefficients = np.maximum(coefficients, 1e-12)
        return cls(zonotope.center, basis * coefficients[None, :])

    def relu(
        self,
        slopes: Optional[np.ndarray] = None,
        box_new_errors: bool = False,
        pass_through: Optional[np.ndarray] = None,
    ) -> CHZonotope:
        """ReLU transformer; fresh errors become generator columns by default
        (a Parallelotope has no Box component to put them in), so the result
        is in general an improper CH-Zonotope."""
        return super().relu(
            slopes=slopes, box_new_errors=box_new_errors, pass_through=pass_through
        )
