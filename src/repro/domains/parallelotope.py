"""Parallelotopes: proper CH-Zonotopes with a zero Box component.

The paper (Section 4, Fig. 7) observes that a CH-Zonotope with ``b = 0`` and
``p`` linearly independent error terms is exactly a Parallelotope (Amato &
Scozzari 2012), and that a CH-Zonotope is strictly more expressive because
it effectively carries twice as many error terms.  This module provides the
Parallelotope as a convenience wrapper so the Fig. 7 comparison (Box vs
Parallelotope vs proper CH-Zonotope over-approximations) and the "No Box"
ablation have a first-class object to talk about.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import DomainError
from repro.utils.linalg import pca_basis, safe_inverse
from repro.utils.validation import ensure_matrix, ensure_vector


class Parallelotope(CHZonotope):
    """A proper CH-Zonotope whose Box component is identically zero."""

    def __init__(self, center, generators):
        center = ensure_vector(center, "center")
        generators = ensure_matrix(
            generators, "generators", rows=center.shape[0], cols=center.shape[0]
        )
        if np.linalg.matrix_rank(generators) < center.shape[0]:
            raise DomainError("a Parallelotope requires an invertible error matrix")
        super().__init__(center, generators, np.zeros(center.shape[0]))

    @classmethod
    def enclosing(cls, element) -> "Parallelotope":
        """Smallest PCA-aligned parallelotope enclosing ``element``.

        ``element`` may be a :class:`Zonotope`, :class:`CHZonotope`, or
        :class:`Interval`.  This is the red over-approximation of Fig. 7.
        """
        if isinstance(element, Interval):
            radius = np.maximum(element.radius, 1e-12)
            return cls(element.center, np.diag(radius))
        if isinstance(element, CHZonotope):
            zonotope = element.to_zonotope()
        elif isinstance(element, Zonotope):
            zonotope = element
        else:
            raise DomainError(
                f"cannot enclose element of type {type(element).__name__}"
            )
        if zonotope.num_generators == 0:
            return cls(zonotope.center, np.eye(zonotope.dim) * 1e-12)
        basis = pca_basis(zonotope.generators)
        inverse = safe_inverse(basis, context="PCA basis")
        coefficients = np.abs(inverse @ zonotope.generators).sum(axis=1)
        coefficients = np.maximum(coefficients, 1e-12)
        return cls(zonotope.center, basis * coefficients[None, :])

    def relu(
        self,
        slopes: Optional[np.ndarray] = None,
        box_new_errors: bool = False,
        pass_through: Optional[np.ndarray] = None,
    ) -> CHZonotope:
        """ReLU transformer; fresh errors become generator columns by default
        (a Parallelotope has no Box component to put them in), so the result
        is in general an improper CH-Zonotope."""
        return super().relu(
            slopes=slopes, box_new_errors=box_new_errors, pass_through=pass_through
        )


class ParallelotopeZonotope(Zonotope):
    """The sequential **parallelotope pipeline** element.

    An order-bounded zonotope: the affine and Minkowski-sum transformers
    are the plain-Zonotope ones (exact, type-stable), and the ReLU
    transformer immediately reduces its result to the enclosing
    PCA-aligned parallelotope (Amato & Scozzari 2012) — so the error-term
    count is reset to the dimension after every solver step instead of
    growing by ``input_dim + state_dim`` columns per step.  That makes it
    the constant-memory rung of the escalation ladder between the Box and
    the full CH-Zonotope pipelines.

    The reduction routes through the same Theorem 4.1 consolidation the
    CH-Zonotope lift uses (``from_zonotope -> consolidate -> to_zonotope``
    with zero expansion), which is exactly the arithmetic of the batched
    :class:`repro.engine.batched_domains.BatchedParallelotope`.  Because
    the reduction runs an SVD *every step* over matrices the PR state
    layout makes rank-deficient, last-ulp BLAS differences between the
    stacked and the sequential pipelines can rotate the reduction basis;
    the engine parity contract for this domain is therefore verdict-level
    (outcome/containment/certification) rather than the 1e-9 bound parity
    of the other domains — see
    ``BatchedParallelotope._reduce_order`` for the full analysis.
    """

    __slots__ = ()

    @classmethod
    def _wrap(cls, zonotope: Zonotope) -> "ParallelotopeZonotope":
        return cls(zonotope.center, zonotope.generators)

    @classmethod
    def reduce(
        cls, zonotope: Zonotope, basis: Optional[np.ndarray] = None
    ) -> "ParallelotopeZonotope":
        """Enclosing parallelotope of ``zonotope`` (Theorem 4.1, no
        expansion) — applied unconditionally so batched stacks whose zero
        padding hides the per-sample generator count behave identically.
        ``basis`` overrides the PCA basis (any invertible basis is sound).
        """
        consolidated = CHZonotope.from_zonotope(zonotope).consolidate(
            basis=basis, w_mul=0.0, w_add=0.0
        )
        return cls._wrap(consolidated.to_zonotope())

    # Type-stable plain-Zonotope transformers ---------------------------

    def affine(self, weight, bias=None) -> "ParallelotopeZonotope":
        return self._wrap(super().affine(weight, bias))

    def sum(self, other) -> "ParallelotopeZonotope":
        return self._wrap(super().sum(other))

    def scale(self, factor: float) -> "ParallelotopeZonotope":
        return self._wrap(super().scale(factor))

    def translate(self, offset) -> "ParallelotopeZonotope":
        return self._wrap(super().translate(offset))

    # The order-bounding transformer ------------------------------------

    def relu(self, slopes=None, pass_through=None) -> "ParallelotopeZonotope":
        return self.reduce(super().relu(slopes=slopes, pass_through=pass_through))
