"""The CH-Zonotope (Containing-Hybrid-Zonotope) abstract domain — Section 4.

A CH-Zonotope extends the Zonotope domain with a separate Box error
component::

    Z = { a + A nu + diag(b) eta | nu in [-1, 1]^k, eta in [-1, 1]^p }

with centre ``a`` in R^p, error matrix ``A`` in R^{p x k} and non-negative
Box error vector ``b`` in R^p.  When ``A`` is square (``k = p``) and
invertible the element is called *proper*; properness is what enables the
paper's two key operations:

* **Error consolidation** (Theorem 4.1): over-approximate an improper
  element by a proper one whose error matrix is ``diag(c) @ basis`` with
  consolidation coefficients ``c = |basis^-1 A| 1``, optionally *expanded*
  by ``(1 + w_mul)`` and ``w_add`` (Eq. 10) to help the contraction check.
* **Inclusion check** (Theorem 4.2): a sound O(p^2 (p + k)) test whether an
  improper CH-Zonotope is contained in a proper one — the operation that
  makes the contraction-based termination criterion (Theorem 3.1) tractable
  in high dimensions.

The transformers mirror the paper: affine maps cast the Box errors into
Zonotope errors (yielding an improper element with zero Box component),
while the ReLU transformer writes its fresh error terms into the Box
component, keeping the number of Zonotope error terms constant between
consolidations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.domains.base import AbstractElement
from repro.domains.interval import Interval
from repro.domains.relu import relu_relaxation
from repro.domains.zonotope import Zonotope
from repro.exceptions import DimensionMismatchError, DomainError, ImproperZonotopeError
from repro.utils.linalg import pca_basis, safe_inverse
from repro.utils.validation import ensure_matrix, ensure_nonnegative_vector, ensure_vector


class CHZonotope(AbstractElement):
    """CH-Zonotope ``{ a + A nu + diag(b) eta }`` (Eq. 3 of the paper)."""

    __slots__ = ("_center", "_generators", "_box", "_inverse_cache")

    def __init__(self, center, generators=None, box=None):
        center = ensure_vector(center, "center")
        dim = center.shape[0]
        if generators is None:
            generators = np.zeros((dim, 0))
        generators = ensure_matrix(generators, "generators", rows=dim)
        if box is None:
            box = np.zeros(dim)
        box = ensure_nonnegative_vector(box, "box", dim=dim)
        self._center = center
        self._generators = generators
        self._box = box
        self._inverse_cache = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_point(cls, point) -> "CHZonotope":
        """Degenerate CH-Zonotope containing exactly ``point``."""
        point = ensure_vector(point, "point")
        return cls(point, np.zeros((point.shape[0], 0)), np.zeros(point.shape[0]))

    @classmethod
    def from_interval(cls, interval: Interval) -> "CHZonotope":
        """CH-Zonotope whose Zonotope component is the diagonal of the box radius.

        The radius is stored in the Zonotope (not the Box) component so that
        the input region keeps its relational identity through affine layers.
        """
        radius = interval.radius
        return cls(interval.center, np.diag(radius), np.zeros(interval.dim))

    @classmethod
    def from_center_radius(cls, center, radius) -> "CHZonotope":
        """CH-Zonotope form of the box ``center +/- radius``."""
        return cls.from_interval(Interval.from_center_radius(center, radius))

    @classmethod
    def from_zonotope(cls, zonotope: Zonotope) -> "CHZonotope":
        """Lift a standard zonotope (zero Box component)."""
        return cls(zonotope.center, zonotope.generators, np.zeros(zonotope.dim))

    # ------------------------------------------------------------------
    # Representation accessors
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self._center.shape[0]

    @property
    def center(self) -> np.ndarray:
        return self._center.copy()

    @property
    def generators(self) -> np.ndarray:
        """Zonotope error matrix ``A`` of shape ``(p, k)`` (copy)."""
        return self._generators.copy()

    @property
    def box(self) -> np.ndarray:
        """Box error vector ``b`` of shape ``(p,)`` (copy)."""
        return self._box.copy()

    @property
    def num_generators(self) -> int:
        """Number of Zonotope error terms ``k``."""
        return self._generators.shape[1]

    @property
    def is_proper(self) -> bool:
        """``True`` when ``A`` is square and (numerically) invertible."""
        if self._generators.shape != (self.dim, self.dim):
            return False
        return bool(np.linalg.matrix_rank(self._generators) == self.dim)

    @property
    def has_box_component(self) -> bool:
        """``True`` when the Box error vector is not identically zero."""
        return bool(np.any(self._box > 0))

    def decompose(self) -> Tuple[Zonotope, Interval]:
        """Split into the Zonotope component and the centred Box component."""
        zonotope = Zonotope(self._center, self._generators)
        box = Interval.from_center_radius(np.zeros(self.dim), self._box)
        return zonotope, box

    def to_zonotope(self) -> Zonotope:
        """Cast the Box errors into fresh generator columns (exact rewrite)."""
        nonzero = np.nonzero(self._box > 0)[0]
        extra = np.zeros((self.dim, nonzero.shape[0]))
        for column, axis in enumerate(nonzero):
            extra[axis, column] = self._box[axis]
        return Zonotope(self._center, np.hstack([self._generators, extra]))

    def to_interval(self) -> Interval:
        """Interval hull of the concretisation."""
        lower, upper = self.concretize_bounds()
        return Interval(lower, upper)

    # ------------------------------------------------------------------
    # AbstractElement interface
    # ------------------------------------------------------------------

    def concretize_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        radius = np.abs(self._generators).sum(axis=1) + self._box
        return self._center - radius, self._center + radius

    def affine(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> "CHZonotope":
        """Exact affine transformer.

        As in the paper, the Box errors are first cast as Zonotope errors
        (``A_hat = [A, diag(b)]``, ``b_hat = 0``); the result is therefore an
        improper CH-Zonotope with a zero Box component.
        """
        weight = np.asarray(weight, dtype=float)
        if weight.ndim != 2 or weight.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"weight must have shape (m, {self.dim}), got {weight.shape}"
            )
        as_zonotope = self.to_zonotope()
        center = weight @ as_zonotope.center
        if bias is not None:
            center = center + ensure_vector(bias, "bias", dim=weight.shape[0])
        return CHZonotope(center, weight @ as_zonotope.generators, np.zeros(weight.shape[0]))

    def relu(
        self,
        slopes: Optional[np.ndarray] = None,
        box_new_errors: bool = True,
        pass_through: Optional[np.ndarray] = None,
    ) -> "CHZonotope":
        """ReLU transformer (Section 4, "Abstract Transformers").

        Fresh error terms from crossing neurons go into the Box component by
        default (``box_new_errors=True``), keeping the Zonotope error count
        unchanged.  The ablation study ("No Box component", Table 4) sets
        ``box_new_errors=False`` so fresh errors become new generator
        columns instead.  ``pass_through`` marks dimensions mapped by the
        identity (the input block of joint solver states).
        """
        lower, upper = self.concretize_bounds()
        relaxation = relu_relaxation(lower, upper, slopes, pass_through=pass_through)
        center = relaxation.slopes * self._center + relaxation.offsets
        generators = relaxation.slopes[:, None] * self._generators
        box = relaxation.slopes * self._box
        if box_new_errors:
            box = box + relaxation.new_errors
            return CHZonotope(center, generators, box)
        new_columns = np.nonzero(relaxation.new_errors > 0)[0]
        if new_columns.size:
            fresh = np.zeros((self.dim, new_columns.size))
            for column, axis in enumerate(new_columns):
                fresh[axis, column] = relaxation.new_errors[axis]
            generators = np.hstack([generators, fresh])
        return CHZonotope(center, generators, box)

    def scale(self, factor: float) -> "CHZonotope":
        factor = float(factor)
        return CHZonotope(
            factor * self._center, factor * self._generators, abs(factor) * self._box
        )

    def translate(self, offset: np.ndarray) -> "CHZonotope":
        offset = ensure_vector(offset, "offset", dim=self.dim)
        return CHZonotope(self._center + offset, self._generators, self._box)

    def sum(self, other: "CHZonotope") -> "CHZonotope":
        """Minkowski sum: generator columns concatenate, Box radii add."""
        other = self._coerce(other)
        return CHZonotope(
            self._center + other._center,
            np.hstack([self._generators, other._generators]),
            self._box + other._box,
        )

    def contains_point(self, point: np.ndarray, tol: float = 1e-9) -> bool:
        """Exact membership test (via the equivalent standard zonotope)."""
        return self.to_zonotope().contains_point(point, tol=tol)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        nu = rng.uniform(-1.0, 1.0, size=(count, self.num_generators))
        eta = rng.uniform(-1.0, 1.0, size=(count, self.dim))
        return (
            self._center[None, :]
            + nu @ self._generators.T
            + eta * self._box[None, :]
        )

    def sample_vertices(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample extreme points (all error terms at ±1), used to falsify
        unsound containment claims in tests."""
        nu = rng.choice([-1.0, 1.0], size=(count, self.num_generators))
        eta = rng.choice([-1.0, 1.0], size=(count, self.dim))
        return (
            self._center[None, :]
            + nu @ self._generators.T
            + eta * self._box[None, :]
        )

    # ------------------------------------------------------------------
    # Error consolidation — Theorem 4.1 and Eq. (10)
    # ------------------------------------------------------------------

    def consolidate(
        self,
        basis: Optional[np.ndarray] = None,
        w_mul: float = 0.0,
        w_add: float = 0.0,
    ) -> "CHZonotope":
        """Over-approximate this element by a *proper* CH-Zonotope.

        Parameters
        ----------
        basis:
            Invertible ``(p, p)`` matrix used as the new error basis
            ``A_tilde``.  ``None`` selects the PCA basis of the current
            error matrix (Kopetzki et al. 2017), which the paper found to
            give the tightest approximations at tractable cost.
        w_mul, w_add:
            Expansion parameters of Eq. (10).  The consolidation
            coefficients become ``c = (1 + w_mul) |basis^-1 A| 1 + w_add``,
            which strictly enlarges the element and, counter-intuitively,
            makes detecting contraction easier (Section 5.2, "Expansion").

        Returns
        -------
        CHZonotope
            A proper element with error matrix ``diag(c) @ basis``; the Box
            component and the centre are unchanged (Theorem 4.1).
        """
        if w_mul < 0 or w_add < 0:
            raise DomainError("expansion parameters must be non-negative")
        if basis is None:
            basis = self.pca_basis()
        basis = ensure_matrix(basis, "basis", rows=self.dim, cols=self.dim)
        basis_inverse = safe_inverse(basis, context="consolidation basis")
        if self.num_generators:
            coefficients = np.abs(basis_inverse @ self._generators).sum(axis=1)
        else:
            coefficients = np.zeros(self.dim)
        coefficients = (1.0 + w_mul) * coefficients + w_add
        # Guard against an exactly singular new error matrix: a proper
        # CH-Zonotope needs strictly positive coefficients in every basis
        # direction.  A tiny floor keeps the element proper without
        # affecting precision (it only ever enlarges the set).
        floor = max(w_add, 1e-12)
        coefficients = np.maximum(coefficients, floor)
        # A' = basis @ diag(c): scale each new error *direction* (column of the
        # basis) by its consolidation coefficient (Theorem 4.1).
        new_generators = basis * coefficients[None, :]
        return CHZonotope(self._center, new_generators, self._box)

    def pca_basis(self) -> np.ndarray:
        """PCA basis of the current error matrix (identity if there is none)."""
        if self.num_generators == 0 or not np.any(self._generators):
            return np.eye(self.dim)
        return pca_basis(self._generators)

    # ------------------------------------------------------------------
    # Inclusion check — Theorem 4.2
    # ------------------------------------------------------------------

    def contains(self, other: "CHZonotope", tol: float = 1e-9) -> bool:
        """Sound (but incomplete) check that ``other`` is contained in ``self``.

        ``self`` must be proper.  Following Theorem 4.2, containment holds if

            |A^-1 A'| 1 + |A^-1 diag(max(0, |a' - a| + b' - b))| 1  <=  1

        element-wise, where unprimed quantities belong to ``self`` (the outer
        element) and primed ones to ``other`` (the inner element).

        Raises
        ------
        ImproperZonotopeError
            If ``self`` is not a proper CH-Zonotope.
        """
        other = self._coerce(other)
        margins = self.containment_margin(other)
        return bool(np.all(margins <= 1.0 + tol))

    def containment_margin(self, other: "CHZonotope") -> np.ndarray:
        """Element-wise left-hand side of the Theorem 4.2 condition.

        Values ``<= 1`` in every component mean containment is proven; the
        maximum entry is a useful diagnostic of "how far" from containment
        the iteration currently is (used by Fig. 18's precision study).
        """
        other = self._coerce(other)
        inverse = self._generator_inverse()
        if other.num_generators:
            zonotope_part = np.abs(inverse @ other._generators).sum(axis=1)
        else:
            zonotope_part = np.zeros(self.dim)
        residual = np.maximum(
            0.0, np.abs(other._center - self._center) + other._box - self._box
        )
        box_part = np.abs(inverse * residual[None, :]).sum(axis=1)
        return zonotope_part + box_part

    def _generator_inverse(self) -> np.ndarray:
        """Inverse of the (proper) error matrix, cached per element."""
        if self._generators.shape != (self.dim, self.dim):
            raise ImproperZonotopeError(
                "containment check requires the outer CH-Zonotope to be proper "
                f"(square error matrix); got shape {self._generators.shape}"
            )
        if self._inverse_cache is None:
            self._inverse_cache = safe_inverse(self._generators, context="error matrix")
        return self._inverse_cache

    # ------------------------------------------------------------------
    # Lattice-ish operations (used only by the Kleene baseline)
    # ------------------------------------------------------------------

    def join(self, other: "CHZonotope") -> "CHZonotope":
        """Sound quasi-join preserving shared error symbols.

        When both operands use the same number of Zonotope error terms they
        are interpreted as sharing those symbols (as is the case for the
        Kleene baseline, where the input symbols persist across iterations):
        the joined element keeps, per entry, the sign-consistent minimal
        coefficient and covers the remaining deviation of either operand
        with its Box component (Goubault & Putot 2008 style).  Otherwise the
        interval hull is returned.  Either way the result's concretisation
        contains both operands' (CH-Zonotopes are not a lattice, so this is
        a quasi-join in the sense of Gange et al. 2013).
        """
        other = self._coerce(other)
        if self.num_generators != other.num_generators:
            return CHZonotope.from_interval(self.to_interval().join(other.to_interval()))
        center = 0.5 * (self._center + other._center)
        same_sign = np.sign(self._generators) == np.sign(other._generators)
        kept = np.where(
            same_sign,
            np.sign(self._generators) * np.minimum(np.abs(self._generators), np.abs(other._generators)),
            0.0,
        )
        deviation_self = (
            np.abs(self._center - center)
            + np.abs(self._generators - kept).sum(axis=1)
            + self._box
        )
        deviation_other = (
            np.abs(other._center - center)
            + np.abs(other._generators - kept).sum(axis=1)
            + other._box
        )
        return CHZonotope(center, kept, np.maximum(deviation_self, deviation_other))

    def widen(self, other: "CHZonotope", threshold: float = 1e6) -> "CHZonotope":
        """Interval-style widening on the concretisation bounds."""
        other = self._coerce(other)
        widened = self.to_interval().widen(other.to_interval(), threshold=threshold)
        return CHZonotope.from_interval(widened)

    # ------------------------------------------------------------------
    # Misc utilities
    # ------------------------------------------------------------------

    def drop_box(self) -> "CHZonotope":
        """Return a copy with the Box component removed (used by ablations).

        Note this is *not* a sound over-approximation — it shrinks the set —
        and is only meant for constructing ablation configurations and tests.
        """
        return CHZonotope(self._center, self._generators, np.zeros(self.dim))

    def enlarge_box(self, amount) -> "CHZonotope":
        """Return a copy with the Box radii enlarged by ``amount`` (>= 0)."""
        amount = np.broadcast_to(np.asarray(amount, dtype=float), (self.dim,))
        if np.any(amount < 0):
            raise DomainError("enlarge_box requires a non-negative amount")
        return CHZonotope(self._center, self._generators, self._box + amount)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CHZonotope):
            return NotImplemented
        return bool(
            np.allclose(self._center, other._center)
            and self._generators.shape == other._generators.shape
            and np.allclose(self._generators, other._generators)
            and np.allclose(self._box, other._box)
        )

    def __hash__(self):  # pragma: no cover
        raise TypeError("CHZonotope elements are mutable-value objects and unhashable")

    def _coerce(self, other: "CHZonotope") -> "CHZonotope":
        if not isinstance(other, CHZonotope):
            raise DomainError(f"expected a CHZonotope, got {type(other).__name__}")
        if other.dim != self.dim:
            raise DimensionMismatchError(f"dimension mismatch: {self.dim} vs {other.dim}")
        return other
