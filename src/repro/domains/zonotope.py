"""The standard Zonotope abstract domain (Ghorbal et al. 2009; Singh et al. 2018).

A zonotope is an affine image of a hypercube::

    Z = { a + A nu | nu in [-1, 1]^k }

with centre ``a`` in R^p and error (generator) matrix ``A`` in R^{p x k}.
Affine transformers are exact; the ReLU transformer follows the
minimum-area relaxation of Singh et al. 2018 (see :mod:`repro.domains.relu`).

The paper uses this domain for

* the running example (Fig. 2),
* the Kleene-iteration baseline and the square-root case study (Section 6.5),
* the "unsound Zonotope" comparison of Fig. 20, and
* as the substrate on which CH-Zonotope is built.

Exact zonotope-in-zonotope containment is co-NP-complete (Kulmburg &
Althoff 2021); the approximate LP check of Sadraddini & Tedrake lives in
:mod:`repro.domains.containment`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.domains.base import AbstractElement
from repro.domains.interval import Interval
from repro.domains.relu import relu_relaxation
from repro.exceptions import DimensionMismatchError, DomainError
from repro.utils.validation import ensure_matrix, ensure_vector


class Zonotope(AbstractElement):
    """Zonotope ``{ a + A nu | nu in [-1, 1]^k }``."""

    __slots__ = ("_center", "_generators")

    def __init__(self, center, generators=None):
        center = ensure_vector(center, "center")
        if generators is None:
            generators = np.zeros((center.shape[0], 0))
        generators = ensure_matrix(generators, "generators", rows=center.shape[0])
        self._center = center
        self._generators = generators

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_point(cls, point) -> "Zonotope":
        """Degenerate zonotope containing exactly ``point``."""
        point = ensure_vector(point, "point")
        return cls(point, np.zeros((point.shape[0], 0)))

    @classmethod
    def from_interval(cls, interval: Interval) -> "Zonotope":
        """Zonotope with one axis-aligned generator per non-degenerate dimension."""
        radius = interval.radius
        nonzero = np.nonzero(radius > 0)[0]
        generators = np.zeros((interval.dim, nonzero.shape[0]))
        for column, axis in enumerate(nonzero):
            generators[axis, column] = radius[axis]
        return cls(interval.center, generators)

    @classmethod
    def from_center_radius(cls, center, radius) -> "Zonotope":
        """Zonotope form of the box ``center +/- radius``."""
        center = ensure_vector(center, "center")
        return cls.from_interval(Interval.from_center_radius(center, radius))

    # ------------------------------------------------------------------
    # Representation accessors
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self._center.shape[0]

    @property
    def center(self) -> np.ndarray:
        return self._center.copy()

    @property
    def generators(self) -> np.ndarray:
        """Error-coefficient matrix ``A`` of shape ``(p, k)`` (copy)."""
        return self._generators.copy()

    @property
    def num_generators(self) -> int:
        """Number of error terms ``k``."""
        return self._generators.shape[1]

    @property
    def order(self) -> float:
        """Zonotope order ``k / p`` (Kopetzki et al. 2017)."""
        return self.num_generators / max(self.dim, 1)

    # ------------------------------------------------------------------
    # AbstractElement interface
    # ------------------------------------------------------------------

    def concretize_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        radius = np.abs(self._generators).sum(axis=1)
        return self._center - radius, self._center + radius

    def to_interval(self) -> Interval:
        """Interval hull of the zonotope."""
        lower, upper = self.concretize_bounds()
        return Interval(lower, upper)

    def affine(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> "Zonotope":
        weight = np.asarray(weight, dtype=float)
        if weight.ndim != 2 or weight.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"weight must have shape (m, {self.dim}), got {weight.shape}"
            )
        center = weight @ self._center
        if bias is not None:
            center = center + ensure_vector(bias, "bias", dim=weight.shape[0])
        return Zonotope(center, weight @ self._generators)

    def relu(
        self, slopes: Optional[np.ndarray] = None, pass_through: Optional[np.ndarray] = None
    ) -> "Zonotope":
        lower, upper = self.concretize_bounds()
        relaxation = relu_relaxation(lower, upper, slopes, pass_through=pass_through)
        center = relaxation.slopes * self._center + relaxation.offsets
        generators = relaxation.slopes[:, None] * self._generators
        new_columns = np.nonzero(relaxation.new_errors > 0)[0]
        if new_columns.size:
            fresh = np.zeros((self.dim, new_columns.size))
            for column, axis in enumerate(new_columns):
                fresh[axis, column] = relaxation.new_errors[axis]
            generators = np.hstack([generators, fresh])
        return Zonotope(center, generators)

    def scale(self, factor: float) -> "Zonotope":
        factor = float(factor)
        return Zonotope(factor * self._center, factor * self._generators)

    def translate(self, offset: np.ndarray) -> "Zonotope":
        offset = ensure_vector(offset, "offset", dim=self.dim)
        return Zonotope(self._center + offset, self._generators)

    def sum(self, other: "Zonotope") -> "Zonotope":
        other = self._coerce(other)
        return Zonotope(
            self._center + other._center,
            np.hstack([self._generators, other._generators]),
        )

    def contains_point(self, point: np.ndarray, tol: float = 1e-9) -> bool:
        """Membership test via a small linear program (least-norm solve).

        Membership means there is ``nu`` with ``||nu||_inf <= 1`` and
        ``A nu = point - a``.  We solve the minimum-infinity-norm problem via
        :func:`scipy.optimize.linprog`; for the degenerate generator-free
        case it reduces to an equality check.

        The system is rescaled to O(1) magnitudes before it reaches the LP
        solver: HiGHS drops matrix coefficients below its small-value
        tolerance, so a tiny-but-consistent system (e.g. generators of
        magnitude 1e-9) would otherwise be reported as infeasible.  The
        equality constraints additionally carry a ``tol`` slack per
        coordinate, so points within ``tol`` of the zonotope are accepted
        even when the residual does not lie exactly in the generator span
        (floating-point round-off after affine transformers).
        """
        point = ensure_vector(point, "point", dim=self.dim)
        residual = point - self._center
        if self.num_generators == 0 or np.all(np.abs(residual) <= tol):
            return bool(np.all(np.abs(residual) <= tol))
        radius = np.abs(self._generators).sum(axis=1)
        if np.any(np.abs(residual) > radius + tol):
            return False
        from scipy.optimize import linprog

        k = self.num_generators
        scale = max(float(np.abs(self._generators).max()), float(np.abs(residual).max()))
        generators = self._generators / scale
        rhs = residual / scale
        slack = max(tol / scale, 1e-12)
        # Variables: nu (k), t (1). Minimise t subject to
        # |A nu - residual| <= slack (element-wise), -t <= nu_i <= t.
        p = self.dim
        c = np.zeros(k + 1)
        c[-1] = 1.0
        a_ub = np.zeros((2 * p + 2 * k, k + 1))
        a_ub[:p, :k] = generators
        a_ub[p : 2 * p, :k] = -generators
        a_ub[2 * p : 2 * p + k, :k] = np.eye(k)
        a_ub[2 * p : 2 * p + k, -1] = -1.0
        a_ub[2 * p + k :, :k] = -np.eye(k)
        a_ub[2 * p + k :, -1] = -1.0
        b_ub = np.concatenate([rhs + slack, -rhs + slack, np.zeros(2 * k)])
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(None, None)] * k + [(0, None)],
            method="highs",
        )
        if not result.success:
            return False
        return bool(result.x[-1] <= 1.0 + tol)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        nu = rng.uniform(-1.0, 1.0, size=(count, self.num_generators))
        return self._center[None, :] + nu @ self._generators.T

    def sample_vertices(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample extreme points (``nu`` in ``{-1, +1}^k``), useful for
        falsifying containment claims in tests."""
        nu = rng.choice([-1.0, 1.0], size=(count, self.num_generators))
        return self._center[None, :] + nu @ self._generators.T

    # ------------------------------------------------------------------
    # Lattice-ish operations used by the Kleene baseline
    # ------------------------------------------------------------------

    def join(self, other: "Zonotope") -> "Zonotope":
        """A sound quasi-join (Gange et al. 2013): the smallest *box-shaped*
        zonotope containing both operands, with preserved shared centre
        direction.

        Zonotopes do not form a lattice; any upper bound is sound for Kleene
        iteration.  We use the interval hull enriched with one generator for
        the centre difference, which is cheap, sound, and (as the paper
        argues) still illustrates the inherent imprecision of joining
        iteration states.
        """
        other = self._coerce(other)
        hull = self.to_interval().join(other.to_interval())
        return Zonotope.from_interval(hull)

    def widen(self, other: "Zonotope", threshold: float = 1e6) -> "Zonotope":
        """Interval-style widening on the concretisation bounds."""
        other = self._coerce(other)
        widened = self.to_interval().widen(other.to_interval(), threshold=threshold)
        return Zonotope.from_interval(widened)

    def is_subset_of_box(self, box: Interval, tol: float = 1e-9) -> bool:
        """Exact check that the zonotope lies inside an axis-aligned box."""
        lower, upper = self.concretize_bounds()
        return bool(
            np.all(lower >= box.lower - tol) and np.all(upper <= box.upper + tol)
        )

    def remove_zero_generators(self, tol: float = 0.0) -> "Zonotope":
        """Drop generator columns whose norm is ``<= tol``."""
        if self.num_generators == 0:
            return self
        norms = np.abs(self._generators).sum(axis=0)
        keep = norms > tol
        return Zonotope(self._center, self._generators[:, keep])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Zonotope):
            return NotImplemented
        return bool(
            np.allclose(self._center, other._center)
            and self._generators.shape == other._generators.shape
            and np.allclose(self._generators, other._generators)
        )

    def __hash__(self):  # pragma: no cover
        raise TypeError("Zonotope elements are mutable-value objects and unhashable")

    def _coerce(self, other: "Zonotope") -> "Zonotope":
        if not isinstance(other, Zonotope):
            raise DomainError(f"expected a Zonotope, got {type(other).__name__}")
        if other.dim != self.dim:
            raise DimensionMismatchError(f"dimension mismatch: {self.dim} vs {other.dim}")
        return other


def minkowski_sum(elements: Iterable[Zonotope]) -> Zonotope:
    """Minkowski sum of a non-empty iterable of zonotopes."""
    elements = list(elements)
    if not elements:
        raise DomainError("minkowski_sum requires at least one element")
    result = elements[0]
    for element in elements[1:]:
        result = result.sum(element)
    return result
