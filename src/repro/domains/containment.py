"""Zonotope containment checks beyond Theorem 4.2.

Exact zonotope-in-zonotope containment is co-NP-complete (Kulmburg &
Althoff 2021).  The paper compares its O(p^3) CH-Zonotope check
(Theorem 4.2) against the approximate — but in low dimensions close to
lossless — LP encoding of Sadraddini & Tedrake 2019 (their Theorem 3),
which requires solving a linear program in O(k_inner * k_outer) variables
and is the "Zonotope Cont." baseline of Fig. 18.

This module implements:

* :func:`lp_containment` / :func:`lp_containment_margin` — the
  Sadraddini–Tedrake LP check with :func:`scipy.optimize.linprog` (HiGHS)
  as the solver backend (substituting the paper's Gurobi).
* :func:`sample_containment_counterexample` — a sampling-based falsifier
  used by the test-suite to confirm that sound checks never claim
  containment of sets that stick out.
* :func:`chzonotope_containment_scaling` — the binary-search procedure of
  Appendix E.2 that measures how much an inner element can be inflated
  before a given check stops proving containment (the precision metric of
  Fig. 18a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np
from scipy.optimize import linprog

from repro.domains.chzonotope import CHZonotope
from repro.domains.zonotope import Zonotope
from repro.exceptions import DomainError

ZonotopeLike = Union[Zonotope, CHZonotope]


def _as_zonotope(element: ZonotopeLike) -> Zonotope:
    if isinstance(element, CHZonotope):
        return element.to_zonotope()
    if isinstance(element, Zonotope):
        return element
    raise DomainError(f"expected a zonotope-like element, got {type(element).__name__}")


@dataclass(frozen=True)
class LPContainmentResult:
    """Result of the Sadraddini–Tedrake containment LP.

    Attributes
    ----------
    contained:
        Whether the LP proves ``inner ⊆ outer`` (margin <= 1).
    margin:
        The optimal value ``t*``; values ``<= 1`` prove containment and the
        gap to 1 quantifies how much slack remains.
    solver_status:
        Status string from the LP solver (for diagnostics).
    """

    contained: bool
    margin: float
    solver_status: str


def lp_containment_margin(inner: ZonotopeLike, outer: ZonotopeLike) -> LPContainmentResult:
    """Solve the Sadraddini–Tedrake containment LP.

    ``inner = {a' + A' nu'}`` is contained in ``outer = {a + A nu}`` if there
    exist a matrix ``Gamma`` and a vector ``beta`` with::

        A Gamma = A',   A beta = a' - a,   || [Gamma, beta] ||_inf <= 1

    where the norm is the maximum absolute row sum.  We minimise that norm
    (variable ``t``) subject to the equality constraints; containment is
    proven iff the optimum is ``<= 1``.
    """
    inner_z = _as_zonotope(inner)
    outer_z = _as_zonotope(outer)
    if inner_z.dim != outer_z.dim:
        raise DomainError("containment check requires matching dimensions")

    p = inner_z.dim
    k_in = max(inner_z.num_generators, 0)
    k_out = outer_z.num_generators
    if k_out == 0:
        # The outer set is a single point; containment iff inner is the same point.
        same_center = np.allclose(inner_z.center, outer_z.center)
        degenerate = k_in == 0 or not np.any(inner_z.generators)
        contained = bool(same_center and degenerate)
        return LPContainmentResult(contained, 0.0 if contained else np.inf, "degenerate")

    a_out = outer_z.generators
    a_in = inner_z.generators if k_in else np.zeros((p, 0))
    center_diff = inner_z.center - outer_z.center

    # Decision variables: Gamma+ (k_out*k_in), Gamma- (k_out*k_in),
    # beta+ (k_out), beta- (k_out), t (1).  Column-major stacking of Gamma.
    n_gamma = k_out * k_in
    n_vars = 2 * n_gamma + 2 * k_out + 1

    cost = np.zeros(n_vars)
    cost[-1] = 1.0

    # Equality constraints: A_out (Gamma+ - Gamma-) = A_in  (p * k_in rows)
    #                       A_out (beta+ - beta-)   = center_diff (p rows)
    eq_rows = p * k_in + p
    a_eq = np.zeros((eq_rows, n_vars))
    b_eq = np.zeros(eq_rows)
    for j in range(k_in):
        row_slice = slice(j * p, (j + 1) * p)
        col_slice = slice(j * k_out, (j + 1) * k_out)
        a_eq[row_slice, col_slice] = a_out
        a_eq[row_slice, n_gamma + j * k_out : n_gamma + (j + 1) * k_out] = -a_out
        b_eq[row_slice] = a_in[:, j]
    beta_rows = slice(p * k_in, p * k_in + p)
    a_eq[beta_rows, 2 * n_gamma : 2 * n_gamma + k_out] = a_out
    a_eq[beta_rows, 2 * n_gamma + k_out : 2 * n_gamma + 2 * k_out] = -a_out
    b_eq[beta_rows] = center_diff

    # Row-sum constraints: for each row i of [Gamma, beta]:
    #   sum_j (Gamma+_ij + Gamma-_ij) + beta+_i + beta-_i - t <= 0
    a_ub = np.zeros((k_out, n_vars))
    for i in range(k_out):
        for j in range(k_in):
            a_ub[i, j * k_out + i] = 1.0
            a_ub[i, n_gamma + j * k_out + i] = 1.0
        a_ub[i, 2 * n_gamma + i] = 1.0
        a_ub[i, 2 * n_gamma + k_out + i] = 1.0
        a_ub[i, -1] = -1.0
    b_ub = np.zeros(k_out)

    bounds = [(0, None)] * (n_vars - 1) + [(0, None)]
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return LPContainmentResult(False, np.inf, result.message)
    margin = float(result.x[-1])
    return LPContainmentResult(margin <= 1.0 + 1e-7, margin, "optimal")


def lp_containment(inner: ZonotopeLike, outer: ZonotopeLike) -> bool:
    """Boolean wrapper around :func:`lp_containment_margin`."""
    return lp_containment_margin(inner, outer).contained


def sample_containment_counterexample(
    inner: ZonotopeLike,
    outer: ZonotopeLike,
    samples: int = 256,
    rng: Optional[np.random.Generator] = None,
    tol: float = 1e-7,
) -> Optional[np.ndarray]:
    """Search for a point of ``inner`` that is provably outside ``outer``.

    Returns the counterexample point or ``None`` if none was found among the
    sampled (vertex-biased) candidates.  Used by soundness tests: a check
    that claims containment must never admit a counterexample.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    inner_z = _as_zonotope(inner)
    candidates = np.vstack(
        [
            inner_z.sample_vertices(samples // 2 + 1, rng),
            inner_z.sample(samples // 2 + 1, rng),
        ]
    )
    for point in candidates:
        if not _as_zonotope(outer).contains_point(point, tol=tol):
            return point
    return None


def chzonotope_containment_scaling(
    inner: CHZonotope,
    outer: CHZonotope,
    check: Callable[[CHZonotope, CHZonotope], bool],
    lo: float = 1.0,
    hi: float = 4.0,
    iterations: int = 30,
) -> float:
    """Largest scaling factor of ``inner`` (about its centre) for which
    ``check(scaled_inner, outer)`` still reports containment.

    This is the precision metric of Appendix E.2 / Fig. 18a: applying it to
    both Theorem 4.2 and the LP check on the same pairs quantifies the
    relative precision loss of the fast check.  Binary search over the
    scaling factor; returns ``0.0`` if even the unscaled inner element is
    not proven contained.
    """
    if not check(inner, outer):
        return 0.0

    def scaled(factor: float) -> CHZonotope:
        center = inner.center
        return CHZonotope(
            center, factor * inner.generators, factor * inner.box
        )

    if check(scaled(hi), outer):
        return hi
    low, high = lo, hi
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if check(scaled(mid), outer):
            low = mid
        else:
            high = mid
    return low
