"""Exact and approximate zonotope volume computations.

The error-consolidation case study (Appendix E.3, Fig. 19) measures the
volume ratio ``R = vol(consolidate(Z)) / vol(Z)`` and the volume growth
``G = vol(Z_{n+k}) / vol(Z_n)`` on small (2–4 dimensional) monDEQs, because
exact zonotope volume has exponential complexity in general
(Gover & Krikorian 2010)::

    vol(Z) = 2^p * sum over p-subsets S of columns(A)  |det(A_S)|

This module implements that exact formula for low dimensions plus a cheap
interval-hull upper bound used as a sanity check / fallback.
"""

from __future__ import annotations

from itertools import combinations
from typing import Union

import numpy as np

from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import DomainError

_MAX_EXACT_GENERATORS = 32


def zonotope_volume(element: Union[Zonotope, CHZonotope], exact_limit: int = _MAX_EXACT_GENERATORS) -> float:
    """Exact volume of a zonotope (or CH-Zonotope) via Gover & Krikorian.

    Raises :class:`DomainError` when the number of generators exceeds
    ``exact_limit`` (the number of determinant evaluations is
    ``C(k, p)`` which explodes quickly).
    """
    if isinstance(element, CHZonotope):
        zonotope = element.to_zonotope()
    elif isinstance(element, Zonotope):
        zonotope = element
    else:
        raise DomainError(f"cannot compute volume of {type(element).__name__}")

    p = zonotope.dim
    generators = zonotope.generators
    k = generators.shape[1]
    if k < p:
        return 0.0
    if k > exact_limit:
        raise DomainError(
            f"exact volume with {k} generators exceeds the limit of {exact_limit}; "
            "use interval_volume_upper_bound instead"
        )
    total = 0.0
    for subset in combinations(range(k), p):
        total += abs(np.linalg.det(generators[:, subset]))
    return float((2.0**p) * total)


def interval_volume_upper_bound(element: Union[Zonotope, CHZonotope, Interval]) -> float:
    """Volume of the interval hull — an upper bound on the true volume."""
    if isinstance(element, Interval):
        return element.volume
    lower, upper = element.concretize_bounds()
    return float(np.prod(upper - lower))


def volume_ratio(before: Union[Zonotope, CHZonotope], after: Union[Zonotope, CHZonotope]) -> float:
    """Return ``vol(after) / vol(before)`` (exact volumes).

    A value ``>= 1`` for a sound over-approximation step; ``inf`` when the
    "before" element is degenerate (zero volume).
    """
    v_before = zonotope_volume(before)
    v_after = zonotope_volume(after)
    if v_before == 0.0:
        return np.inf if v_after > 0 else 1.0
    return v_after / v_before


def is_degenerate(element: Union[Zonotope, CHZonotope], tol: float = 1e-12) -> bool:
    """True when some concretisation width is (numerically) zero.

    Fig. 19 excludes such samples because their volume collapses to zero and
    ratios become meaningless.
    """
    lower, upper = element.concretize_bounds()
    return bool(np.any(upper - lower <= tol))
