"""Shared ReLU-relaxation arithmetic.

All zonotope-family domains use the same parametrised single-neuron ReLU
relaxation (Singh et al. 2018, adapted in Section 4 of the paper): for an
input range ``[l, u]`` that crosses zero, the ReLU output is enclosed in the
band ``lambda * x + mu +/- mu`` where

* ``mu = (1 - lambda) * u / 2``  if ``0 <= lambda <= u / (u - l)``
* ``mu = -lambda * l / 2``        if ``u / (u - l) <= lambda <= 1``

and the default (minimum 2-d area) choice is ``lambda = u / (u - l)``.
This module computes, per dimension, the triple ``(lambda, mu_center,
mu_error)`` describing the affine replacement ``y = lambda*x + mu_center``
with a fresh error term of magnitude ``mu_error``; stable neurons
(``u <= 0`` or ``l >= 0``) are handled exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import DomainError


@dataclass(frozen=True)
class ReLURelaxation:
    """Per-dimension affine relaxation of the ReLU.

    Attributes
    ----------
    slopes:
        The slope ``lambda`` applied to the pre-activation, per dimension.
    offsets:
        The additive centre shift ``mu`` per dimension.
    new_errors:
        The magnitude of the fresh error term per dimension (zero for
        stable neurons).
    crossing:
        Boolean mask of dimensions whose input range crosses zero.
    """

    slopes: np.ndarray
    offsets: np.ndarray
    new_errors: np.ndarray
    crossing: np.ndarray


def default_slopes(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Return the minimum-area slopes ``u / (u - l)`` (clipped to [0, 1])."""
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    span = upper - lower
    with np.errstate(divide="ignore", invalid="ignore"):
        slopes = np.where(span > 0, upper / np.where(span > 0, span, 1.0), 0.0)
    return np.clip(slopes, 0.0, 1.0)


def relu_relaxation(
    lower: np.ndarray,
    upper: np.ndarray,
    slopes: Optional[np.ndarray] = None,
    pass_through: Optional[np.ndarray] = None,
) -> ReLURelaxation:
    """Compute the sound affine ReLU relaxation for bounds ``[lower, upper]``.

    Parameters
    ----------
    lower, upper:
        Element-wise pre-activation bounds.
    slopes:
        Optional user-provided slopes in ``[0, 1]`` for crossing neurons
        (slope optimisation); ``None`` selects the minimum-area slopes.
    pass_through:
        Optional boolean mask of dimensions to which the ReLU is *not*
        applied (they are mapped by the identity).  The joint-space monDEQ
        abstract solvers use this for the input block of the state.

    Returns
    -------
    ReLURelaxation
        The per-dimension ``(lambda, mu, mu)`` triple.  For inactive
        neurons (``upper <= 0``) the relaxation maps everything to zero;
        for active neurons (``lower >= 0``) it is the identity.
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape:
        raise DomainError("lower and upper bounds must have the same shape")
    if np.any(lower > upper + 1e-12):
        raise DomainError("lower bounds exceed upper bounds")

    # The bounds may carry leading batch axes (the batched certification
    # engine relaxes a whole stack of elements at once); the neuron
    # dimension is always the trailing axis.
    dim = lower.shape[-1]
    inactive = upper <= 0.0
    active = lower >= 0.0
    if pass_through is not None:
        pass_through = np.asarray(pass_through, dtype=bool)
        if pass_through.shape != (dim,):
            raise DomainError("pass_through mask must match the element dimension")
        inactive = inactive & ~pass_through
        active = active | pass_through
    crossing = ~(inactive | active)

    out_slopes = np.zeros(lower.shape)
    out_offsets = np.zeros(lower.shape)
    out_errors = np.zeros(lower.shape)

    out_slopes[active] = 1.0

    if np.any(crossing):
        l_c = lower[crossing]
        u_c = upper[crossing]
        if slopes is None:
            lam = u_c / (u_c - l_c)
        else:
            slopes = np.asarray(slopes, dtype=float)
            if slopes.shape not in (lower.shape, (dim,), ()):
                raise DomainError("slopes must be a scalar or match the element dimension")
            lam = np.clip(np.broadcast_to(slopes, lower.shape)[crossing], 0.0, 1.0)
        # Height of the sound band max(-lambda*l, (1-lambda)*u); mu is half of it.
        gap = np.maximum(-lam * l_c, (1.0 - lam) * u_c)
        mu = gap / 2.0
        out_slopes[crossing] = lam
        out_offsets[crossing] = mu
        out_errors[crossing] = mu

    return ReLURelaxation(
        slopes=out_slopes,
        offsets=out_offsets,
        new_errors=out_errors,
        crossing=crossing,
    )


def relaxation_is_sound(relaxation: ReLURelaxation, lower: np.ndarray, upper: np.ndarray,
                        samples: int = 64, rng: Optional[np.random.Generator] = None) -> bool:
    """Sampling check that the relaxation band contains ReLU on ``[lower, upper]``.

    Intended for tests and debugging; never used on the verification path.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    xs = rng.uniform(lower, upper, size=(samples, lower.shape[0]))
    ys = np.maximum(xs, 0.0)
    approx = relaxation.slopes * xs + relaxation.offsets
    return bool(np.all(np.abs(ys - approx) <= relaxation.new_errors + 1e-9))
