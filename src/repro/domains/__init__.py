"""Abstract-domain substrate.

This subpackage contains every abstract domain the paper discusses
(Table 1) plus the machinery the CH-Zonotope domain needs:

* :mod:`repro.domains.interval` — the Box domain.
* :mod:`repro.domains.zonotope` — the standard Zonotope domain
  (Ghorbal et al. 2009; Singh et al. 2018) with joins, used by the Kleene
  baseline and the square-root case study.
* :mod:`repro.domains.chzonotope` — the paper's novel CH-Zonotope domain
  with error consolidation (Theorem 4.1), the efficient O(p^3) inclusion
  check (Theorem 4.2) and expansion (Eq. 10).
* :mod:`repro.domains.parallelotope` — the Parallelotope special case
  (CH-Zonotope with zero Box component) used in the ablation study.
* :mod:`repro.domains.order_reduction` — order-reduction strategies
  (PCA, Box, Girard) following Kopetzki et al. 2017.
* :mod:`repro.domains.containment` — the LP-based containment baseline of
  Sadraddini & Tedrake 2019 (Fig. 18) and sampling-based falsifiers.
* :mod:`repro.domains.volume` — exact zonotope volume in low dimensions
  (Fig. 19).
* :mod:`repro.domains.relu` — shared ReLU-relaxation arithmetic.
"""

from repro.domains.base import AbstractElement
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.parallelotope import Parallelotope
from repro.domains.zonotope import Zonotope

__all__ = [
    "AbstractElement",
    "CHZonotope",
    "Interval",
    "Parallelotope",
    "Zonotope",
]
