"""Zonotope order-reduction strategies (Kopetzki et al. 2017).

Order reduction over-approximates a zonotope with ``k`` generators by one
with fewer generators.  The paper's error consolidation (Theorem 4.1) is
order reduction via outer-approximation specialised to produce a *proper*
(parallelotope-shaped) error matrix; this module provides the classic
strategies it is compared against and builds on:

* :func:`reduce_box` — collapse everything into the interval hull
  (order 1, axis-aligned).
* :func:`reduce_pca` — the PCA method used by the paper: project the
  generators onto the PCA basis of the generator matrix and sum absolute
  contributions per direction.
* :func:`reduce_girard` — Girard's method: keep the ``p (order - 1)``
  largest generators and box the rest.

All functions return a :class:`~repro.domains.zonotope.Zonotope` whose
concretisation is a superset of the input's (soundness is covered by
property-based tests).
"""

from __future__ import annotations

import numpy as np

from repro.domains.zonotope import Zonotope
from repro.exceptions import DomainError
from repro.utils.linalg import pca_basis, safe_inverse


def reduce_box(zonotope: Zonotope) -> Zonotope:
    """Interval-hull (order-1, axis-aligned) over-approximation."""
    return Zonotope.from_interval(zonotope.to_interval())


def reduce_pca(zonotope: Zonotope) -> Zonotope:
    """PCA over-approximation: a parallelotope aligned with the principal
    directions of the generator matrix (the basis used by CH-Zonotope
    consolidation)."""
    if zonotope.num_generators == 0:
        return zonotope
    basis = pca_basis(zonotope.generators)
    inverse = safe_inverse(basis, context="PCA basis")
    coefficients = np.abs(inverse @ zonotope.generators).sum(axis=1)
    return Zonotope(zonotope.center, basis * coefficients[None, :])


def reduce_girard(zonotope: Zonotope, order: float = 1.0) -> Zonotope:
    """Girard's order reduction.

    Keeps the generators with the largest ``||g||_1 - ||g||_inf`` score
    (the standard heuristic) until the target ``order`` (= generators per
    dimension) is met, and over-approximates the remaining generators by
    their axis-aligned box.
    """
    if order < 1.0:
        raise DomainError("target order must be at least 1")
    p = zonotope.dim
    k = zonotope.num_generators
    target = int(np.floor(order * p))
    if k <= target:
        return zonotope
    generators = zonotope.generators
    scores = np.abs(generators).sum(axis=0) - np.abs(generators).max(axis=0)
    # Reduce the (k - target + p) lowest-scoring generators into a box,
    # keep the rest, so the result has exactly `target` generators.
    num_boxed = k - target + p
    num_boxed = min(max(num_boxed, 0), k)
    order_idx = np.argsort(scores)
    boxed_idx = order_idx[:num_boxed]
    kept_idx = order_idx[num_boxed:]
    box_radius = np.abs(generators[:, boxed_idx]).sum(axis=1)
    box_generators = np.diag(box_radius)
    nonzero = box_radius > 0
    box_generators = box_generators[:, nonzero]
    return Zonotope(
        zonotope.center, np.hstack([generators[:, kept_idx], box_generators])
    )


_METHODS = {
    "box": reduce_box,
    "pca": reduce_pca,
    "girard": reduce_girard,
}


def reduce_order(zonotope: Zonotope, method: str = "pca", **kwargs) -> Zonotope:
    """Dispatch to one of the reduction strategies by name."""
    try:
        reducer = _METHODS[method]
    except KeyError:
        raise DomainError(
            f"unknown order-reduction method {method!r}; choose from {sorted(_METHODS)}"
        ) from None
    return reducer(zonotope, **kwargs)
