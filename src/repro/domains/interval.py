"""The Box (interval) abstract domain.

The simplest domain in Table 1 of the paper: constant representation size,
O(p) inclusion checks, cheap propagation, but (as the evaluation confirms)
too imprecise to certify monDEQ robustness on its own.  It is used

* as a baseline domain for the Craft engine (Fig. 13, Table 4 "No Zono"),
* for interval bound propagation (IBP) baselines, and
* internally by the zonotope domains to compute concretisation bounds.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.domains.base import AbstractElement
from repro.exceptions import DimensionMismatchError, DomainError
from repro.utils.validation import ensure_vector


class Interval(AbstractElement):
    """Axis-aligned box ``[lower, upper]`` in R^p."""

    __slots__ = ("_lower", "_upper")

    def __init__(self, lower, upper):
        lower = ensure_vector(lower, "lower")
        upper = ensure_vector(upper, "upper", dim=lower.shape[0])
        if np.any(lower > upper + 1e-12):
            raise DomainError("Interval lower bounds must not exceed upper bounds")
        self._lower = lower
        self._upper = np.maximum(upper, lower)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_point(cls, point) -> "Interval":
        """Degenerate box containing exactly ``point``."""
        point = ensure_vector(point, "point")
        return cls(point, point)

    @classmethod
    def from_center_radius(cls, center, radius) -> "Interval":
        """Box ``center +/- radius`` (radius may be a scalar or a vector)."""
        center = ensure_vector(center, "center")
        radius = np.broadcast_to(np.asarray(radius, dtype=float), center.shape)
        if np.any(radius < 0):
            raise DomainError("radius must be non-negative")
        return cls(center - radius, center + radius)

    @classmethod
    def hull_of_points(cls, points) -> "Interval":
        """Smallest box containing every row of ``points``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return cls(points.min(axis=0), points.max(axis=0))

    # ------------------------------------------------------------------
    # AbstractElement interface
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self._lower.shape[0]

    @property
    def lower(self) -> np.ndarray:
        """Lower bound vector (copy)."""
        return self._lower.copy()

    @property
    def upper(self) -> np.ndarray:
        """Upper bound vector (copy)."""
        return self._upper.copy()

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self._lower + self._upper)

    @property
    def radius(self) -> np.ndarray:
        """Half-width per dimension."""
        return 0.5 * (self._upper - self._lower)

    def concretize_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._lower.copy(), self._upper.copy()

    def affine(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> "Interval":
        weight = np.asarray(weight, dtype=float)
        if weight.ndim != 2 or weight.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"weight must have shape (m, {self.dim}), got {weight.shape}"
            )
        center = weight @ self.center
        radius = np.abs(weight) @ self.radius
        if bias is not None:
            center = center + ensure_vector(bias, "bias", dim=weight.shape[0])
        return Interval(center - radius, center + radius)

    def relu(
        self, slopes: Optional[np.ndarray] = None, pass_through: Optional[np.ndarray] = None
    ) -> "Interval":
        # The exact interval ReLU ignores the slope parameter: clipping the
        # bounds is both sound and optimal for a box.
        del slopes
        lower = np.maximum(self._lower, 0.0)
        upper = np.maximum(self._upper, 0.0)
        if pass_through is not None:
            pass_through = np.asarray(pass_through, dtype=bool)
            lower = np.where(pass_through, self._lower, lower)
            upper = np.where(pass_through, self._upper, upper)
        return Interval(lower, upper)

    def scale(self, factor: float) -> "Interval":
        factor = float(factor)
        lo = factor * self._lower
        hi = factor * self._upper
        return Interval(np.minimum(lo, hi), np.maximum(lo, hi))

    def translate(self, offset: np.ndarray) -> "Interval":
        offset = ensure_vector(offset, "offset", dim=self.dim)
        return Interval(self._lower + offset, self._upper + offset)

    def sum(self, other: "Interval") -> "Interval":
        other = self._coerce(other)
        return Interval(self._lower + other._lower, self._upper + other._upper)

    def contains_point(self, point: np.ndarray, tol: float = 1e-9) -> bool:
        point = ensure_vector(point, "point", dim=self.dim)
        return bool(
            np.all(point >= self._lower - tol) and np.all(point <= self._upper + tol)
        )

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self._lower, self._upper, size=(count, self.dim))

    # ------------------------------------------------------------------
    # Lattice operations (used by the Kleene baseline)
    # ------------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (interval hull)."""
        other = self._coerce(other)
        return Interval(
            np.minimum(self._lower, other._lower), np.maximum(self._upper, other._upper)
        )

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Greatest lower bound, or ``None`` when the boxes are disjoint."""
        other = self._coerce(other)
        lower = np.maximum(self._lower, other._lower)
        upper = np.minimum(self._upper, other._upper)
        if np.any(lower > upper):
            return None
        return Interval(lower, upper)

    def widen(self, other: "Interval", threshold: float = np.inf) -> "Interval":
        """Standard interval widening against ``other`` (the newer iterate).

        Bounds that grew are pushed to ``-threshold`` / ``threshold``; bounds
        that grew *beyond* the threshold escalate to infinity, guaranteeing
        termination of Kleene iteration.  The result contains both operands.
        """
        other = self._coerce(other)
        lower_grew = other._lower < self._lower - 1e-12
        upper_grew = other._upper > self._upper + 1e-12
        lower = np.where(
            lower_grew,
            np.where(other._lower < -threshold, -np.inf, np.minimum(-threshold, other._lower)),
            np.minimum(self._lower, other._lower),
        )
        upper = np.where(
            upper_grew,
            np.where(other._upper > threshold, np.inf, np.maximum(threshold, other._upper)),
            np.maximum(self._upper, other._upper),
        )
        return Interval(lower, upper)

    def is_subset_of(self, other: "Interval", tol: float = 1e-9) -> bool:
        """Exact inclusion check (O(p))."""
        other = self._coerce(other)
        return bool(
            np.all(self._lower >= other._lower - tol)
            and np.all(self._upper <= other._upper + tol)
        )

    def intersects(self, other: "Interval") -> bool:
        """Return ``True`` when the two boxes overlap."""
        return self.meet(other) is not None

    def split(self, axis: Optional[int] = None) -> Tuple["Interval", "Interval"]:
        """Bisect the box along ``axis`` (widest axis by default).

        Used by the domain-splitting global certification (Section 6.2).
        """
        if axis is None:
            axis = int(np.argmax(self.width))
        if not 0 <= axis < self.dim:
            raise DomainError(f"axis {axis} out of range for dimension {self.dim}")
        mid = 0.5 * (self._lower[axis] + self._upper[axis])
        left_upper = self._upper.copy()
        left_upper[axis] = mid
        right_lower = self._lower.copy()
        right_lower[axis] = mid
        return Interval(self._lower, left_upper), Interval(right_lower, self._upper)

    def clip(self, lower: float, upper: float) -> "Interval":
        """Intersect with the box ``[lower, upper]^p`` (e.g. valid pixel range)."""
        return Interval(
            np.clip(self._lower, lower, upper), np.clip(self._upper, lower, upper)
        )

    @property
    def volume(self) -> float:
        """Product of widths (exact box volume)."""
        return float(np.prod(self.width))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return bool(
            np.allclose(self._lower, other._lower) and np.allclose(self._upper, other._upper)
        )

    def __hash__(self):  # pragma: no cover - intervals are not hashable
        raise TypeError("Interval elements are mutable-value objects and unhashable")

    def _coerce(self, other: "Interval") -> "Interval":
        if not isinstance(other, Interval):
            raise DomainError(f"expected an Interval, got {type(other).__name__}")
        if other.dim != self.dim:
            raise DimensionMismatchError(
                f"dimension mismatch: {self.dim} vs {other.dim}"
            )
        return other


def interval_hull(elements: Iterable[Interval]) -> Interval:
    """Interval hull (join) of a non-empty iterable of boxes."""
    elements = list(elements)
    if not elements:
        raise DomainError("interval_hull requires at least one element")
    result = elements[0]
    for element in elements[1:]:
        result = result.join(element)
    return result
