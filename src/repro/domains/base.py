"""Common interface of all abstract elements.

The fixpoint abstract-interpretation core (:mod:`repro.core`) is written
against this interface so that the contraction-based termination criterion
(Theorem 3.1), the Kleene baseline and the Craft verifier are domain
agnostic, exactly as stated in the paper ("our method can be instantiated
with any abstract domain").
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np


class AbstractElement(abc.ABC):
    """An abstract element over-approximating a set of points in R^p.

    Concrete subclasses are :class:`~repro.domains.interval.Interval`,
    :class:`~repro.domains.zonotope.Zonotope` and
    :class:`~repro.domains.chzonotope.CHZonotope`.
    All elements are immutable: every transformer returns a new element.
    """

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Dimension ``p`` of the concretised space."""

    @property
    @abc.abstractmethod
    def center(self) -> np.ndarray:
        """A point guaranteed to lie inside the concretisation."""

    @abc.abstractmethod
    def concretize_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return element-wise ``(lower, upper)`` bounds of the concretisation."""

    @abc.abstractmethod
    def affine(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> "AbstractElement":
        """Abstract transformer of ``x -> weight @ x + bias``."""

    @abc.abstractmethod
    def relu(self, slopes: Optional[np.ndarray] = None, **kwargs) -> "AbstractElement":
        """Abstract transformer of the element-wise ReLU.

        ``slopes`` optionally fixes the relaxation slope ``lambda`` per
        dimension (used by the slope-optimisation phase of Craft); ``None``
        uses the minimum-area choice ``lambda = u / (u - l)``.  Subclasses
        accept a ``pass_through`` boolean mask selecting dimensions that are
        mapped by the identity instead (the input block of joint-space
        solver states).
        """

    @abc.abstractmethod
    def scale(self, factor: float) -> "AbstractElement":
        """Abstract transformer of ``x -> factor * x``."""

    @abc.abstractmethod
    def translate(self, offset: np.ndarray) -> "AbstractElement":
        """Abstract transformer of ``x -> x + offset``."""

    @abc.abstractmethod
    def sum(self, other: "AbstractElement") -> "AbstractElement":
        """Minkowski sum with another element of the same type and dimension."""

    @abc.abstractmethod
    def contains_point(self, point: np.ndarray, tol: float = 1e-9) -> bool:
        """Return ``True`` when ``point`` lies in the concretisation."""

    @abc.abstractmethod
    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``count`` points drawn from the concretisation (shape ``(count, dim)``)."""

    # ------------------------------------------------------------------
    # Derived conveniences shared by all domains.
    # ------------------------------------------------------------------

    @property
    def width(self) -> np.ndarray:
        """Element-wise width ``upper - lower`` of the concretisation."""
        lower, upper = self.concretize_bounds()
        return upper - lower

    @property
    def mean_width(self) -> float:
        """Mean concretisation width — the precision proxy used in Fig. 13."""
        return float(np.mean(self.width))

    @property
    def max_width(self) -> float:
        """Maximum concretisation width, used by the divergence-abort heuristic."""
        return float(np.max(self.width)) if self.dim else 0.0

    def contains_points(self, points: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Vectorised :meth:`contains_point` over rows of ``points``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return np.array([self.contains_point(point, tol=tol) for point in points])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        lower, upper = self.concretize_bounds()
        return (
            f"{type(self).__name__}(dim={self.dim}, "
            f"mean_width={float(np.mean(upper - lower)):.4g})"
        )
