"""Dataset substrate.

The paper evaluates on MNIST, CIFAR10 and the HCAS collision-avoidance
table.  None of those are available in this offline environment, so this
subpackage generates synthetic stand-ins that exercise the same code paths
(see DESIGN.md, "Substitutions"):

* :mod:`repro.datasets.synthetic` — image-classification datasets with
  MNIST-like and CIFAR-like geometry (class prototypes + structured noise,
  pixel values in ``[0, 1]``).
* :mod:`repro.datasets.gaussian` — the Gaussian-mixture toy dataset of the
  error-consolidation case study (Appendix E.3).
* :mod:`repro.datasets.hcas` — a horizontal collision-avoidance MDP solved
  by value iteration, producing the tabular policy the HCAS monDEQ is
  trained on (Section 6.2).
"""

from repro.datasets.gaussian import make_gaussian_mixture
from repro.datasets.synthetic import Dataset, make_cifar_like, make_mnist_like
from repro.datasets.hcas import HCASDataset, make_hcas_dataset

__all__ = [
    "Dataset",
    "HCASDataset",
    "make_cifar_like",
    "make_gaussian_mixture",
    "make_hcas_dataset",
    "make_mnist_like",
]
