"""Synthetic image-classification datasets (MNIST-like and CIFAR-like).

Each class is defined by a smooth random prototype image; samples are the
prototype plus small random deformations (per-sample brightness, smooth
noise and pixel noise), clipped to ``[0, 1]``.  The generator parameters are
chosen so that

* an affine classifier separates the classes only partially,
* a trained monDEQ reaches high (MNIST-like) / moderate (CIFAR-like)
  natural accuracy, mirroring the accuracy gap in Table 2, and
* l-infinity perturbations of the paper's magnitudes (0.05, 2/255) flip a
  realistic fraction of samples.

The default resolutions (14x14 grey, 8x8x3 colour) keep the verification
benchmarks runnable on CPU while preserving the input dimensionality the
joint-space abstract solver has to handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, as_generator


@dataclass
class Dataset:
    """A train/test split of a classification dataset."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    image_shape: Tuple[int, ...]

    @property
    def input_dim(self) -> int:
        return int(np.prod(self.image_shape))

    def subset(self, train: int = None, test: int = None) -> "Dataset":
        """Return a copy restricted to the first ``train`` / ``test`` samples."""
        return Dataset(
            name=self.name,
            x_train=self.x_train[:train] if train else self.x_train,
            y_train=self.y_train[:train] if train else self.y_train,
            x_test=self.x_test[:test] if test else self.x_test,
            y_test=self.y_test[:test] if test else self.y_test,
            num_classes=self.num_classes,
            image_shape=self.image_shape,
        )


def _smooth_image(rng: np.random.Generator, size: int, channels: int, smoothness: int) -> np.ndarray:
    """A smooth random image obtained by box-blurring white noise."""
    image = rng.normal(size=(channels, size, size))
    for _ in range(smoothness):
        padded = np.pad(image, ((0, 0), (1, 1), (1, 1)), mode="edge")
        image = (
            padded[:, :-2, 1:-1] + padded[:, 2:, 1:-1] + padded[:, 1:-1, :-2]
            + padded[:, 1:-1, 2:] + padded[:, 1:-1, 1:-1]
        ) / 5.0
    image = image - image.min()
    peak = image.max()
    if peak > 0:
        image = image / peak
    return image


def _make_image_dataset(
    name: str,
    size: int,
    channels: int,
    num_classes: int,
    train_per_class: int,
    test_per_class: int,
    noise: float,
    deformation: float,
    smoothness: int,
    seed: SeedLike,
) -> Dataset:
    if num_classes < 2:
        raise DatasetError("need at least two classes")
    rng = as_generator(seed)
    prototypes = np.stack(
        [_smooth_image(rng, size, channels, smoothness) for _ in range(num_classes)]
    )

    def sample_split(per_class: int) -> Tuple[np.ndarray, np.ndarray]:
        images = []
        labels = []
        for cls in range(num_classes):
            for _ in range(per_class):
                brightness = 1.0 + deformation * rng.normal()
                smooth_noise = deformation * _smooth_image(rng, size, channels, smoothness)
                pixel_noise = noise * rng.normal(size=(channels, size, size))
                image = brightness * prototypes[cls] + smooth_noise + pixel_noise
                images.append(np.clip(image, 0.0, 1.0).reshape(-1))
                labels.append(cls)
        order = rng.permutation(len(images))
        return np.asarray(images)[order], np.asarray(labels, dtype=int)[order]

    x_train, y_train = sample_split(train_per_class)
    x_test, y_test = sample_split(test_per_class)
    return Dataset(
        name=name,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=num_classes,
        image_shape=(channels, size, size),
    )


def make_mnist_like(
    size: int = 14,
    num_classes: int = 10,
    train_per_class: int = 60,
    test_per_class: int = 12,
    noise: float = 0.04,
    seed: SeedLike = 0,
) -> Dataset:
    """Synthetic grey-scale digits stand-in for MNIST."""
    return _make_image_dataset(
        name="mnist_like",
        size=size,
        channels=1,
        num_classes=num_classes,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        noise=noise,
        deformation=0.10,
        smoothness=3,
        seed=seed,
    )


def make_cifar_like(
    size: int = 8,
    num_classes: int = 10,
    train_per_class: int = 60,
    test_per_class: int = 12,
    noise: float = 0.10,
    seed: SeedLike = 1,
) -> Dataset:
    """Synthetic colour-image stand-in for CIFAR10 (noisier, harder)."""
    return _make_image_dataset(
        name="cifar_like",
        size=size,
        channels=3,
        num_classes=num_classes,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        noise=noise,
        deformation=0.25,
        smoothness=2,
        seed=seed,
    )
