"""Gaussian-mixture toy dataset (Appendix E.3 / Fig. 19).

The error-consolidation volume study trains monDEQs with 2–4 hidden
dimensions "on a toy dataset with 5-dimensional inputs sampled from a
mixture of Gaussians and 3 classes"; this module generates exactly that
kind of data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, as_generator


def make_gaussian_mixture(
    num_samples: int = 300,
    input_dim: int = 5,
    num_classes: int = 3,
    separation: float = 2.0,
    noise: float = 0.5,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``(x, y)`` from a ``num_classes``-component Gaussian mixture.

    The class means are drawn on a sphere of radius ``separation`` so the
    classes are linearly separable up to the chosen ``noise`` level; the
    inputs are shifted and scaled into ``[0, 1]`` so the same preprocessing
    conventions as for the image datasets apply.
    """
    if num_classes < 2:
        raise DatasetError("need at least two classes")
    if num_samples < num_classes:
        raise DatasetError("need at least one sample per class")
    rng = as_generator(seed)
    directions = rng.normal(size=(num_classes, input_dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    means = separation * directions

    labels = rng.integers(0, num_classes, size=num_samples)
    samples = means[labels] + noise * rng.normal(size=(num_samples, input_dim))

    low = samples.min()
    span = samples.max() - low
    if span <= 0:
        span = 1.0
    samples = (samples - low) / span
    return samples, labels.astype(int)
