"""HCAS (Horizontal Collision Avoidance System) data substrate (Section 6.2).

The paper trains a monDEQ on the HCAS look-up table of Julian &
Kochenderfer 2019: a policy mapping the relative geometry of an intruder
aircraft — relative position ``(x, y)`` in kilo-feet and relative heading
``theta`` — to one of five advisories (COC, WL, WR, SL, SR), obtained by
solving a Markov Decision Process.  The original table is not available
offline, so this module builds a scaled-down but structurally faithful
substitute:

1. discretise the state space ``(x, y, theta)`` on a grid,
2. define encounter dynamics (own ship flies straight; each advisory turns
   it at a fixed rate; the intruder flies straight at its heading),
3. reward = large penalty for a near-mid-air collision (range below the
   NMAC threshold) plus a small penalty for alerting,
4. solve the finite-horizon MDP by value iteration, and
5. export the resulting greedy policy as a tabular dataset with normalised
   features, exactly what the monDEQ is trained and certified on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, as_generator

ACTION_NAMES = ("COC", "WL", "WR", "SL", "SR")
# Turn rates in degrees per step for each advisory (own ship).
ACTION_TURN_RATES = (0.0, 2.0, -2.0, 4.0, -4.0)
ALERT_COST = (0.0, 0.02, 0.02, 0.05, 0.05)


@dataclass(frozen=True)
class HCASGrid:
    """Discretisation of the HCAS state space."""

    x_range: Tuple[float, float] = (-10.0, 25.0)
    y_range: Tuple[float, float] = (-15.0, 20.0)
    x_points: int = 21
    y_points: int = 21
    theta_points: int = 9
    horizon: int = 25
    step_distance: float = 1.0
    nmac_radius: float = 2.5
    discount: float = 0.97

    def __post_init__(self):
        if min(self.x_points, self.y_points, self.theta_points) < 2:
            raise DatasetError("each grid axis needs at least two points")
        if self.horizon < 1:
            raise DatasetError("the planning horizon must be positive")

    def axes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        xs = np.linspace(*self.x_range, self.x_points)
        ys = np.linspace(*self.y_range, self.y_points)
        thetas = np.linspace(-180.0, 180.0, self.theta_points, endpoint=False)
        return xs, ys, thetas


@dataclass
class HCASDataset:
    """The solved policy table plus the flattened training data."""

    grid: HCASGrid
    features: np.ndarray
    labels: np.ndarray
    states: np.ndarray
    q_values: np.ndarray
    feature_low: np.ndarray = field(default_factory=lambda: np.zeros(3))
    feature_scale: np.ndarray = field(default_factory=lambda: np.ones(3))

    @property
    def num_actions(self) -> int:
        return len(ACTION_NAMES)

    def normalise(self, states: np.ndarray) -> np.ndarray:
        """Map raw ``(x, y, theta)`` states into the ``[0, 1]`` feature cube."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        return (states - self.feature_low) / self.feature_scale

    def denormalise(self, features: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalise`."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return features * self.feature_scale + self.feature_low

    def policy_slice(self, theta: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Policy labels over the ``(x, y)`` grid at the closest ``theta`` slice.

        Returns the x-axis, y-axis and a ``(len(ys), len(xs))`` label grid —
        the data shown in the left panel of Fig. 11.
        """
        xs, ys, thetas = self.grid.axes()
        theta_index = int(np.argmin(np.abs(thetas - theta)))
        labels = np.zeros((ys.shape[0], xs.shape[0]), dtype=int)
        for index, state in enumerate(self.states):
            if int(round((state[2] - thetas[0]) / (thetas[1] - thetas[0]))) != theta_index:
                continue
            x_index = int(np.argmin(np.abs(xs - state[0])))
            y_index = int(np.argmin(np.abs(ys - state[1])))
            labels[y_index, x_index] = self.labels[index]
        return xs, ys, labels


def _step_state(state: np.ndarray, action: int, grid: HCASGrid) -> np.ndarray:
    """Relative-geometry dynamics for one time step.

    The intruder advances along its heading; the own ship advances along the
    +x axis and turns according to the advisory, which (in the relative
    frame) rotates the intruder position the opposite way and shifts the
    relative heading.
    """
    x, y, theta = state
    theta_rad = np.deg2rad(theta)
    # Intruder motion in the own-ship frame.
    x = x + grid.step_distance * np.cos(theta_rad)
    y = y + grid.step_distance * np.sin(theta_rad)
    # Own-ship forward motion.
    x = x - grid.step_distance
    # Own-ship turn: rotate the relative frame.
    turn = np.deg2rad(ACTION_TURN_RATES[action])
    cos_t, sin_t = np.cos(-turn), np.sin(-turn)
    x, y = cos_t * x - sin_t * y, sin_t * x + cos_t * y
    theta = ((theta - ACTION_TURN_RATES[action] + 180.0) % 360.0) - 180.0
    return np.array([x, y, theta])


def _rollout_reward(state: np.ndarray, action: int, grid: HCASGrid) -> float:
    """Discounted reward of issuing ``action`` now and flying it for ``horizon`` steps.

    The advisory is held for the whole encounter (a receding-horizon
    simplification of the original MDP that avoids discretisation aliasing
    on coarse grids): the own ship keeps turning at the advisory's rate, the
    intruder flies straight, and every step inside the NMAC radius incurs
    the collision penalty on top of the per-step alerting cost.
    """
    reward = 0.0
    discount = 1.0
    current = state.copy()
    for _ in range(grid.horizon):
        current = _step_state(current, action, grid)
        separation = float(np.linalg.norm(current[:2]))
        step_reward = -ALERT_COST[action]
        if separation < grid.nmac_radius:
            step_reward -= 1.0
        reward += discount * step_reward
        discount *= grid.discount
    return reward


def solve_hcas_mdp(grid: HCASGrid) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Finite-horizon evaluation of each advisory over the discretised states.

    For every grid state the five advisories are scored by simulating the
    (deterministic, continuous-state) encounter dynamics for ``horizon``
    steps (:func:`_rollout_reward`); the policy label is the argmax.
    Returns the state table ``(N, 3)``, the policy labels ``(N,)`` and the
    score table ``(N, 5)``.
    """
    xs, ys, thetas = grid.axes()
    states = np.array([[x, y, theta] for x in xs for y in ys for theta in thetas])
    num_actions = len(ACTION_NAMES)
    q_values = np.zeros((states.shape[0], num_actions))
    for index, state in enumerate(states):
        for action in range(num_actions):
            q_values[index, action] = _rollout_reward(state, action, grid)
    labels = q_values.argmax(axis=1)
    return states, labels.astype(int), q_values


def make_hcas_dataset(grid: HCASGrid = None, seed: SeedLike = 0) -> HCASDataset:
    """Solve the MDP and package the policy table as a training dataset."""
    grid = grid if grid is not None else HCASGrid()
    rng = as_generator(seed)
    states, labels, q_values = solve_hcas_mdp(grid)

    feature_low = np.array([grid.x_range[0], grid.y_range[0], -180.0])
    feature_scale = np.array(
        [grid.x_range[1] - grid.x_range[0], grid.y_range[1] - grid.y_range[0], 360.0]
    )
    features = (states - feature_low) / feature_scale

    order = rng.permutation(states.shape[0])
    return HCASDataset(
        grid=grid,
        features=features[order],
        labels=labels[order],
        states=states[order],
        q_values=q_values[order],
        feature_low=feature_low,
        feature_scale=feature_scale,
    )
