"""First-order optimisers operating on dictionaries of numpy parameters."""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

ParameterDict = Dict[str, np.ndarray]


class Optimizer(abc.ABC):
    """Base class: updates parameters in place from a matching gradient dict."""

    @abc.abstractmethod
    def step(self, parameters: ParameterDict, gradients: ParameterDict) -> None:
        """Apply one update; missing gradient entries are skipped."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: ParameterDict = {}

    def step(self, parameters: ParameterDict, gradients: ParameterDict) -> None:
        for name, gradient in gradients.items():
            if name not in parameters:
                continue
            update = gradient
            if self.weight_decay:
                update = update + self.weight_decay * parameters[name]
            if self.momentum:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(parameters[name])
                velocity = self.momentum * velocity + update
                self._velocity[name] = velocity
                update = velocity
            parameters[name] -= self.learning_rate * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._first_moment: ParameterDict = {}
        self._second_moment: ParameterDict = {}
        self._step_count = 0

    def step(self, parameters: ParameterDict, gradients: ParameterDict) -> None:
        self._step_count += 1
        for name, gradient in gradients.items():
            if name not in parameters:
                continue
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameters[name]
            first = self._first_moment.get(name, np.zeros_like(parameters[name]))
            second = self._second_moment.get(name, np.zeros_like(parameters[name]))
            first = self.beta1 * first + (1 - self.beta1) * gradient
            second = self.beta2 * second + (1 - self.beta2) * gradient**2
            self._first_moment[name] = first
            self._second_moment[name] = second
            first_hat = first / (1 - self.beta1**self._step_count)
            second_hat = second / (1 - self.beta2**self._step_count)
            parameters[name] -= self.learning_rate * first_hat / (np.sqrt(second_hat) + self.epsilon)
