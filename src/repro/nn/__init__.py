"""Minimal numpy neural-network substrate.

The monDEQ substrate (:mod:`repro.mondeq`) needs losses, optimisers,
parameter initialisation and classification metrics; this subpackage
provides them without any external deep-learning dependency (the paper's
artifact uses PyTorch; see DESIGN.md for the substitution rationale).
"""

from repro.nn.losses import cross_entropy_loss, margin_loss, softmax
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Adam",
    "Optimizer",
    "SGD",
    "accuracy",
    "confusion_matrix",
    "cross_entropy_loss",
    "margin_loss",
    "softmax",
]
