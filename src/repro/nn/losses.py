"""Classification losses with analytic gradients.

The training loop and the PGD attack both need gradients of a scalar loss
with respect to the network logits; the functions here return the loss value
together with ``dL/dlogits`` so that callers can plug them into the
implicit-differentiation backward pass of the monDEQ.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` raw scores.
    labels:
        ``(batch,)`` integer class labels.
    """
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    labels = np.asarray(labels, dtype=int).reshape(-1)
    batch = logits.shape[0]
    probabilities = softmax(logits)
    picked = probabilities[np.arange(batch), labels]
    loss = float(-np.mean(np.log(np.clip(picked, 1e-12, None))))
    gradient = probabilities.copy()
    gradient[np.arange(batch), labels] -= 1.0
    gradient /= batch
    return loss, gradient


def margin_loss(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Margin loss (Gowal et al. 2019) used by the PGD attack.

    The loss is ``max_i!=t logit_i - logit_t`` per sample (so *maximising* it
    pushes towards misclassification); the returned gradient is w.r.t. the
    logits and already averaged over the batch.
    """
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    labels = np.asarray(labels, dtype=int).reshape(-1)
    batch, classes = logits.shape
    mask = np.zeros_like(logits, dtype=bool)
    mask[np.arange(batch), labels] = True
    adversarial = np.where(mask, -np.inf, logits)
    best_other = adversarial.argmax(axis=1)
    loss = float(np.mean(logits[np.arange(batch), best_other] - logits[np.arange(batch), labels]))
    gradient = np.zeros_like(logits)
    gradient[np.arange(batch), best_other] += 1.0
    gradient[np.arange(batch), labels] -= 1.0
    gradient /= batch
    return loss, gradient


def targeted_margin_loss(
    logits: np.ndarray, labels: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Targeted variant: maximise ``logit_target - logit_true``."""
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    labels = np.asarray(labels, dtype=int).reshape(-1)
    targets = np.asarray(targets, dtype=int).reshape(-1)
    batch = logits.shape[0]
    loss = float(np.mean(logits[np.arange(batch), targets] - logits[np.arange(batch), labels]))
    gradient = np.zeros_like(logits)
    gradient[np.arange(batch), targets] += 1.0
    gradient[np.arange(batch), labels] -= 1.0
    gradient /= batch
    return loss, gradient
