"""Classification metrics used by the training loop and the experiment harness."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching entries in two integer label arrays."""
    predictions = np.asarray(predictions, dtype=int).reshape(-1)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix with true labels as rows."""
    predictions = np.asarray(predictions, dtype=int).reshape(-1)
    labels = np.asarray(labels, dtype=int).reshape(-1)
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for true, predicted in zip(labels, predictions):
        matrix[true, predicted] += 1
    return matrix
