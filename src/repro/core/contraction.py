"""The contraction-based termination criterion (Theorem 3.1 and B.1).

The engine in this module implements the first phase of the paper's
framework: iterate a sound abstract transformer of a convergent fixpoint
solver, *without joins*, until the current state is shown to be contained
in a previously consolidated state.  By Theorem 3.1 (single step) and
Theorem B.1 (``s`` unrolled steps, needed because we only consolidate every
``r``-th iteration and compare against a history of proper states), the
contained state is then a sound over-approximation of the true fixpoint
set.

The engine is written against :class:`DomainOps`, a small strategy object
bundling the three domain-specific operations it needs — consolidation to a
"proper" element, the containment check, and the choice of consolidation
basis — so that the same engine drives CH-Zonotope, Box and plain-Zonotope
analyses (including the Householder square-root case study).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

import numpy as np

from repro.core.config import AccelerationConfig, ContractionSettings
from repro.core.expansion import ExpansionSchedule
from repro.core.results import ContractionResult
from repro.domains.base import AbstractElement
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import ConfigurationError, DomainError
from repro.utils.linalg import shared_pca_basis

StepFunction = Callable[[AbstractElement], AbstractElement]

#: Minimum pre-consolidation mean width for the shared-basis inflation
#: guard to arm — near-point elements consolidate to floored coefficients
#: under any basis, so a ratio against (near-)zero would only trigger
#: pointless per-sample fallbacks.  Matches the batched guard in
#: :mod:`repro.engine.craft`.
_GUARD_MIN_WIDTH = 1e-9


def proposal_factors(
    accel: AccelerationConfig,
    widths: np.ndarray,
    step_width_1: np.ndarray,
    step_width_2: np.ndarray,
    step_width_3: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorised acceleration-proposal decision (shared by both drivers).

    Given the mean widths of the just-consolidated states (``widths``) and
    the last three *step* widths of each sample, fit a geometric tail to
    the step-width increments: a sample qualifies when the increments
    contract monotonically (``0 < rho <= rate_cap``) and the extrapolated
    limit ``w3 + d2 rho / (1 - rho)`` is positive.  The returned dilation
    factor scales the consolidated state to the predicted limit width plus
    ``margin`` relative slack, clipped to ``[1, max_factor]``.

    Returns ``(factors, mask)``; rows with ``mask=False`` carry factor 1.
    The sequential driver evaluates the same arithmetic with one-element
    arrays, so both engines propose identically — the engine parity
    contract extends to acceleration.
    """
    d1 = step_width_2 - step_width_1
    d2 = step_width_3 - step_width_2
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = d2 / d1
        predicted = step_width_3 + d2 * rho / (1.0 - rho)
        mask = (
            np.isfinite(rho)
            & (rho > 0.0)
            & (rho <= accel.rate_cap)
            & (widths > _GUARD_MIN_WIDTH)
            & np.isfinite(predicted)
            & (predicted > 0.0)
        )
        factors = np.minimum(
            accel.max_factor,
            np.maximum(1.0, (1.0 + accel.margin) * predicted / widths),
        )
    factors = np.where(mask, factors, 1.0)
    return factors, mask


def _proposal_factor(
    accel: AccelerationConfig, width: float, step_widths: "tuple[float, float, float]"
) -> Optional[float]:
    """Scalar wrapper of :func:`proposal_factors` for the sequential driver."""
    factors, mask = proposal_factors(
        accel,
        np.array([width]),
        np.array([step_widths[0]]),
        np.array([step_widths[1]]),
        np.array([step_widths[2]]),
    )
    return float(factors[0]) if bool(mask[0]) else None


@dataclass
class DomainOps:
    """Domain-specific operations required by the contraction engine.

    Attributes
    ----------
    consolidate:
        ``consolidate(element, basis, w_mul, w_add)`` returning a "proper"
        element that over-approximates ``element`` and supports the
        containment check as the *outer* operand.  For domains with constant
        representation size (Box) this may simply apply expansion.
    contains:
        ``contains(outer, inner)`` — a *sound* containment check: ``True``
        implies ``gamma(inner) ⊆ gamma(outer)``.
    compute_basis:
        ``compute_basis(element)`` returning the basis reused by subsequent
        consolidations, or ``None`` when the domain has no notion of basis.
    dilate:
        ``dilate(element, factor)`` returning a superset of ``element``
        whose extents are scaled by ``factor >= 1`` about the centre.
        Used by the acceleration proposer to build extrapolated candidate
        enclosures; ``None`` disables proposing for the domain.
    """

    consolidate: Callable[[AbstractElement, Optional[np.ndarray], float, float], AbstractElement]
    contains: Callable[[AbstractElement, AbstractElement], bool]
    compute_basis: Optional[Callable[[AbstractElement], np.ndarray]] = None
    dilate: Optional[Callable[[AbstractElement, float], AbstractElement]] = None


def _pooled_element_basis(element: CHZonotope) -> np.ndarray:
    """Pooled-Gram consolidation basis of a single element.

    The sequential counterpart of the batched stacks'
    ``shared_pca_basis``: the element's generators are treated as a
    one-sample stack so the arithmetic (and hence the resulting basis)
    matches the batched kernel exactly for ``B = 1``.
    """
    if element.num_generators == 0 or not np.any(element.generators):
        return np.eye(element.dim)
    return shared_pca_basis(element.generators[None])


def _chzonotope_ops(
    consolidation_basis: str = "per_sample", shared_basis_max_inflation: float = 4.0
) -> DomainOps:
    shared = consolidation_basis == "shared"

    def compute_basis(element: CHZonotope):
        if shared:
            return _pooled_element_basis(element)
        return element.pca_basis()

    def consolidate(element: CHZonotope, basis, w_mul, w_add):
        if not shared:
            return element.consolidate(basis=basis, w_mul=w_mul, w_add=w_add)
        if basis is None:
            basis = compute_basis(element)
        candidate = element.consolidate(basis=basis, w_mul=w_mul, w_add=w_add)
        # Width-inflation guard: a pooled basis that fits this element
        # badly falls back to the element's own PCA basis — the same
        # policy the batched driver applies per sample.  Near-point
        # elements stay unguarded (any basis gives floored coefficients).
        before = element.mean_width
        if before > _GUARD_MIN_WIDTH and candidate.mean_width > shared_basis_max_inflation * before:
            candidate = element.consolidate(
                basis=element.pca_basis(), w_mul=w_mul, w_add=w_add
            )
        return candidate

    def contains(outer: CHZonotope, inner: CHZonotope):
        return outer.contains(inner)

    def dilate(element: CHZonotope, factor: float):
        if factor < 1.0:
            raise DomainError(f"dilation factor must be >= 1, got {factor}")
        return CHZonotope(
            element.center, element.generators * factor, element.box * factor
        )

    return DomainOps(
        consolidate=consolidate,
        contains=contains,
        compute_basis=compute_basis,
        dilate=dilate,
    )


def _interval_ops() -> DomainOps:
    def consolidate(element: Interval, basis, w_mul, w_add):
        del basis
        radius = (1.0 + w_mul) * element.radius + w_add
        return Interval.from_center_radius(element.center, radius)

    def contains(outer: Interval, inner: Interval):
        if isinstance(inner, Interval):
            return inner.is_subset_of(outer)
        lower, upper = inner.concretize_bounds()
        return Interval(lower, upper).is_subset_of(outer)

    def dilate(element: Interval, factor: float):
        if factor < 1.0:
            raise DomainError(f"dilation factor must be >= 1, got {factor}")
        return Interval.from_center_radius(element.center, element.radius * factor)

    return DomainOps(
        consolidate=consolidate, contains=contains, compute_basis=None, dilate=dilate
    )


def _zonotope_ops(
    consolidation_basis: str = "per_sample", shared_basis_max_inflation: float = 4.0
) -> DomainOps:
    """Plain-Zonotope analyses reuse the CH-Zonotope machinery with the Box
    component disabled: consolidation lifts into CH-Zonotope space, applies
    Theorem 4.1, and projects the proper result (a parallelotope, whose Box
    component is zero by construction) back to a plain :class:`Zonotope`.
    Keeping the working element a ``Zonotope`` is what gives the domain its
    "no Box component" semantics — the Zonotope ReLU transformer writes
    fresh error terms into generator columns — and keeps every transformer
    in the pipeline type-stable (a lifted state could not be Minkowski-
    summed with the plain-Zonotope input injection).  The Theorem 4.2
    containment check applies unchanged through the same lift, and the
    consolidation-basis policy (per-sample vs pooled) through the lifted
    CH-Zonotope ops."""
    chz = _chzonotope_ops(consolidation_basis, shared_basis_max_inflation)

    def lift(element) -> CHZonotope:
        if isinstance(element, CHZonotope):
            return element
        if isinstance(element, Zonotope):
            return CHZonotope.from_zonotope(element)
        raise DomainError(f"cannot lift {type(element).__name__} to CHZonotope")

    def consolidate(element, basis, w_mul, w_add):
        return chz.consolidate(lift(element), basis, w_mul, w_add).to_zonotope()

    def contains(outer, inner):
        return chz.contains(lift(outer), lift(inner))

    def compute_basis(element):
        return chz.compute_basis(lift(element))

    def dilate(element: Zonotope, factor: float):
        if factor < 1.0:
            raise DomainError(f"dilation factor must be >= 1, got {factor}")
        return Zonotope(element.center, element.generators * factor)

    return DomainOps(
        consolidate=consolidate,
        contains=contains,
        compute_basis=compute_basis,
        dilate=dilate,
    )


def _parallelotope_ops(
    consolidation_basis: str = "per_sample", shared_basis_max_inflation: float = 4.0
) -> DomainOps:
    """The parallelotope pipeline shares the zonotope ops through the same
    CH-Zonotope lift, but consolidation projects back into the
    :class:`~repro.domains.parallelotope.ParallelotopeZonotope` element so
    the pipeline stays type-stable — the subsequent step's ReLU must keep
    reducing to the enclosing parallelotope."""
    from repro.domains.parallelotope import ParallelotopeZonotope

    base = _zonotope_ops(consolidation_basis, shared_basis_max_inflation)

    def consolidate(element, basis, w_mul, w_add):
        return ParallelotopeZonotope._wrap(base.consolidate(element, basis, w_mul, w_add))

    def dilate(element, factor):
        return ParallelotopeZonotope._wrap(base.dilate(element, factor))

    return DomainOps(
        consolidate=consolidate,
        contains=base.contains,
        compute_basis=base.compute_basis,
        dilate=dilate,
    )


def domain_ops_for(
    domain: str,
    consolidation_basis: str = "per_sample",
    shared_basis_max_inflation: float = 4.0,
) -> DomainOps:
    """Return the :class:`DomainOps` bundle for a domain name.

    ``domain`` is one of ``"chzonotope"``, ``"box"``, ``"zonotope"`` or
    ``"parallelotope"``.  ``consolidation_basis`` selects the stage's
    *resolved* basis policy (``"per_sample"`` or ``"shared"`` — resolve an
    ``"auto"`` configuration through
    :meth:`repro.core.config.CraftConfig.resolved_consolidation_basis`
    first); ``shared_basis_max_inflation`` parameterises the shared-mode
    width-inflation guard.  The Box domain has no basis and ignores both.
    """
    if consolidation_basis not in ("per_sample", "shared"):
        raise ConfigurationError(
            "domain_ops_for expects a resolved consolidation basis "
            f"('per_sample' or 'shared'), got {consolidation_basis!r}"
        )
    factories = {
        "chzonotope": _chzonotope_ops,
        "box": lambda *_: _interval_ops(),
        "zonotope": _zonotope_ops,
        "parallelotope": _parallelotope_ops,
    }
    try:
        factory = factories[domain]
    except KeyError:
        raise ConfigurationError(
            f"unknown domain {domain!r}; choose from {sorted(factories)}"
        ) from None
    return factory(consolidation_basis, shared_basis_max_inflation)


class ContractionEngine:
    """Phase-one engine: iterate until contraction is detected.

    Parameters
    ----------
    settings:
        Iteration budget, consolidation cadence, history size and abort
        width (:class:`~repro.core.config.ContractionSettings`).
    ops:
        Domain operations (:class:`DomainOps`).
    expansion:
        Expansion schedule applied at each consolidation
        (:class:`~repro.core.expansion.ExpansionSchedule`); ``None``
        disables expansion.
    """

    def __init__(
        self,
        settings: ContractionSettings,
        ops: DomainOps,
        expansion: Optional[ExpansionSchedule] = None,
        acceleration: Optional[AccelerationConfig] = None,
    ):
        self._settings = settings
        self._ops = ops
        self._expansion = expansion
        self._acceleration = (
            acceleration
            if acceleration is not None and acceleration.enabled and ops.dilate is not None
            else None
        )

    def run(self, step: StepFunction, initial: AbstractElement) -> ContractionResult:
        """Iterate ``step`` from ``initial`` until contraction or exhaustion.

        The loop mirrors Algorithm 1's ``not contained`` branch together
        with the engineering details of Appendix C: the state is
        consolidated (and expanded) every ``consolidate_every`` iterations,
        the consolidation basis is recomputed every
        ``basis_recompute_every`` iterations, and the current state is
        compared against the ``history_size`` most recent consolidated
        states (sound by Theorem B.1).
        """
        settings = self._settings
        accel = self._acceleration
        history: Deque[AbstractElement] = deque(maxlen=settings.history_size)
        width_trace = []
        state = initial
        basis: Optional[np.ndarray] = None
        consolidations = 0
        peak_error_terms = getattr(state, "num_generators", 0)
        step_width_1 = step_width_2 = step_width_3 = float("nan")
        proposals = 0

        for iteration in range(settings.max_iterations):
            if iteration % settings.consolidate_every == 0:
                if self._ops.compute_basis is not None and (
                    basis is None or iteration % settings.basis_recompute_every == 0
                ):
                    basis = self._ops.compute_basis(state)
                w_mul, w_add = (0.0, 0.0)
                if self._expansion is not None:
                    w_mul, w_add = self._expansion.step()
                state = self._ops.consolidate(state, basis, w_mul, w_add)
                history.append(state)
                consolidations += 1

                if accel is not None and proposals < accel.max_proposals:
                    # Acceleration proposer (the soundness firewall): when
                    # the last segment's step widths contract
                    # geometrically, extrapolate their limit, dilate the
                    # just-consolidated proper state into a candidate
                    # enclosure at the predicted limit width (plus
                    # margin), and accept it only if a short run of
                    # *exact* abstract steps maps it into itself — the
                    # same Theorem B.1 proof obligation as the plain
                    # multi-step history scan, just against an
                    # extrapolated reference instead of a historical one.
                    # A rejected proposal changes nothing: the plain
                    # trajectory continues untouched below.
                    decision = _proposal_factor(
                        accel,
                        state.mean_width,
                        (step_width_1, step_width_2, step_width_3),
                    )
                    if decision is not None:
                        candidate = self._ops.dilate(state, decision)
                        proposals += 1
                        trial = candidate
                        budget = min(
                            settings.consolidate_every,
                            settings.max_iterations - iteration,
                        )
                        for unrolled in range(1, budget + 1):
                            trial = step(trial)
                            peak_error_terms = max(
                                peak_error_terms, getattr(trial, "num_generators", 0)
                            )
                            if not np.all(np.isfinite(trial.width)):
                                break
                            if self._ops.contains(candidate, trial):
                                return ContractionResult(
                                    contained=True,
                                    state=trial,
                                    reference=candidate,
                                    iterations=iteration + unrolled,
                                    consolidations=consolidations,
                                    width_trace=width_trace,
                                    peak_error_terms=peak_error_terms,
                                    accelerated=True,
                                    proposals=proposals,
                                )

            next_state = step(state)
            peak_error_terms = max(
                peak_error_terms, getattr(next_state, "num_generators", 0)
            )
            if settings.track_trace:
                width_trace.append(next_state.mean_width)
            if accel is not None:
                step_width_1, step_width_2, step_width_3 = (
                    step_width_2,
                    step_width_3,
                    next_state.mean_width,
                )

            if next_state.max_width > settings.abort_width or not np.all(
                np.isfinite(next_state.width)
            ):
                return ContractionResult(
                    contained=False,
                    state=next_state,
                    reference=None,
                    iterations=iteration + 1,
                    consolidations=consolidations,
                    width_trace=width_trace,
                    diverged=True,
                    peak_error_terms=peak_error_terms,
                    proposals=proposals,
                )

            for reference in reversed(history):
                if self._ops.contains(reference, next_state):
                    return ContractionResult(
                        contained=True,
                        state=next_state,
                        reference=reference,
                        iterations=iteration + 1,
                        consolidations=consolidations,
                        width_trace=width_trace,
                        peak_error_terms=peak_error_terms,
                        proposals=proposals,
                    )
            state = next_state

        return ContractionResult(
            contained=False,
            state=state,
            reference=None,
            iterations=settings.max_iterations,
            consolidations=consolidations,
            width_trace=width_trace,
            peak_error_terms=peak_error_terms,
            proposals=proposals,
        )
