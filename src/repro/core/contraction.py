"""The contraction-based termination criterion (Theorem 3.1 and B.1).

The engine in this module implements the first phase of the paper's
framework: iterate a sound abstract transformer of a convergent fixpoint
solver, *without joins*, until the current state is shown to be contained
in a previously consolidated state.  By Theorem 3.1 (single step) and
Theorem B.1 (``s`` unrolled steps, needed because we only consolidate every
``r``-th iteration and compare against a history of proper states), the
contained state is then a sound over-approximation of the true fixpoint
set.

The engine is written against :class:`DomainOps`, a small strategy object
bundling the three domain-specific operations it needs — consolidation to a
"proper" element, the containment check, and the choice of consolidation
basis — so that the same engine drives CH-Zonotope, Box and plain-Zonotope
analyses (including the Householder square-root case study).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

import numpy as np

from repro.core.config import ContractionSettings
from repro.core.expansion import ExpansionSchedule
from repro.core.results import ContractionResult
from repro.domains.base import AbstractElement
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import ConfigurationError, DomainError
from repro.utils.linalg import shared_pca_basis

StepFunction = Callable[[AbstractElement], AbstractElement]

#: Minimum pre-consolidation mean width for the shared-basis inflation
#: guard to arm — near-point elements consolidate to floored coefficients
#: under any basis, so a ratio against (near-)zero would only trigger
#: pointless per-sample fallbacks.  Matches the batched guard in
#: :mod:`repro.engine.craft`.
_GUARD_MIN_WIDTH = 1e-9


@dataclass
class DomainOps:
    """Domain-specific operations required by the contraction engine.

    Attributes
    ----------
    consolidate:
        ``consolidate(element, basis, w_mul, w_add)`` returning a "proper"
        element that over-approximates ``element`` and supports the
        containment check as the *outer* operand.  For domains with constant
        representation size (Box) this may simply apply expansion.
    contains:
        ``contains(outer, inner)`` — a *sound* containment check: ``True``
        implies ``gamma(inner) ⊆ gamma(outer)``.
    compute_basis:
        ``compute_basis(element)`` returning the basis reused by subsequent
        consolidations, or ``None`` when the domain has no notion of basis.
    """

    consolidate: Callable[[AbstractElement, Optional[np.ndarray], float, float], AbstractElement]
    contains: Callable[[AbstractElement, AbstractElement], bool]
    compute_basis: Optional[Callable[[AbstractElement], np.ndarray]] = None


def _pooled_element_basis(element: CHZonotope) -> np.ndarray:
    """Pooled-Gram consolidation basis of a single element.

    The sequential counterpart of the batched stacks'
    ``shared_pca_basis``: the element's generators are treated as a
    one-sample stack so the arithmetic (and hence the resulting basis)
    matches the batched kernel exactly for ``B = 1``.
    """
    if element.num_generators == 0 or not np.any(element.generators):
        return np.eye(element.dim)
    return shared_pca_basis(element.generators[None])


def _chzonotope_ops(
    consolidation_basis: str = "per_sample", shared_basis_max_inflation: float = 4.0
) -> DomainOps:
    shared = consolidation_basis == "shared"

    def compute_basis(element: CHZonotope):
        if shared:
            return _pooled_element_basis(element)
        return element.pca_basis()

    def consolidate(element: CHZonotope, basis, w_mul, w_add):
        if not shared:
            return element.consolidate(basis=basis, w_mul=w_mul, w_add=w_add)
        if basis is None:
            basis = compute_basis(element)
        candidate = element.consolidate(basis=basis, w_mul=w_mul, w_add=w_add)
        # Width-inflation guard: a pooled basis that fits this element
        # badly falls back to the element's own PCA basis — the same
        # policy the batched driver applies per sample.  Near-point
        # elements stay unguarded (any basis gives floored coefficients).
        before = element.mean_width
        if before > _GUARD_MIN_WIDTH and candidate.mean_width > shared_basis_max_inflation * before:
            candidate = element.consolidate(
                basis=element.pca_basis(), w_mul=w_mul, w_add=w_add
            )
        return candidate

    def contains(outer: CHZonotope, inner: CHZonotope):
        return outer.contains(inner)

    return DomainOps(consolidate=consolidate, contains=contains, compute_basis=compute_basis)


def _interval_ops() -> DomainOps:
    def consolidate(element: Interval, basis, w_mul, w_add):
        del basis
        radius = (1.0 + w_mul) * element.radius + w_add
        return Interval.from_center_radius(element.center, radius)

    def contains(outer: Interval, inner: Interval):
        if isinstance(inner, Interval):
            return inner.is_subset_of(outer)
        lower, upper = inner.concretize_bounds()
        return Interval(lower, upper).is_subset_of(outer)

    return DomainOps(consolidate=consolidate, contains=contains, compute_basis=None)


def _zonotope_ops(
    consolidation_basis: str = "per_sample", shared_basis_max_inflation: float = 4.0
) -> DomainOps:
    """Plain-Zonotope analyses reuse the CH-Zonotope machinery with the Box
    component disabled: consolidation lifts into CH-Zonotope space, applies
    Theorem 4.1, and projects the proper result (a parallelotope, whose Box
    component is zero by construction) back to a plain :class:`Zonotope`.
    Keeping the working element a ``Zonotope`` is what gives the domain its
    "no Box component" semantics — the Zonotope ReLU transformer writes
    fresh error terms into generator columns — and keeps every transformer
    in the pipeline type-stable (a lifted state could not be Minkowski-
    summed with the plain-Zonotope input injection).  The Theorem 4.2
    containment check applies unchanged through the same lift, and the
    consolidation-basis policy (per-sample vs pooled) through the lifted
    CH-Zonotope ops."""
    chz = _chzonotope_ops(consolidation_basis, shared_basis_max_inflation)

    def lift(element) -> CHZonotope:
        if isinstance(element, CHZonotope):
            return element
        if isinstance(element, Zonotope):
            return CHZonotope.from_zonotope(element)
        raise DomainError(f"cannot lift {type(element).__name__} to CHZonotope")

    def consolidate(element, basis, w_mul, w_add):
        return chz.consolidate(lift(element), basis, w_mul, w_add).to_zonotope()

    def contains(outer, inner):
        return chz.contains(lift(outer), lift(inner))

    def compute_basis(element):
        return chz.compute_basis(lift(element))

    return DomainOps(consolidate=consolidate, contains=contains, compute_basis=compute_basis)


def _parallelotope_ops(
    consolidation_basis: str = "per_sample", shared_basis_max_inflation: float = 4.0
) -> DomainOps:
    """The parallelotope pipeline shares the zonotope ops through the same
    CH-Zonotope lift, but consolidation projects back into the
    :class:`~repro.domains.parallelotope.ParallelotopeZonotope` element so
    the pipeline stays type-stable — the subsequent step's ReLU must keep
    reducing to the enclosing parallelotope."""
    from repro.domains.parallelotope import ParallelotopeZonotope

    base = _zonotope_ops(consolidation_basis, shared_basis_max_inflation)

    def consolidate(element, basis, w_mul, w_add):
        return ParallelotopeZonotope._wrap(base.consolidate(element, basis, w_mul, w_add))

    return DomainOps(
        consolidate=consolidate, contains=base.contains, compute_basis=base.compute_basis
    )


def domain_ops_for(
    domain: str,
    consolidation_basis: str = "per_sample",
    shared_basis_max_inflation: float = 4.0,
) -> DomainOps:
    """Return the :class:`DomainOps` bundle for a domain name.

    ``domain`` is one of ``"chzonotope"``, ``"box"``, ``"zonotope"`` or
    ``"parallelotope"``.  ``consolidation_basis`` selects the stage's
    *resolved* basis policy (``"per_sample"`` or ``"shared"`` — resolve an
    ``"auto"`` configuration through
    :meth:`repro.core.config.CraftConfig.resolved_consolidation_basis`
    first); ``shared_basis_max_inflation`` parameterises the shared-mode
    width-inflation guard.  The Box domain has no basis and ignores both.
    """
    if consolidation_basis not in ("per_sample", "shared"):
        raise ConfigurationError(
            "domain_ops_for expects a resolved consolidation basis "
            f"('per_sample' or 'shared'), got {consolidation_basis!r}"
        )
    factories = {
        "chzonotope": _chzonotope_ops,
        "box": lambda *_: _interval_ops(),
        "zonotope": _zonotope_ops,
        "parallelotope": _parallelotope_ops,
    }
    try:
        factory = factories[domain]
    except KeyError:
        raise ConfigurationError(
            f"unknown domain {domain!r}; choose from {sorted(factories)}"
        ) from None
    return factory(consolidation_basis, shared_basis_max_inflation)


class ContractionEngine:
    """Phase-one engine: iterate until contraction is detected.

    Parameters
    ----------
    settings:
        Iteration budget, consolidation cadence, history size and abort
        width (:class:`~repro.core.config.ContractionSettings`).
    ops:
        Domain operations (:class:`DomainOps`).
    expansion:
        Expansion schedule applied at each consolidation
        (:class:`~repro.core.expansion.ExpansionSchedule`); ``None``
        disables expansion.
    """

    def __init__(
        self,
        settings: ContractionSettings,
        ops: DomainOps,
        expansion: Optional[ExpansionSchedule] = None,
    ):
        self._settings = settings
        self._ops = ops
        self._expansion = expansion

    def run(self, step: StepFunction, initial: AbstractElement) -> ContractionResult:
        """Iterate ``step`` from ``initial`` until contraction or exhaustion.

        The loop mirrors Algorithm 1's ``not contained`` branch together
        with the engineering details of Appendix C: the state is
        consolidated (and expanded) every ``consolidate_every`` iterations,
        the consolidation basis is recomputed every
        ``basis_recompute_every`` iterations, and the current state is
        compared against the ``history_size`` most recent consolidated
        states (sound by Theorem B.1).
        """
        settings = self._settings
        history: Deque[AbstractElement] = deque(maxlen=settings.history_size)
        width_trace = []
        state = initial
        basis: Optional[np.ndarray] = None
        consolidations = 0
        peak_error_terms = getattr(state, "num_generators", 0)

        for iteration in range(settings.max_iterations):
            if iteration % settings.consolidate_every == 0:
                if self._ops.compute_basis is not None and (
                    basis is None or iteration % settings.basis_recompute_every == 0
                ):
                    basis = self._ops.compute_basis(state)
                w_mul, w_add = (0.0, 0.0)
                if self._expansion is not None:
                    w_mul, w_add = self._expansion.step()
                state = self._ops.consolidate(state, basis, w_mul, w_add)
                history.append(state)
                consolidations += 1

            next_state = step(state)
            peak_error_terms = max(
                peak_error_terms, getattr(next_state, "num_generators", 0)
            )
            if settings.track_trace:
                width_trace.append(next_state.mean_width)

            if next_state.max_width > settings.abort_width or not np.all(
                np.isfinite(next_state.width)
            ):
                return ContractionResult(
                    contained=False,
                    state=next_state,
                    reference=None,
                    iterations=iteration + 1,
                    consolidations=consolidations,
                    width_trace=width_trace,
                    diverged=True,
                    peak_error_terms=peak_error_terms,
                )

            for reference in reversed(history):
                if self._ops.contains(reference, next_state):
                    return ContractionResult(
                        contained=True,
                        state=next_state,
                        reference=reference,
                        iterations=iteration + 1,
                        consolidations=consolidations,
                        width_trace=width_trace,
                        peak_error_terms=peak_error_terms,
                    )
            state = next_state

        return ContractionResult(
            contained=False,
            state=state,
            reference=None,
            iterations=settings.max_iterations,
            consolidations=consolidations,
            width_trace=width_trace,
            peak_error_terms=peak_error_terms,
        )
