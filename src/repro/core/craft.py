"""The Craft verifier — Algorithm 1 of the paper.

Craft (Convex Relaxation Abstract Fixpoint iTeration) verifies properties of
programs that compute fixpoints of convergent iterative solvers.  It runs in
two phases:

1. **Containment phase** (lines 5–8 of Algorithm 1): iterate a sound
   abstract transformer of the fixpoint solver — consolidating and expanding
   the abstraction on the way — until the contraction-based termination
   criterion (Theorem 3.1 / B.1) proves that the current abstract state
   contains the true fixpoint set.
2. **Tightening phase** (lines 10–14): apply further iterations of a
   *fixpoint-set-preserving* abstract solver (Definition 3.2, Theorems 3.3
   and 5.1) — possibly with a different operator-splitting method, an
   adaptively chosen damping parameter (Appendix E.1) and optimised ReLU
   slopes (Section 6.3) — and check the postcondition on the resulting
   output abstraction after every step.

The verifier is domain- and model-agnostic: the model-specific pieces
(abstract solver steps, output map, postcondition) are packaged in a
:class:`FixpointProblem`, which the monDEQ front-end
(:mod:`repro.verify.robustness`) and the Householder case study
(:mod:`repro.numerics.householder`) construct.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CraftConfig
from repro.core.contraction import ContractionEngine, DomainOps, domain_ops_for
from repro.core.expansion import ExpansionSchedule
from repro.core.results import (
    ContractionResult,
    FixpointAbstraction,
    PostconditionCheck,
    VerificationOutcome,
    VerificationResult,
)
from repro.domains.base import AbstractElement
from repro.exceptions import VerificationError

StepFunction = Callable[[AbstractElement], AbstractElement]
StepFactory = Callable[[str, float, float], StepFunction]
OutputMap = Callable[[AbstractElement], AbstractElement]
Postcondition = Callable[[AbstractElement], PostconditionCheck]


@dataclass
class FixpointProblem:
    """An abstract fixpoint-verification problem handed to Craft.

    Attributes
    ----------
    input_element:
        Abstraction of the precondition (the set of inputs ``X``).
    initial_state:
        Abstraction of the initial solver state ``S_0``.  Following
        Algorithm 1 (line 2) this is typically the singleton containing the
        concrete fixpoint of the centre input.
    contraction_step:
        The abstract solver iteration ``g#_alpha1(X, .)`` used in the
        containment phase (the input abstraction is baked in).
    tightening_step_factory:
        ``factory(solver_name, alpha, slope_delta)`` building a
        fixpoint-set-preserving abstract iteration for the tightening phase.
        ``slope_delta`` shifts the ReLU relaxation slopes away from the
        minimum-area default and is only exercised when slope optimisation
        is enabled.
    extract_output:
        Maps a solver-state abstraction ``S`` to the output abstraction
        ``Y`` the postcondition talks about (e.g. select the ``z`` block and
        apply the classification layer).
    postcondition:
        Evaluates the postcondition on an output abstraction; ``None`` when
        the caller only wants the fixpoint-set abstraction.
    description:
        Free-form description used in logs and results.
    """

    input_element: AbstractElement
    initial_state: AbstractElement
    contraction_step: StepFunction
    tightening_step_factory: StepFactory
    extract_output: OutputMap
    postcondition: Optional[Postcondition] = None
    description: str = ""


@dataclass
class _PhaseTwoOutcome:
    certified: bool
    margin: float
    iterations: int
    state: AbstractElement
    output: Optional[AbstractElement]
    alpha: Optional[float]
    solver: Optional[str]
    slope_delta: float
    width_trace: List[float] = field(default_factory=list)
    peak_error_terms: int = 0


class CraftVerifier:
    """The two-phase Craft verification algorithm."""

    def __init__(self, config: Optional[CraftConfig] = None, ops: Optional[DomainOps] = None):
        self._config = config if config is not None else CraftConfig()
        # A single-domain verifier is its own final stage, so "auto"
        # resolves to the per-sample basis policy; ladder stage configs
        # arrive with their mode already resolved by stage_config().
        self._ops = (
            ops
            if ops is not None
            else domain_ops_for(
                self._config.domain,
                consolidation_basis=self._config.resolved_consolidation_basis(),
                shared_basis_max_inflation=self._config.shared_basis_max_inflation,
            )
        )

    @property
    def config(self) -> CraftConfig:
        """The configuration this verifier was built with."""
        return self._config

    # ------------------------------------------------------------------
    # Phase one
    # ------------------------------------------------------------------

    def find_fixpoint_abstraction(self, problem: FixpointProblem) -> ContractionResult:
        """Run the containment phase only (Theorem 3.1 / B.1)."""
        expansion = ExpansionSchedule.from_config(self._config)
        engine = ContractionEngine(
            self._config.contraction,
            self._ops,
            expansion,
            acceleration=self._config.acceleration,
        )
        return engine.run(problem.contraction_step, problem.initial_state)

    # ------------------------------------------------------------------
    # Full verification (Algorithm 1)
    # ------------------------------------------------------------------

    def solve(self, problem: FixpointProblem) -> VerificationResult:
        """Run both phases and report the verification outcome."""
        if problem.postcondition is None:
            raise VerificationError(
                "solve() requires a postcondition; use compute_fixpoint_set() to "
                "obtain the fixpoint abstraction alone"
            )
        start = time.perf_counter()
        contraction = self.find_fixpoint_abstraction(problem)

        if not contraction.contained:
            outcome = (
                VerificationOutcome.DIVERGED
                if contraction.diverged
                else VerificationOutcome.NO_CONTAINMENT
            )
            elapsed = time.perf_counter() - start
            return VerificationResult(
                outcome=outcome,
                contained=False,
                certified=False,
                margin=-np.inf,
                iterations_phase1=contraction.iterations,
                iterations_phase2=0,
                time_seconds=elapsed,
                fixpoint_abstraction=FixpointAbstraction(
                    element=contraction.state,
                    contained=False,
                    iterations_phase1=contraction.iterations,
                    iterations_phase2=0,
                    width_trace_phase1=contraction.width_trace,
                ),
                notes="containment phase did not detect contraction",
                peak_error_terms=contraction.peak_error_terms,
                accelerated=contraction.accelerated,
                accel_proposals=contraction.proposals,
            )

        phase_two = self._tighten_and_certify(problem, contraction)
        elapsed = time.perf_counter() - start

        outcome = (
            VerificationOutcome.VERIFIED if phase_two.certified else VerificationOutcome.UNKNOWN
        )
        abstraction = FixpointAbstraction(
            element=phase_two.state,
            contained=True,
            iterations_phase1=contraction.iterations,
            iterations_phase2=phase_two.iterations,
            width_trace_phase1=contraction.width_trace,
            width_trace_phase2=phase_two.width_trace,
        )
        return VerificationResult(
            outcome=outcome,
            contained=True,
            certified=phase_two.certified,
            margin=phase_two.margin,
            iterations_phase1=contraction.iterations,
            iterations_phase2=phase_two.iterations,
            time_seconds=elapsed,
            selected_alpha2=phase_two.alpha,
            selected_solver2=phase_two.solver,
            slope_optimized=phase_two.slope_delta != 0.0,
            fixpoint_abstraction=abstraction,
            output_element=phase_two.output,
            peak_error_terms=max(
                contraction.peak_error_terms, phase_two.peak_error_terms
            ),
            accelerated=contraction.accelerated,
            accel_proposals=contraction.proposals,
        )

    def compute_fixpoint_set(
        self, problem: FixpointProblem, tighten_iterations: int = 0
    ) -> FixpointAbstraction:
        """Return a sound fixpoint-set abstraction without checking a postcondition.

        Used by the Householder case study and the width-trace experiments:
        phase one runs as usual and, when contraction was detected,
        ``tighten_iterations`` fixpoint-set-preserving iterations of the
        phase-two solver are applied to tighten the abstraction.
        """
        contraction = self.find_fixpoint_abstraction(problem)
        state = contraction.state
        width_trace_two: List[float] = []
        iterations_two = 0
        if contraction.contained and tighten_iterations > 0:
            alpha = self._default_alpha2()
            step = problem.tightening_step_factory(self._config.solver2, alpha, 0.0)
            for iteration in range(1, tighten_iterations + 1):
                if self._config.tighten_should_consolidate(iteration):
                    state = self._ops.consolidate(state, None, 0.0, 0.0)
                state = step(state)
                width_trace_two.append(state.mean_width)
                iterations_two += 1
        return FixpointAbstraction(
            element=state,
            contained=contraction.contained,
            iterations_phase1=contraction.iterations,
            iterations_phase2=iterations_two,
            width_trace_phase1=contraction.width_trace,
            width_trace_phase2=width_trace_two,
        )

    # ------------------------------------------------------------------
    # Phase two internals
    # ------------------------------------------------------------------

    def _default_alpha2(self) -> float:
        if self._config.solver2 == "pr":
            return self._config.alpha1
        if self._config.alpha2 is not None:
            return self._config.alpha2
        return self._config.alpha2_grid[len(self._config.alpha2_grid) // 2]

    def _candidate_parameters(self) -> List[Tuple[str, float]]:
        """Candidate (solver, alpha) pairs — see CraftConfig.candidate_parameters."""
        return list(self._config.candidate_parameters())

    def _slope_deltas(self) -> Sequence[float]:
        return self._config.slope_deltas()

    def _tighten_and_certify(
        self, problem: FixpointProblem, contraction: ContractionResult
    ) -> _PhaseTwoOutcome:
        config = self._config
        probe_budget = max(5, config.tighten_max_iterations // 5)

        candidates = self._candidate_parameters()
        probes = [
            self._run_tightening(problem, contraction, solver, alpha, 0.0, probe_budget)
            for solver, alpha in candidates
        ]
        best = max(probes, key=lambda outcome: outcome.margin)
        if best.certified:
            return best

        # Continue the most promising candidate with the full budget.
        full = self._run_tightening(
            problem,
            contraction,
            best.solver,
            best.alpha,
            0.0,
            config.tighten_max_iterations,
        )
        if full.margin < best.margin:
            full = best
        if full.certified:
            return full

        # Slope optimisation: only for samples already close to certification
        # (Section 6.3) — i.e. whose margin is within the configured threshold.
        if self._slope_deltas() and full.margin > -config.slope_margin_threshold:
            for delta in self._slope_deltas():
                attempt = self._run_tightening(
                    problem,
                    contraction,
                    full.solver,
                    full.alpha,
                    float(delta),
                    config.tighten_max_iterations,
                )
                if attempt.margin > full.margin:
                    full = attempt
                if full.certified:
                    break
        return full

    def _run_tightening(
        self,
        problem: FixpointProblem,
        contraction: ContractionResult,
        solver: str,
        alpha: float,
        slope_delta: float,
        budget: int,
    ) -> _PhaseTwoOutcome:
        config = self._config
        step = problem.tightening_step_factory(solver, alpha, slope_delta)
        state = contraction.state
        previous = contraction.reference if contraction.reference is not None else state

        best_margin = -np.inf
        best_state = state
        best_output: Optional[AbstractElement] = None
        certified = False
        since_improvement = 0
        width_trace: List[float] = []
        iterations = 0
        peak_error_terms = getattr(state, "num_generators", 0)

        for iterations in range(1, budget + 1):
            if config.tighten_should_consolidate(iterations):
                # Periodic phase-two consolidation (Appendix C): bounds the
                # error-term growth at a small precision cost.  Consolidation
                # over-approximates, so the state keeps containing the
                # fixpoint set and certification stays sound.  The batched
                # driver applies the identical cadence (parity contract).
                state = self._ops.consolidate(state, None, 0.0, 0.0)
            new_state = step(state)
            peak_error_terms = max(
                peak_error_terms, getattr(new_state, "num_generators", 0)
            )
            width_trace.append(new_state.mean_width)

            usable = True
            if config.same_iteration_containment:
                # Ablation: only states contained in their predecessor may be
                # used for certification (no reliance on Definition 3.2).
                proper_previous = self._ops.consolidate(previous, None, 0.0, 0.0)
                usable = self._ops.contains(proper_previous, new_state)

            if usable:
                output = problem.extract_output(new_state)
                check = problem.postcondition(output)
                if check.margin > best_margin:
                    best_margin = check.margin
                    best_state = new_state
                    best_output = output
                    since_improvement = 0
                else:
                    since_improvement += 1
                if check.holds:
                    certified = True
                    break
            else:
                since_improvement += 1

            if not np.all(np.isfinite(new_state.width)) or new_state.max_width > config.contraction.abort_width:
                break
            if since_improvement >= config.tighten_patience:
                break
            previous = state
            state = new_state

        return _PhaseTwoOutcome(
            certified=certified,
            margin=float(best_margin),
            iterations=iterations,
            state=best_state,
            output=best_output,
            alpha=alpha,
            solver=solver,
            slope_delta=slope_delta,
            width_trace=width_trace,
            peak_error_terms=peak_error_terms,
        )
