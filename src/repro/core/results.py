"""Result types returned by the fixpoint abstract-interpretation engines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.domains.base import AbstractElement


class VerificationOutcome(enum.Enum):
    """Outcome of a single verification query.

    ``VERIFIED``
        The postcondition was proven for every point of the precondition.
    ``UNKNOWN``
        A sound fixpoint abstraction was found but the postcondition could
        not be shown (the verifier is incomplete, Section 5.2).
    ``NO_CONTAINMENT``
        Phase one never detected contraction (Theorem 3.1 precondition not
        met), so no sound fixpoint abstraction exists for this query.
    ``DIVERGED``
        The abstract iteration exceeded the divergence-abort width
        (Appendix C, "Abortion Heuristics").
    ``MISCLASSIFIED``
        The concrete network already misclassifies the centre input, so
        the robustness property is trivially false.
    """

    VERIFIED = "verified"
    UNKNOWN = "unknown"
    NO_CONTAINMENT = "no_containment"
    DIVERGED = "diverged"
    MISCLASSIFIED = "misclassified"


@dataclass
class PostconditionCheck:
    """Result of evaluating a postcondition on an output abstraction.

    Attributes
    ----------
    holds:
        Whether the postcondition is proven on the abstraction.
    margin:
        A real-valued margin; positive values prove the property and the
        magnitude measures slack (used by the adaptive-alpha line search and
        the abort heuristic).
    lower_bounds:
        Optional per-constraint lower bounds (e.g. logit differences),
        recorded for Fig. 20-style analyses.
    """

    holds: bool
    margin: float
    lower_bounds: Optional[np.ndarray] = None


@dataclass
class ContractionResult:
    """Result of the phase-one contraction search (Theorem 3.1 / B.1)."""

    contained: bool
    state: AbstractElement
    reference: Optional[AbstractElement]
    iterations: int
    consolidations: int
    width_trace: List[float] = field(default_factory=list)
    diverged: bool = False
    #: Largest error-term count any iterate reached (0 for basis-free domains).
    peak_error_terms: int = 0
    #: Whether containment was established by an accepted extrapolated
    #: candidate enclosure (the acceleration proposer) rather than the
    #: plain history scan.  The proof obligation is identical either way:
    #: one exact abstract step mapped ``reference`` into ``state``.
    accelerated: bool = False
    #: Number of extrapolated candidate enclosures tried (accepted or
    #: not); each proposal costs one extra exact abstract step.
    proposals: int = 0

    @property
    def mean_width(self) -> float:
        """Mean concretisation width of the final state."""
        return self.state.mean_width


@dataclass
class KleeneResult:
    """Result of the Kleene-iteration baseline."""

    converged: bool
    state: AbstractElement
    iterations: int
    joins: int
    widenings: int
    width_trace: List[float] = field(default_factory=list)
    diverged: bool = False


@dataclass
class FixpointAbstraction:
    """A sound abstraction of the true fixpoint set plus provenance data."""

    element: AbstractElement
    contained: bool
    iterations_phase1: int
    iterations_phase2: int
    width_trace_phase1: List[float] = field(default_factory=list)
    width_trace_phase2: List[float] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        return self.iterations_phase1 + self.iterations_phase2


@dataclass
class VerificationResult:
    """Full result of one Craft verification query (Algorithm 1)."""

    outcome: VerificationOutcome
    contained: bool
    certified: bool
    margin: float
    iterations_phase1: int
    iterations_phase2: int
    time_seconds: float
    selected_alpha2: Optional[float] = None
    selected_solver2: Optional[str] = None
    slope_optimized: bool = False
    fixpoint_abstraction: Optional[FixpointAbstraction] = None
    output_element: Optional[AbstractElement] = None
    notes: str = ""
    #: Abstract domain that produced this verdict.  For escalation-ladder
    #: sweeps this is the *resolving* stage (the domain the query exited
    #: the waterfall in); for single-domain sweeps it is that domain.
    stage: Optional[str] = None
    #: Set by :meth:`repro.engine.cache.FixpointCache.load` on replayed
    #: verdicts (the ``[cached]`` notes suffix is the human-readable echo).
    cached: bool = False
    #: Which cache tier answered the query: ``"lru"`` (in-memory payload
    #: tier), ``"disk"`` (on-disk store), ``"dominance"`` (served from a
    #: dominating entry — a certified superset region or a falsifying
    #: point — so this exact query was never computed), or ``None`` for
    #: live verdicts.
    cache_tier: Optional[str] = None
    #: Peak error-term (generator-column) count observed across both Craft
    #: phases — the measured counterpart of the analytic working-set
    #: estimate (:func:`repro.engine.working_set.max_error_terms`).
    #: ``None`` for verdicts that never ran the abstract analysis
    #: (misclassification short-circuits).  In the batched engines this is
    #: the padded stack width the sample actually streamed, which is what
    #: the cache-fitting batch sizing models.
    peak_error_terms: Optional[int] = None
    #: Whether phase one exited through an accepted acceleration proposal
    #: (extrapolated candidate enclosure proven by an exact containment
    #: step).  ``False`` for unaccelerated runs and for accelerated runs
    #: whose plain search won the race.
    accelerated: bool = False
    #: Number of acceleration proposals the phase-one search tried for
    #: this query (accepted or rejected) — the honest overhead counter
    #: next to the ``iterations_phase1`` savings.
    accel_proposals: int = 0

    @property
    def verified(self) -> bool:
        """Alias used throughout the experiment harness."""
        return self.outcome is VerificationOutcome.VERIFIED

    @property
    def from_cache(self) -> bool:
        """Whether this result was replayed from the on-disk fixpoint cache."""
        return self.cached

    def summary(self) -> str:
        """One-line human-readable summary used by the example scripts."""
        return (
            f"{self.outcome.value:>15} | contained={self.contained} | "
            f"margin={self.margin:+.4f} | iters={self.iterations_phase1}+{self.iterations_phase2} | "
            f"{self.time_seconds:.2f}s"
        )
