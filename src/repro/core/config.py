"""Configuration dataclasses for the fixpoint abstract-interpretation engines.

The default values follow Appendix C / D.2 of the paper (consolidation every
``r = 3`` iterations, PCA-basis recomputation every 30 steps, a history of
the 10 most recent consolidated states, constant expansion with
``w_mul = 1e-3`` and ``w_add = 1e-2``, ``n_max = 500`` iterations, abort
width ``1e9``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Canonical precision/cost order of the abstract domains (Table 4 ladder):
#: escalation ladders must list their stages as a strictly ascending
#: sub-sequence of this tuple, cheapest first.
DOMAIN_LADDER = ("box", "zonotope", "parallelotope", "chzonotope")

_VALID_DOMAINS = DOMAIN_LADDER
_VALID_SOLVERS = ("pr", "fb")
_VALID_EXPANSIONS = ("const", "exp", "none")
_VALID_SLOPE_MODES = ("none", "reduced", "reference")
_VALID_CONSOLIDATION_BASES = ("per_sample", "shared", "auto")
_VALID_CACHE_KEY_MODES = ("exact", "quantized")
_VALID_BACKENDS = ("numpy", "torch")
_VALID_SEARCH_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class CacheConfig:
    """Layout of the tiered fixpoint-verdict cache (:mod:`repro.engine.cache`).

    None of these fields influence verdicts — they trade lookup breadth
    and memory against recomputation — so they are deliberately excluded
    from the cache's config signature: switching key mode or LRU bounds
    must never invalidate entries already on disk.

    Attributes
    ----------
    key_mode:
        ``"exact"`` (default) keys entries on exact centre bytes — a
        cache hit requires the literal query to have been asked before.
        ``"quantized"`` snaps centre and epsilon to a
        ``10^-quantize_decimals`` grid so nearby queries share bucket
        entries; epsilon rounds *down* for lookup and *up* for admission
        of certified verdicts (down otherwise), and every non-verbatim
        serve is decided by the exact region recorded in the payload,
        never by key equality alone.
    quantize_decimals:
        Decimal digits of the quantisation grid (``"quantized"`` mode
        only).  Coarser grids coalesce more traffic per bucket at the
        price of more bucket overwrites.
    dominance:
        Enable the directory-wide dominance index: lookups may answer
        ``VERIFIED`` from any cached certified superset region and
        ``MISCLASSIFIED`` from any cached falsifying point inside the
        query region (:mod:`repro.engine.cache_dominance`).
    lru_entries:
        Capacity (entries) of the in-memory LRU payload tier layered
        over the on-disk store (:mod:`repro.engine.cache_lru`).  ``0``
        disables the tier.
    lru_bytes:
        Byte budget of the LRU tier (approximate, measured on the JSON
        payload size).
    refresh_seconds:
        Staleness bound of the cache's directory snapshot.  ``None``
        (default) preserves the sweep-runner contract: the snapshot only
        moves when a scheduler calls
        :meth:`~repro.engine.cache.TieredVerdictCache.refresh` (once per
        sweep).  A float arms the **long-lived-process** mode the
        certification service needs: any lookup older than this bound
        stats the cache directory and, when its mtime moved (another
        process published entries), rescans — so concurrent workers serve
        each other's fresh verdicts without an explicit per-sweep refresh.
        ``0.0`` checks on every lookup; the check is one ``stat`` call,
        the rescan only runs when the directory actually changed.
    """

    key_mode: str = "exact"
    quantize_decimals: int = 3
    dominance: bool = True
    lru_entries: int = 4096
    lru_bytes: int = 16 * 1024 * 1024
    refresh_seconds: Optional[float] = None

    def __post_init__(self):
        if self.key_mode not in _VALID_CACHE_KEY_MODES:
            raise ConfigurationError(
                f"key_mode must be one of {_VALID_CACHE_KEY_MODES}, "
                f"got {self.key_mode!r}"
            )
        if not isinstance(self.quantize_decimals, int) or not (
            0 <= self.quantize_decimals <= 12
        ):
            raise ConfigurationError(
                f"quantize_decimals must be an integer in [0, 12], "
                f"got {self.quantize_decimals!r}"
            )
        if not isinstance(self.lru_entries, int) or self.lru_entries < 0:
            raise ConfigurationError(
                "lru_entries must be a non-negative integer (0 disables the LRU tier)"
            )
        if not isinstance(self.lru_bytes, int) or self.lru_bytes < 1:
            raise ConfigurationError("lru_bytes must be a positive integer")
        if self.refresh_seconds is not None and not (
            isinstance(self.refresh_seconds, (int, float)) and self.refresh_seconds >= 0
        ):
            raise ConfigurationError(
                "refresh_seconds must be None or a non-negative number"
            )


@dataclass(frozen=True)
class AutoscaleConfig:
    """Queue-depth worker autoscaling of the cluster scheduler.

    The policy is deliberately simple and fully deterministic given the
    observed queue depths: the shared task queue staying at or above
    ``high_watermark`` for ``dwell_seconds`` grows the local pool by one
    worker (up to ``max_workers``); staying at or below
    ``low_watermark`` for the same dwell retires one idle worker (down
    to ``min_workers``).  The dwell requirement filters transient
    spikes — a single deep poll never scales anything.  Scaling never
    touches verdicts: a retired worker finishes nothing mid-shard (it
    only consumes the retire pill when idle), and a grown worker joins
    at the next generation exactly like a fault respawn.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` (the default) keeps the pool at its
        constructed size — today's behaviour, bit for bit.
    min_workers / max_workers:
        Inclusive bounds of the local worker pool under scaling.
    high_watermark:
        Queue depth (pending, unclaimed tasks) at or above which the
        pool is considered under-provisioned.
    low_watermark:
        Queue depth at or below which the pool is considered
        over-provisioned.
    dwell_seconds:
        How long a watermark breach must persist before acting; also
        the re-arm delay between consecutive scale events.
    """

    enabled: bool = False
    min_workers: int = 1
    max_workers: int = 4
    high_watermark: int = 4
    low_watermark: int = 0
    dwell_seconds: float = 1.0

    def __post_init__(self):
        if not isinstance(self.min_workers, int) or self.min_workers < 1:
            raise ConfigurationError("min_workers must be a positive integer")
        if not isinstance(self.max_workers, int) or self.max_workers < self.min_workers:
            raise ConfigurationError("max_workers must be an integer >= min_workers")
        if not isinstance(self.high_watermark, int) or self.high_watermark < 1:
            raise ConfigurationError("high_watermark must be a positive integer")
        if not isinstance(self.low_watermark, int) or self.low_watermark < 0:
            raise ConfigurationError("low_watermark must be a non-negative integer")
        if self.low_watermark >= self.high_watermark:
            raise ConfigurationError("low_watermark must be below high_watermark")
        if self.dwell_seconds <= 0:
            raise ConfigurationError("dwell_seconds must be positive")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the long-lived certification service (:mod:`repro.service`).

    None of these fields influence verdicts — they trade latency,
    coalescing breadth and fault-recovery aggressiveness against
    throughput — so, like :class:`CacheConfig`, they are excluded from
    the cache's config signature by construction (they are not part of
    :class:`CraftConfig` at all).

    Attributes
    ----------
    coalesce_window_seconds:
        How long the frontend dispatcher holds a freshly admitted cell
        before dispatching its batch, so compatible requests arriving
        close together coalesce into one engine pass.  ``0`` dispatches
        immediately (the property-test setting).
    max_batch_cells:
        Upper bound on the cells of one coalesced engine dispatch.
    default_deadline_seconds / default_budget_cells:
        Applied to requests that name no deadline / no budget.  ``None``
        means unbounded.
    heartbeat_seconds:
        Cadence of idle-worker heartbeats on the cluster result channel.
    shard_timeout_seconds:
        Lease bound of one claimed shard: a worker that claimed a shard
        and produced no result within this bound is marked dead and the
        shard is reassigned (the per-shard timeout machinery of
        :class:`~repro.engine.sharded.ShardedScheduler`, reused as the
        cluster health-check).
    retry_backoff_seconds / retry_backoff_factor / retry_max_attempts:
        The deterministic reassignment schedule
        (:func:`repro.service.faults.retry_backoff`): attempt ``k``
        of a shard waits ``backoff * factor**(k-1)`` (seeded jitter)
        before requeueing; more than ``retry_max_attempts`` attempts
        fails the sweep instead of looping forever.
    restart_workers:
        Whether the cluster scheduler respawns a dead *local* worker
        process (remote workers are never respawned — they belong to
        their own machine's supervisor).
    max_concurrent_batches:
        How many coalesced engine passes may run simultaneously *per
        backend*.  ``1`` (the default) serialises batches behind one
        engine pass — today's behaviour — while larger values let
        distinct coalescing groups (different models, epsilons or clip
        ranges) certify in parallel.  Purely a scheduling knob: verdicts
        are identical at any setting.
    dispatch_log_limit:
        Upper bound on retained ``dispatch_log`` rows (the frontend's
        per-batch audit trail).  Older rows are evicted FIFO so a
        long-lived frontend stays bounded; ``None`` keeps every row.
    autoscale:
        Queue-depth worker autoscaling of the cluster scheduler
        (:class:`AutoscaleConfig`); disabled by default.
    """

    coalesce_window_seconds: float = 0.01
    max_batch_cells: int = 256
    default_deadline_seconds: Optional[float] = None
    default_budget_cells: Optional[int] = None
    heartbeat_seconds: float = 0.25
    shard_timeout_seconds: float = 60.0
    retry_backoff_seconds: float = 0.25
    retry_backoff_factor: float = 2.0
    retry_max_attempts: int = 5
    restart_workers: bool = True
    max_concurrent_batches: int = 1
    dispatch_log_limit: Optional[int] = 1024
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)

    def __post_init__(self):
        if self.coalesce_window_seconds < 0:
            raise ConfigurationError("coalesce_window_seconds must be non-negative")
        if not isinstance(self.max_batch_cells, int) or self.max_batch_cells < 1:
            raise ConfigurationError("max_batch_cells must be a positive integer")
        if (
            self.default_deadline_seconds is not None
            and self.default_deadline_seconds < 0
        ):
            raise ConfigurationError("default_deadline_seconds must be non-negative")
        if self.default_budget_cells is not None and (
            not isinstance(self.default_budget_cells, int)
            or self.default_budget_cells < 0
        ):
            raise ConfigurationError(
                "default_budget_cells must be None or a non-negative integer"
            )
        if self.heartbeat_seconds <= 0:
            raise ConfigurationError("heartbeat_seconds must be positive")
        if self.shard_timeout_seconds <= 0:
            raise ConfigurationError("shard_timeout_seconds must be positive")
        if self.retry_backoff_seconds <= 0:
            raise ConfigurationError("retry_backoff_seconds must be positive")
        if self.retry_backoff_factor < 1.0:
            raise ConfigurationError("retry_backoff_factor must be >= 1")
        if not isinstance(self.retry_max_attempts, int) or self.retry_max_attempts < 1:
            raise ConfigurationError("retry_max_attempts must be a positive integer")
        if (
            not isinstance(self.max_concurrent_batches, int)
            or self.max_concurrent_batches < 1
        ):
            raise ConfigurationError(
                "max_concurrent_batches must be a positive integer"
            )
        if self.dispatch_log_limit is not None and (
            not isinstance(self.dispatch_log_limit, int) or self.dispatch_log_limit < 1
        ):
            raise ConfigurationError(
                "dispatch_log_limit must be None or a positive integer"
            )
        if not isinstance(self.autoscale, AutoscaleConfig):
            raise ConfigurationError("autoscale must be an AutoscaleConfig")


@dataclass(frozen=True)
class ContractionSettings:
    """Settings of the phase-one contraction search (Theorem 3.1 / B.1)."""

    max_iterations: int = 500
    consolidate_every: int = 3
    basis_recompute_every: int = 30
    history_size: int = 10
    abort_width: float = 1e9
    track_trace: bool = True

    def __post_init__(self):
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be positive")
        if self.consolidate_every < 1:
            raise ConfigurationError("consolidate_every must be positive")
        if self.basis_recompute_every < 1:
            raise ConfigurationError("basis_recompute_every must be positive")
        if self.history_size < 1:
            raise ConfigurationError("history_size must be positive")
        if self.abort_width <= 0:
            raise ConfigurationError("abort_width must be positive")


@dataclass(frozen=True)
class AccelerationConfig:
    """Anderson/extrapolation acceleration knobs — concrete and abstract.

    Acceleration only ever shortcuts the *search* for a containing
    iterate; every certified postcondition is still established by the
    exact, unaccelerated transformers (the soundness firewall of
    ``docs/engines.md``).  The abstract proposer watches the consolidated
    width trajectory and, when it contracts geometrically, dilates the
    current proper state into an extrapolated candidate enclosure that is
    accepted only if one exact abstract step maps it into itself.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` (the default) keeps the phase-one loop
        bit-identical to the unaccelerated behaviour.
    window:
        History-window length of the concrete solvers' Anderson mixing
        (``solve_fixpoint(accelerate="anderson")``); must be at least 2.
    safeguard_ratio:
        Concrete-solver safeguard: a mixed candidate is accepted only if
        its measured residual is at most this multiple of the plain
        damped step's residual.
    margin:
        Relative slack added on top of the predicted remaining width
        growth when dilating the candidate enclosure (larger = more
        conservative proposals that are more likely to contain).
    rate_cap:
        Maximum consolidated-width contraction ratio at which the
        proposer fires; trajectories contracting slower than this are
        left to the plain search.  Must lie in (0, 1).
    max_factor:
        Upper bound on the dilation factor of a proposed enclosure.
    max_proposals:
        Per-sample budget of containment proposals in one phase-one run
        (each failed proposal costs one extra abstract step).
    stages:
        Optional per-stage enablement mask, one boolean per ladder stage
        (validated against ``CraftConfig.domains``); ``None`` applies
        ``enabled`` to every stage.
    """

    enabled: bool = False
    window: int = 5
    safeguard_ratio: float = 1.0
    margin: float = 1.0
    rate_cap: float = 0.9
    max_factor: float = 4.0
    max_proposals: int = 3
    stages: Optional[Tuple[bool, ...]] = None

    def __post_init__(self):
        if self.window < 2:
            raise ConfigurationError("acceleration window must be >= 2")
        if self.safeguard_ratio <= 0:
            raise ConfigurationError("safeguard_ratio must be positive")
        if self.margin < 0:
            raise ConfigurationError("margin must be non-negative")
        if not 0.0 < self.rate_cap < 1.0:
            raise ConfigurationError("rate_cap must lie in (0, 1)")
        if self.max_factor < 1.0:
            raise ConfigurationError("max_factor must be >= 1")
        if self.max_proposals < 1:
            raise ConfigurationError("max_proposals must be positive")
        if self.stages is not None:
            stages = tuple(bool(flag) for flag in self.stages)
            object.__setattr__(self, "stages", stages)


@dataclass(frozen=True)
class KleeneSettings:
    """Settings of the Kleene-iteration baseline (Section 2.2)."""

    max_iterations: int = 200
    semantic_unrolling: int = 2
    widen_after: int = 50
    widening_threshold: float = 1e6
    abort_width: float = 1e9
    track_trace: bool = True

    def __post_init__(self):
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be positive")
        if self.semantic_unrolling < 0:
            raise ConfigurationError("semantic_unrolling must be non-negative")
        if self.widen_after < 0:
            raise ConfigurationError("widen_after must be non-negative")


@dataclass(frozen=True)
class CraftConfig:
    """Configuration of the Craft verifier (Algorithm 1 + Appendix C/D).

    Attributes
    ----------
    domain:
        Abstract domain to use: ``"chzonotope"`` (default), ``"box"``
        (Table 4 "No Zono component"), ``"zonotope"`` (the plain-Zonotope
        pipeline: fresh ReLU error terms become generator columns instead
        of Box radii — Table 4 "No Box component") or ``"parallelotope"``
        (an order-bounded zonotope pipeline: the state is reduced to its
        enclosing PCA parallelotope after every ReLU, so the error-term
        count stays constant).  Every domain runs through every engine
        (``sequential`` / ``batched`` / ``sharded``): the batched stack
        class is resolved by
        :func:`repro.engine.batched_domains.batched_domain_for`, and the
        sequential operations by
        :func:`repro.core.contraction.domain_ops_for`.

        ``domain`` is a validated alias of the *last* (most precise) entry
        of ``domains``: setting one keeps the other consistent, and setting
        both to conflicting values raises :class:`ConfigurationError`.
    domains:
        The **escalation ladder**: a strictly ascending (cheapest-first)
        sub-sequence of ``("box", "zonotope", "parallelotope",
        "chzonotope")``.  The default is the singleton ``(domain,)``, which
        preserves the one-domain-per-sweep behaviour.  With more than one
        stage the engines run a *waterfall*: every query starts in the
        first (cheapest) domain, and queries that come back
        ``UNKNOWN``/``NO_CONTAINMENT``/``DIVERGED`` are re-enqueued into
        the next stage, while ``VERIFIED``/``MISCLASSIFIED`` verdicts exit
        early (see :mod:`repro.engine.escalation`).
    solver1, alpha1:
        Operator-splitting method and damping parameter used in the
        containment-finding phase (default Peaceman–Rachford, alpha = 0.1).
    solver2, alpha2, alpha2_grid:
        Method used in the tightening phase.  ``alpha2 = None`` selects the
        damping adaptively by line search over ``alpha2_grid`` (Appendix E.1);
        the grid is ignored when ``alpha2`` is fixed.
    expansion, w_mul, w_add:
        Expansion schedule of Eq. (10): ``"const"`` keeps the parameters
        fixed, ``"exp"`` grows them geometrically every second consolidation
        (Appendix D.2), ``"none"`` disables expansion (Table 4 ablation).
    slope_optimization:
        ReLU-slope optimisation mode: ``"none"``, ``"reduced"`` or
        ``"reference"`` (coarser / finer candidate grids, Section 6.3).
    same_iteration_containment:
        Ablation switch: when ``True`` the state used for certification must
        itself be contained in its predecessor (Table 4 "Same iter.
        containment") instead of relying on fixpoint-set preservation.
    use_box_component:
        When ``False`` the ReLU transformer writes fresh error terms into
        generator columns instead of the Box component.
    tighten_max_iterations, tighten_patience:
        Phase-two budget and the no-improvement abort heuristic (3 r' steps
        in Appendix C; here expressed directly as a step count).
    tighten_consolidate_every:
        Periodic error consolidation in the *tightening* phase (Appendix C
        permits consolidation at any point of either phase).  ``0`` (the
        default) disables it; a positive cadence bounds the error-term
        count — which otherwise grows by roughly (input dim + state dim)
        per step — at the price of a slightly coarser abstraction.  Both
        the sequential and the batched driver apply the same cadence, so
        the engine parity contract is preserved.
    consolidation_basis:
        How consolidation bases are computed by the batched engines:

        * ``"per_sample"`` (default) — every sample gets the PCA basis of
          its own error matrix (one SVD per sample per consolidation
          event), the paper's Appendix C behaviour and the engine parity
          reference.
        * ``"shared"`` — one pooled basis per batch (pooled-Gram
          eigendecomposition, or a randomized range-finder sketch for
          large stacks — :func:`repro.utils.linalg.shared_pca_basis`),
          applied to every sample in a single batched projection.
          Consolidation stays *sound* for any basis (Theorem 4.1); the
          approximation may be slightly coarser, and iterates become
          batch-composition dependent, so verdicts can differ from the
          per-sample mode.  The width-inflation guard
          (``shared_basis_max_inflation``) re-runs offending samples with
          their own basis.
        * ``"auto"`` — shared bases on the *interim* stages of an
          escalation ladder (where an over-coarse verdict merely
          escalates), per-sample on the final stage — so final-stage
          verdicts match the ``"per_sample"`` configuration and the
          ladder's no-flip discipline is preserved.
    shared_basis_max_inflation:
        Fallback threshold of the shared-basis width-inflation guard: a
        sample whose post-consolidation mean width exceeds this multiple
        of its pre-consolidation mean width is re-consolidated with its
        own per-sample basis.  Must be >= 1.
    stage_phase_one_budgets:
        Optional per-stage phase-one (containment) iteration budgets, one
        entry per ladder stage (validated against ``len(domains)``).
        ``None`` entries inherit ``contraction.max_iterations``.  Lets
        interim escalation stages run smaller containment budgets than
        the final stage — a cheap stage that will not contract within a
        short budget should escalate rather than burn the full budget.
    engine_batch_size:
        Fixed batch size for the certification engines.  ``None`` (the
        default) sizes batches from the phase-two working-set estimate so
        a batch fits the last-level cache
        (:func:`repro.engine.working_set.auto_batch_size`).
    cache_budget_bytes:
        Last-level-cache budget used by the automatic batch sizing.
        ``None`` detects the LLC size from the host (falling back to
        32 MiB).  Neither this field nor ``engine_batch_size`` influences
        verdicts — they only trade memory locality against batching.
    cache:
        Layout of the fixpoint-verdict cache (:class:`CacheConfig`): key
        mode (exact vs quantised-grid), the dominance index, and the
        in-memory LRU tier.  Like the batch-sizing knobs, these fields
        never influence verdicts and are excluded from the cache's
        config signature.
    acceleration:
        Anderson/extrapolation acceleration knobs
        (:class:`AccelerationConfig`).  Unlike the batch-sizing knobs,
        acceleration can change which phase-one iterate a verdict is
        certified from, so these fields *are* part of the cache's config
        signature.
    backend, backend_device, backend_search_dtype:
        Array backend of the batched engines (``docs/backends.md``):
        ``"numpy"`` (default, bit-identical to the pre-backend code) or
        ``"torch"`` with a torch device string (``"cpu"``, ``"cuda"``,
        ``"cuda:1"``, ...).  Requesting torch without torch installed, or
        a CUDA device without a visible GPU, raises
        :class:`ConfigurationError` at engine construction — never a
        silent numpy fallback.  ``backend_search_dtype="float32"``
        downcasts *search-only* work (consolidation-basis fitting,
        acceleration-proposal heuristics) while every proof-bearing
        comparison (containment, verdict margins, safeguard residuals)
        stays float64 — shortcut the search, never the proof.  All three
        fields are part of the cache's config signature: entries computed
        under different backend policies never cross-serve.
    """

    domain: Optional[str] = None
    domains: Optional[Tuple[str, ...]] = None
    solver1: str = "pr"
    alpha1: float = 0.1
    solver2: str = "fb"
    alpha2: Optional[float] = None
    alpha2_grid: Tuple[float, ...] = (0.02, 0.03, 0.04, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1.0)
    contraction: ContractionSettings = field(default_factory=ContractionSettings)
    expansion: str = "const"
    w_mul: float = 1e-3
    w_add: float = 1e-2
    expansion_mul_growth: float = 1.1
    expansion_add_growth: float = 1.2
    expansion_growth_every: int = 2
    slope_optimization: str = "none"
    slope_candidates_reduced: Tuple[float, ...] = (-0.2, -0.1, 0.1, 0.2)
    slope_candidates_reference: Tuple[float, ...] = (-0.3, -0.2, -0.1, -0.05, 0.05, 0.1, 0.2, 0.3)
    slope_margin_threshold: float = 1.0
    same_iteration_containment: bool = False
    use_box_component: bool = True
    consolidation_basis: str = "per_sample"
    shared_basis_max_inflation: float = 4.0
    stage_phase_one_budgets: Optional[Tuple[Optional[int], ...]] = None
    tighten_max_iterations: int = 150
    tighten_patience: int = 30
    tighten_consolidate_every: int = 0
    engine_batch_size: Optional[int] = None
    cache_budget_bytes: Optional[int] = None
    cache: CacheConfig = field(default_factory=CacheConfig)
    acceleration: AccelerationConfig = field(default_factory=AccelerationConfig)
    backend: str = "numpy"
    backend_device: str = "cpu"
    backend_search_dtype: str = "float64"
    concrete_tol: float = 1e-9
    concrete_max_iterations: int = 2000
    verbose: bool = False

    def __post_init__(self):
        self._normalise_domains()
        if self.solver1 not in _VALID_SOLVERS or self.solver2 not in _VALID_SOLVERS:
            raise ConfigurationError(
                f"solvers must be one of {_VALID_SOLVERS}, got "
                f"{self.solver1!r} / {self.solver2!r}"
            )
        if self.expansion not in _VALID_EXPANSIONS:
            raise ConfigurationError(
                f"expansion must be one of {_VALID_EXPANSIONS}, got {self.expansion!r}"
            )
        if self.slope_optimization not in _VALID_SLOPE_MODES:
            raise ConfigurationError(
                f"slope_optimization must be one of {_VALID_SLOPE_MODES}, "
                f"got {self.slope_optimization!r}"
            )
        if not 0.0 < self.alpha1:
            raise ConfigurationError("alpha1 must be positive")
        if self.alpha2 is not None and not 0.0 <= self.alpha2 <= 1.0:
            raise ConfigurationError("alpha2 must lie in [0, 1] for FB fixpoint preservation")
        if self.w_mul < 0 or self.w_add < 0:
            raise ConfigurationError("expansion parameters must be non-negative")
        if self.tighten_max_iterations < 1:
            raise ConfigurationError("tighten_max_iterations must be positive")
        if self.tighten_patience < 1:
            raise ConfigurationError("tighten_patience must be positive")
        if self.tighten_consolidate_every < 0:
            raise ConfigurationError("tighten_consolidate_every must be non-negative")
        if self.consolidation_basis not in _VALID_CONSOLIDATION_BASES:
            raise ConfigurationError(
                f"consolidation_basis must be one of {_VALID_CONSOLIDATION_BASES}, "
                f"got {self.consolidation_basis!r}"
            )
        if not self.shared_basis_max_inflation >= 1.0:
            raise ConfigurationError(
                "shared_basis_max_inflation must be >= 1 (the guard compares "
                "post- to pre-consolidation widths)"
            )
        if self.stage_phase_one_budgets is not None:
            budgets = tuple(self.stage_phase_one_budgets)
            if len(budgets) != len(self.domains):
                raise ConfigurationError(
                    f"stage_phase_one_budgets must name one budget per ladder "
                    f"stage ({len(self.domains)} stages {self.domains}), got "
                    f"{len(budgets)} entries"
                )
            for budget in budgets:
                if budget is not None and (not isinstance(budget, int) or budget < 1):
                    raise ConfigurationError(
                        f"stage_phase_one_budgets entries must be positive "
                        f"integers or None, got {budget!r}"
                    )
            object.__setattr__(self, "stage_phase_one_budgets", budgets)
        if self.engine_batch_size is not None and self.engine_batch_size < 1:
            raise ConfigurationError("engine_batch_size must be positive")
        if self.cache_budget_bytes is not None and self.cache_budget_bytes <= 0:
            raise ConfigurationError("cache_budget_bytes must be positive")
        if not isinstance(self.cache, CacheConfig):
            raise ConfigurationError(
                f"cache must be a CacheConfig, got {type(self.cache).__name__}"
            )
        if not isinstance(self.acceleration, AccelerationConfig):
            raise ConfigurationError(
                f"acceleration must be an AccelerationConfig, got "
                f"{type(self.acceleration).__name__}"
            )
        if self.acceleration.stages is not None and len(self.acceleration.stages) != len(
            self.domains
        ):
            raise ConfigurationError(
                f"acceleration.stages must name one flag per ladder stage "
                f"({len(self.domains)} stages {self.domains}), got "
                f"{len(self.acceleration.stages)} entries"
            )
        if self.backend not in _VALID_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_VALID_BACKENDS}, got {self.backend!r}"
            )
        if self.backend_search_dtype not in _VALID_SEARCH_DTYPES:
            raise ConfigurationError(
                f"backend_search_dtype must be one of {_VALID_SEARCH_DTYPES}, "
                f"got {self.backend_search_dtype!r}"
            )
        if not isinstance(self.backend_device, str) or not self.backend_device:
            raise ConfigurationError(
                f"backend_device must be a non-empty device string, "
                f"got {self.backend_device!r}"
            )
        if self.backend == "numpy" and self.backend_device != "cpu":
            raise ConfigurationError(
                f"the numpy backend only supports backend_device='cpu', got "
                f"{self.backend_device!r} (use backend='torch' for GPU devices)"
            )
        if not self.alpha2_grid:
            raise ConfigurationError("alpha2_grid must not be empty")

    def _normalise_domains(self) -> None:
        """Reconcile the ``domain`` alias with the ``domains`` ladder.

        The dataclass is frozen, so the derived fields are written with
        ``object.__setattr__`` — the same idiom frozen dataclasses use for
        any ``__post_init__`` normalisation.
        """
        domains = self.domains
        if domains is not None:
            domains = tuple(domains)
            if not domains:
                raise ConfigurationError("domains must name at least one stage")
            for name in domains:
                if name not in _VALID_DOMAINS:
                    raise ConfigurationError(
                        f"domains entries must be one of {_VALID_DOMAINS}, got {name!r}"
                    )
            ranks = [DOMAIN_LADDER.index(name) for name in domains]
            if any(b <= a for a, b in zip(ranks, ranks[1:])):
                raise ConfigurationError(
                    "domains must form a strictly ascending escalation ladder "
                    f"(cheapest first, order {DOMAIN_LADDER}), got {domains}"
                )
            if self.domain is not None and self.domain != domains[-1]:
                raise ConfigurationError(
                    f"domain {self.domain!r} conflicts with the escalation ladder "
                    f"{domains} — the alias must equal the final (most precise) stage"
                )
            object.__setattr__(self, "domains", domains)
            object.__setattr__(self, "domain", domains[-1])
            return
        domain = self.domain if self.domain is not None else "chzonotope"
        if domain not in _VALID_DOMAINS:
            raise ConfigurationError(
                f"domain must be one of {_VALID_DOMAINS}, got {domain!r}"
            )
        object.__setattr__(self, "domain", domain)
        object.__setattr__(self, "domains", (domain,))

    # Escalation-ladder views (consumed by the engines and schedulers). ----

    @property
    def is_ladder(self) -> bool:
        """Whether this configuration escalates across multiple domains."""
        return len(self.domains) > 1

    def resolved_consolidation_basis(self, final: bool = True) -> str:
        """The concrete basis mode of one ladder stage.

        ``"auto"`` resolves to ``"shared"`` on interim stages (a coarser
        interim verdict merely escalates) and ``"per_sample"`` on the
        final stage (final verdicts must match the per-sample
        configuration); explicit modes pass through unchanged.  A
        single-domain configuration is its own final stage.
        """
        if self.consolidation_basis != "auto":
            return self.consolidation_basis
        return "per_sample" if final else "shared"

    def stage_config(self, stage_domain: str) -> "CraftConfig":
        """The single-domain configuration of one ladder stage.

        Everything except the domain choice is shared across stages —
        with two stage-local resolutions: the stage's phase-one budget
        (``stage_phase_one_budgets``) replaces
        ``contraction.max_iterations``, and an ``"auto"``
        ``consolidation_basis`` resolves to ``"shared"`` on interim
        stages / ``"per_sample"`` on the final stage.  The final stage of
        a default-budget, non-``auto`` ladder is therefore exactly the
        single-domain configuration the engine parity contract compares
        against.
        """
        if stage_domain not in self.domains:
            raise ConfigurationError(
                f"{stage_domain!r} is not a stage of the ladder {self.domains}"
            )
        index = self.domains.index(stage_domain)
        final = index == len(self.domains) - 1
        contraction = self.contraction
        if self.stage_phase_one_budgets is not None:
            budget = self.stage_phase_one_budgets[index]
            if budget is not None:
                contraction = replace(contraction, max_iterations=budget)
        acceleration = self.acceleration
        if acceleration.stages is not None:
            acceleration = replace(
                acceleration,
                enabled=acceleration.enabled and acceleration.stages[index],
                stages=None,
            )
        return replace(
            self,
            domain=stage_domain,
            domains=(stage_domain,),
            contraction=contraction,
            stage_phase_one_budgets=None,
            acceleration=acceleration,
            consolidation_basis=self.resolved_consolidation_basis(final=final),
        )

    def stage_configs(self) -> Tuple["CraftConfig", ...]:
        """Per-stage configurations, cheapest first."""
        return tuple(self.stage_config(name) for name in self.domains)

    @classmethod
    def escalation(cls, domains: Sequence[str] = ("box", "zonotope", "chzonotope"), **kwargs) -> "CraftConfig":
        """A waterfall configuration over the given escalation ladder.

        The default ladder is the Table 4 precision/cost ladder the paper
        motivates: Box certifies the easy queries in a fraction of the
        time, and only the hard residue pays CH-Zonotope cost.
        """
        return cls(domains=tuple(domains), **kwargs)

    # Derived phase-two policies (shared by the sequential and batched
    # Craft drivers — the engine's parity contract requires one copy). ----

    def candidate_parameters(self) -> Tuple[Tuple[str, float], ...]:
        """Candidate (solver, alpha) pairs for the tightening phase.

        Peaceman–Rachford preserves fixpoints only for the *fixed* alpha used
        to define the auxiliary variables, so PR candidates reuse ``alpha1``.
        Forward–Backward splitting preserves fixpoints for any alpha in
        [0, 1] (Theorem 5.1), so FB candidates span the line-search grid.
        """
        if self.solver2 == "pr":
            return (("pr", self.alpha1),)
        if self.alpha2 is not None:
            return (("fb", self.alpha2),)
        return tuple(("fb", float(alpha)) for alpha in self.alpha2_grid)

    def tighten_should_consolidate(self, iteration: int) -> bool:
        """Whether to consolidate the state entering tightening step ``iteration``.

        ``iteration`` is 1-based; consolidation fires every
        ``tighten_consolidate_every`` completed steps.  This cadence is part
        of the engine parity contract — every tightening driver (sequential,
        batched, and the fixpoint-set path) must consult this one predicate.
        """
        return (
            self.tighten_consolidate_every > 0
            and iteration > 1
            and (iteration - 1) % self.tighten_consolidate_every == 0
        )

    def slope_deltas(self) -> Tuple[float, ...]:
        """ReLU-slope shifts tried by the slope-optimisation pass."""
        if self.slope_optimization == "none":
            return ()
        if self.slope_optimization == "reduced":
            return tuple(self.slope_candidates_reduced)
        return tuple(self.slope_candidates_reference)

    # Convenience constructors for the ablation study (Table 4). ----------

    def with_updates(self, **kwargs) -> "CraftConfig":
        """Return a copy with the given fields replaced.

        Updating ``domain`` without ``domains`` (or vice versa) realigns
        the other field instead of carrying the stale alias over — so
        ``config.with_updates(domain="box")`` means "a Box config", not "a
        conflict with the previous ladder".
        """
        if "domain" in kwargs and "domains" not in kwargs:
            kwargs["domains"] = (kwargs["domain"],) if kwargs["domain"] is not None else None
        elif "domains" in kwargs and "domain" not in kwargs:
            domains = kwargs["domains"]
            kwargs["domain"] = tuple(domains)[-1] if domains else None
        if (
            ("domain" in kwargs or "domains" in kwargs)
            and "stage_phase_one_budgets" not in kwargs
            and self.stage_phase_one_budgets is not None
        ):
            # Per-stage budgets are positional along the ladder; a ladder
            # change invalidates them rather than silently re-aligning.
            kwargs["stage_phase_one_budgets"] = None
        if (
            ("domain" in kwargs or "domains" in kwargs)
            and "acceleration" not in kwargs
            and self.acceleration.stages is not None
        ):
            # The per-stage acceleration mask is positional too.
            kwargs["acceleration"] = replace(self.acceleration, stages=None)
        return replace(self, **kwargs)

    @classmethod
    def reference(cls) -> "CraftConfig":
        """The reference configuration of Table 4 (PR then FB, slope opt on)."""
        return cls(slope_optimization="reference")

    @classmethod
    def ablation(cls, name: str) -> "CraftConfig":
        """Named ablation configurations matching the rows of Table 4."""
        base = cls.reference()
        ablations = {
            "reference": base,
            "no_zono_component": base.with_updates(domain="box", slope_optimization="none"),
            "no_box_component": base.with_updates(use_box_component=False),
            "only_pr": base.with_updates(solver2="pr", alpha2=None),
            "only_fb": base.with_updates(solver1="fb", alpha1=0.04),
            "no_lambda_optimization": base.with_updates(slope_optimization="none"),
            "reduced_lambda_optimization": base.with_updates(slope_optimization="reduced"),
            "same_iteration_containment": base.with_updates(same_iteration_containment=True),
            "no_expansion": base.with_updates(expansion="none", w_mul=0.0, w_add=0.0),
            # The per-query domain waterfall (cheapest domain first, hard
            # queries escalate) — same final precision as the reference.
            "escalation_ladder": base.with_updates(
                domains=("box", "zonotope", "chzonotope")
            ),
        }
        if name not in ablations:
            raise ConfigurationError(
                f"unknown ablation {name!r}; choose from {sorted(ablations)}"
            )
        return ablations[name]
