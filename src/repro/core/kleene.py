"""Kleene iteration baseline (Section 2.2).

Standard abstract interpretation handles unbounded loops by Kleene
iteration: ``S_i = S_{i-1} ⊔ f#(S_{i-1})`` until an order-theoretic
post-fixpoint is reached, optionally preceded by *semantic unrolling*
(iterating without the join for the first ``k`` steps) and accelerated with
*widening* to guarantee termination.

The paper uses Kleene iteration as the baseline whose imprecision motivates
the domain-specific framework: because the join accumulates all iteration
states, the resulting abstraction covers every intermediate state rather
than just the fixpoint set (Fig. 2, Table 5, Fig. 16).

The engine below works on any element providing ``join``/``widen`` and an
interval-hull comparison, i.e. :class:`~repro.domains.interval.Interval`
and :class:`~repro.domains.zonotope.Zonotope`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.config import KleeneSettings
from repro.core.results import KleeneResult
from repro.domains.base import AbstractElement
from repro.domains.interval import Interval
from repro.exceptions import DomainError

StepFunction = Callable[[AbstractElement], AbstractElement]


def _hull(element: AbstractElement) -> Interval:
    lower, upper = element.concretize_bounds()
    return Interval(lower, upper)


class KleeneEngine:
    """Kleene iteration with semantic unrolling and interval widening."""

    def __init__(self, settings: KleeneSettings = None):
        self._settings = settings if settings is not None else KleeneSettings()

    def run(self, step: StepFunction, initial: AbstractElement) -> KleeneResult:
        """Compute an abstract post-fixpoint of ``step`` starting from ``initial``.

        The first ``semantic_unrolling`` iterations apply ``step`` without a
        join (sound when the loop's termination condition is known not to
        trigger yet, Blanchet et al. 2002).  Afterwards the join with the
        previous state is taken; once ``widen_after`` joined iterations have
        passed, growing bounds are widened to ``widening_threshold``.
        Convergence is detected when the joined state's interval hull equals
        (up to tolerance) the previous one, i.e. a post-fixpoint w.r.t. the
        hull ordering.
        """
        settings = self._settings
        if not hasattr(initial, "join"):
            raise DomainError(
                f"{type(initial).__name__} does not support joins; Kleene iteration "
                "requires a domain with a (quasi-)join"
            )

        state = initial
        width_trace = []
        joins = 0
        widenings = 0

        for iteration in range(settings.max_iterations):
            propagated = step(state)
            if iteration < settings.semantic_unrolling:
                new_state = propagated
            else:
                new_state = state.join(propagated)
                joins += 1
                if iteration >= settings.semantic_unrolling + settings.widen_after:
                    widened = state.widen(new_state, threshold=settings.widening_threshold)
                    if not _hull(widened).is_subset_of(_hull(new_state)):
                        new_state = widened.join(new_state)
                        widenings += 1

            if settings.track_trace:
                width_trace.append(new_state.mean_width)

            # The convergence check runs before the divergence abort so that a
            # state pushed to (+/-) infinity by widening is recognised as a
            # (trivially sound) post-fixpoint rather than as divergence.
            if iteration >= settings.semantic_unrolling and _hull(new_state).is_subset_of(
                _hull(state), tol=1e-12
            ):
                return KleeneResult(
                    converged=True,
                    state=new_state,
                    iterations=iteration + 1,
                    joins=joins,
                    widenings=widenings,
                    width_trace=width_trace,
                )

            blown_up = new_state.max_width > settings.abort_width or not np.all(
                np.isfinite(new_state.width)
            )
            if blown_up and widenings == 0:
                return KleeneResult(
                    converged=False,
                    state=new_state,
                    iterations=iteration + 1,
                    joins=joins,
                    widenings=widenings,
                    width_trace=width_trace,
                    diverged=True,
                )
            state = new_state

        return KleeneResult(
            converged=False,
            state=state,
            iterations=settings.max_iterations,
            joins=joins,
            widenings=widenings,
            width_trace=width_trace,
        )
