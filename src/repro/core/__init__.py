"""The paper's primary contribution: abstract interpretation of fixpoint iterators.

* :mod:`repro.core.contraction` — the contraction-based termination
  criterion of Theorem 3.1 (and its s-step variant, Theorem B.1) as a
  domain-agnostic engine.
* :mod:`repro.core.expansion` — the expansion schedules of Eq. (10) /
  Appendix D.2.
* :mod:`repro.core.kleene` — the Kleene-iteration baseline with joins,
  widening and semantic unrolling (Section 2.2).
* :mod:`repro.core.craft` — the Craft verifier (Algorithm 1): phase one
  finds an abstract post-fixpoint via contraction, phase two tightens it
  with fixpoint-set-preserving iterations and checks the postcondition.
* :mod:`repro.core.config` / :mod:`repro.core.results` — configuration and
  result types shared by the verification front-ends and the benchmarks.
"""

from repro.core.config import (
    AccelerationConfig,
    CraftConfig,
    ContractionSettings,
    KleeneSettings,
)
from repro.core.contraction import ContractionEngine, DomainOps, domain_ops_for
from repro.core.craft import CraftVerifier, FixpointProblem
from repro.core.expansion import ExpansionSchedule
from repro.core.kleene import KleeneEngine
from repro.core.results import (
    ContractionResult,
    FixpointAbstraction,
    KleeneResult,
    PostconditionCheck,
    VerificationOutcome,
    VerificationResult,
)

__all__ = [
    "AccelerationConfig",
    "ContractionEngine",
    "ContractionResult",
    "ContractionSettings",
    "CraftConfig",
    "CraftVerifier",
    "DomainOps",
    "ExpansionSchedule",
    "FixpointAbstraction",
    "FixpointProblem",
    "KleeneEngine",
    "KleeneResult",
    "KleeneSettings",
    "PostconditionCheck",
    "VerificationOutcome",
    "VerificationResult",
    "domain_ops_for",
]
