"""Expansion schedules for error consolidation (Eq. 10 and Appendix D.2).

Expansion enlarges the consolidated abstraction by a multiplicative factor
``(1 + w_mul)`` and an additive amount ``w_add`` per error direction.  The
paper uses two schedules:

* ``const`` — fixed ``w_mul = 1e-3``, ``w_add = 1e-2``;
* ``exp``   — starts at the constant values and multiplies ``w_mul`` by 1.1
  and ``w_add`` by 1.2 every second consolidation (used for the CIFAR-like
  configurations, Table 7);
* ``none``  — expansion disabled (Table 4 "No Expansion").
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import CraftConfig
from repro.exceptions import ConfigurationError


class ExpansionSchedule:
    """Stateful iterator over the expansion parameters ``(w_mul, w_add)``."""

    def __init__(
        self,
        mode: str = "const",
        w_mul: float = 1e-3,
        w_add: float = 1e-2,
        mul_growth: float = 1.1,
        add_growth: float = 1.2,
        growth_every: int = 2,
    ):
        if mode not in ("const", "exp", "none"):
            raise ConfigurationError(f"unknown expansion mode {mode!r}")
        if w_mul < 0 or w_add < 0:
            raise ConfigurationError("expansion parameters must be non-negative")
        if growth_every < 1:
            raise ConfigurationError("growth_every must be positive")
        self.mode = mode
        self._initial = (w_mul, w_add)
        self._current = (0.0, 0.0) if mode == "none" else (w_mul, w_add)
        self._mul_growth = mul_growth
        self._add_growth = add_growth
        self._growth_every = growth_every
        self._consolidations = 0

    @classmethod
    def from_config(cls, config: CraftConfig) -> "ExpansionSchedule":
        """Build the schedule described by a :class:`CraftConfig`."""
        return cls(
            mode=config.expansion,
            w_mul=config.w_mul,
            w_add=config.w_add,
            mul_growth=config.expansion_mul_growth,
            add_growth=config.expansion_add_growth,
            growth_every=config.expansion_growth_every,
        )

    @property
    def current(self) -> Tuple[float, float]:
        """The expansion parameters to use for the next consolidation."""
        return self._current

    @property
    def consolidations(self) -> int:
        """Number of consolidations recorded so far."""
        return self._consolidations

    def step(self) -> Tuple[float, float]:
        """Return the parameters for this consolidation and advance the schedule."""
        params = self._current
        self._consolidations += 1
        if self.mode == "exp" and self._consolidations % self._growth_every == 0:
            w_mul, w_add = self._current
            self._current = (w_mul * self._mul_growth, w_add * self._add_growth)
        return params

    def reset(self) -> None:
        """Reset the schedule to its initial parameters."""
        self._consolidations = 0
        self._current = (0.0, 0.0) if self.mode == "none" else self._initial
