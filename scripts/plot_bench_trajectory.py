#!/usr/bin/env python
"""Graph the perf trajectories accumulated in ``BENCH_*.json`` files.

Every engine benchmark appends one run per invocation to its
``BENCH_<name>.json`` history (see ``benchmarks/_harness.append_trajectory``),
and CI uploads the files as artifacts — so over time each file holds the
benchmark's wall-clock/speedup trajectory.  This script renders all of
them together (the ROADMAP "perf trajectory" item):

* with matplotlib installed, one subplot per benchmark is written to
  ``--out`` (default ``bench_trajectory.png``);
* without matplotlib (the CI containers ship numpy only), an ASCII
  sparkline per metric is printed instead, and ``--out`` receives the
  same text — the trajectory stays inspectable anywhere.

The script doubles as the **bench regression gate**: ``--check`` compares
every time-like trajectory point against the median of its trailing
window and exits nonzero when a point is slower by more than the noise
band (1.5x the trailing inter-quartile range, with a 10% relative floor
so a run of identical timings does not flag measurement jitter).
Throughput metrics (``qps`` / ``aggregate_qps``) are gated the same way
in the opposite direction — a point *below* the trailing median by more
than the noise band flags.  The CI ``bench-engines`` job runs the gate
after the benchmarks, so a regression shows up as a failing step next to
the uploaded trajectory.

Usage::

    python scripts/plot_bench_trajectory.py [--dir DIR] [--keys speedup,time]
    python scripts/plot_bench_trajectory.py --check [--dir DIR]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from statistics import median
from typing import Dict, List

#: Metric-name substrings graphed by default; override with --keys.
DEFAULT_KEYS = (
    "speedup", "regions_per_second", "certified", "hit_rate", "qps",
    "_time", "time"
)

#: Metric-name substrings the regression gate treats as "lower is better"
#: wall-clock measurements.
CHECK_KEYS = ("time",)

#: Metric-name substrings gated as "higher is better" throughput — a
#: point *below* the trailing median by more than the noise band flags.
CHECK_KEYS_HIGHER = ("qps",)

#: Trailing-window length, IQR multiplier, relative noise floor and the
#: minimum history before the gate arms (young trajectories have no
#: meaningful baseline).
CHECK_WINDOW = 8
CHECK_BAND = 1.5
CHECK_RELATIVE_FLOOR = 0.10
CHECK_MIN_HISTORY = 4

SPARKS = "▁▂▃▄▅▆▇█"


def flatten_numeric(prefix: str, value, out: Dict[str, float]) -> None:
    """Flatten one run payload into dotted-path -> scalar entries."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key, item in value.items():
            if key == "created_unix":
                continue
            flatten_numeric(f"{prefix}.{key}" if prefix else key, item, out)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            flatten_numeric(f"{prefix}[{index}]", item, out)


def load_trajectories(directory: str) -> Dict[str, List[Dict[str, float]]]:
    """``benchmark name -> [flattened run, ...]`` for every history file."""
    trajectories: Dict[str, List[Dict[str, float]]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path}: {error}", file=sys.stderr)
            continue
        runs = []
        for run in payload.get("runs", []):
            flat: Dict[str, float] = {}
            flatten_numeric("", run, flat)
            runs.append(flat)
        if runs:
            trajectories[payload.get("benchmark", os.path.basename(path))] = runs
    return trajectories


def select_series(
    runs: List[Dict[str, float]], key_filters
) -> Dict[str, List[float]]:
    """Metric series (aligned to run order; missing points carried as nan)."""
    names = sorted({name for run in runs for name in run})
    series: Dict[str, List[float]] = {}
    for name in names:
        if not any(token in name for token in key_filters):
            continue
        series[name] = [run.get(name, float("nan")) for run in runs]
    return series


def sparkline(values: List[float]) -> str:
    finite = [v for v in values if v == v]
    if not finite:
        return ""
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    chars = []
    for value in values:
        if value != value:  # nan: run missing this metric
            chars.append("·")
        else:
            chars.append(SPARKS[int((value - low) / span * (len(SPARKS) - 1))])
    return "".join(chars)


def _iqr(values: List[float]) -> float:
    ordered = sorted(values)
    if len(ordered) < 2:
        return 0.0
    half = len(ordered) // 2
    return median(ordered[-half:]) - median(ordered[:half])


def check_regressions(
    trajectories,
    window: int = CHECK_WINDOW,
    band: float = CHECK_BAND,
    relative_floor: float = CHECK_RELATIVE_FLOOR,
    min_history: int = CHECK_MIN_HISTORY,
    latest_only: bool = False,
) -> List[str]:
    """Flag trajectory points regressed against their trailing median.

    For every metric whose name matches :data:`CHECK_KEYS` (wall-clock,
    lower is better) or :data:`CHECK_KEYS_HIGHER` (throughput, higher is
    better), each point with at least ``min_history`` predecessors is
    compared against the median of its trailing ``window``: a point is a
    regression when it lands on the wrong side of ``median ± max(band *
    IQR, relative_floor * median)`` — the IQR term models the
    trajectory's own run-to-run noise, the relative floor keeps a
    perfectly steady history from flagging harmless jitter.

    ``latest_only`` restricts the scan to each series' newest *present*
    point — what the CI gate uses, so a transient regression that has
    since healed does not keep every future gate run red, and a history
    whose runs alternate between scenarios (each contributing its own
    metric names) still gates every series on its own latest sample.
    Returns human-readable descriptions, one per flagged point.
    """
    flags: List[str] = []
    for name, runs in trajectories.items():
        for key_filters, lower_is_better in (
            (CHECK_KEYS, True),
            (CHECK_KEYS_HIGHER, False),
        ):
            series = select_series(runs, key_filters)
            for metric, values in series.items():
                if latest_only:
                    present = [i for i, v in enumerate(values) if v == v]
                    indices = present[-1:]
                else:
                    indices = range(len(values))
                for index in indices:
                    value = values[index]
                    if value != value:  # nan: run missing this metric
                        continue
                    trailing = [
                        v for v in values[max(0, index - window) : index] if v == v
                    ]
                    if len(trailing) < min_history:
                        continue
                    baseline = median(trailing)
                    noise = max(
                        band * _iqr(trailing), relative_floor * abs(baseline)
                    )
                    if lower_is_better and value > baseline + noise:
                        flags.append(
                            f"{name}: {metric} run {index + 1} took {value:g} "
                            f"(trailing median {baseline:g}, "
                            f"allowed {baseline + noise:g})"
                        )
                    elif not lower_is_better and value < baseline - noise:
                        flags.append(
                            f"{name}: {metric} run {index + 1} dropped to "
                            f"{value:g} (trailing median {baseline:g}, "
                            f"allowed {baseline - noise:g})"
                        )
    return flags


def render_text(trajectories) -> str:
    lines = []
    for name, series in trajectories.items():
        lines.append(f"== {name} ({len(next(iter(series.values())))} runs) ==")
        width = max(len(metric) for metric in series)
        for metric, values in series.items():
            finite = [v for v in values if v == v]
            latest = finite[-1] if finite else float("nan")
            lines.append(
                f"  {metric:<{width}}  {sparkline(values)}  latest={latest:g}"
            )
    return "\n".join(lines)


def render_matplotlib(trajectories, out: str) -> None:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    count = len(trajectories)
    fig, axes = plt.subplots(count, 1, figsize=(9, 3 * count), squeeze=False)
    for axis, (name, series) in zip(axes[:, 0], trajectories.items()):
        for metric, values in series.items():
            axis.plot(range(1, len(values) + 1), values, marker="o", label=metric)
        axis.set_title(name)
        axis.set_xlabel("run")
        axis.legend(fontsize="x-small")
        axis.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    print(f"wrote {out}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=os.environ.get("BENCH_OUTPUT_DIR", "."),
        help="directory holding the BENCH_*.json histories",
    )
    parser.add_argument(
        "--keys",
        default=",".join(DEFAULT_KEYS),
        help="comma-separated metric-name substrings to graph",
    )
    parser.add_argument(
        "--out",
        default="bench_trajectory.png",
        help="output image (or .txt fallback without matplotlib)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: exit nonzero when a time-like trajectory "
        "point is slower — or a qps point lower — than its trailing "
        "median by more than the noise band (1.5x IQR with a 10%% floor)",
    )
    args = parser.parse_args(argv)
    key_filters = tuple(token for token in args.keys.split(",") if token)

    raw = load_trajectories(args.dir)
    if args.check:
        # Gate on the newest point of every series only: a past (healed)
        # regression stays visible in the graphed trajectory but must not
        # keep failing runs whose own measurements are healthy.
        flags = check_regressions(raw, latest_only=True)
        if flags:
            print(f"{len(flags)} bench regression(s) detected:")
            for flag in flags:
                print(f"  REGRESSION {flag}")
            return 1
        count = sum(len(runs) for runs in raw.values())
        print(f"bench trajectories clean ({len(raw)} histories, {count} runs)")
        return 0
    trajectories = {
        name: series
        for name, series in (
            (name, select_series(runs, key_filters)) for name, runs in raw.items()
        )
        if series
    }
    if not trajectories:
        print(f"no BENCH_*.json histories with matching metrics in {args.dir!r}")
        return 1

    try:
        import matplotlib  # noqa: F401  (availability probe)
    except ImportError:
        text = render_text(trajectories)
        print(text)
        out = os.path.splitext(args.out)[0] + ".txt"
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"(matplotlib unavailable — wrote text rendering to {out})")
        return 0
    render_matplotlib(trajectories, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
