"""Unit tests for the dataset substrate (synthetic images, Gaussians, HCAS)."""

import numpy as np
import pytest

from repro.datasets.gaussian import make_gaussian_mixture
from repro.datasets.hcas import (
    ACTION_NAMES,
    HCASGrid,
    make_hcas_dataset,
    solve_hcas_mdp,
)
from repro.datasets.synthetic import make_cifar_like, make_mnist_like
from repro.exceptions import DatasetError


class TestSyntheticImages:
    def test_mnist_like_shapes_and_range(self):
        data = make_mnist_like(size=8, num_classes=4, train_per_class=5, test_per_class=2, seed=0)
        assert data.x_train.shape == (20, 64)
        assert data.x_test.shape == (8, 64)
        assert data.input_dim == 64
        assert np.all((0.0 <= data.x_train) & (data.x_train <= 1.0))
        assert set(np.unique(data.y_train)) <= set(range(4))

    def test_cifar_like_has_three_channels(self):
        data = make_cifar_like(size=6, num_classes=3, train_per_class=4, test_per_class=2)
        assert data.image_shape == (3, 6, 6)
        assert data.input_dim == 108

    def test_deterministic_given_seed(self):
        a = make_mnist_like(size=6, num_classes=3, train_per_class=3, test_per_class=1, seed=5)
        b = make_mnist_like(size=6, num_classes=3, train_per_class=3, test_per_class=1, seed=5)
        assert np.allclose(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_classes_are_learnable_by_nearest_prototype(self):
        """Per-class means separate the synthetic classes reasonably well."""
        data = make_mnist_like(size=8, num_classes=3, train_per_class=20, test_per_class=10, seed=1)
        prototypes = np.stack(
            [data.x_train[data.y_train == cls].mean(axis=0) for cls in range(3)]
        )
        distances = ((data.x_test[:, None, :] - prototypes[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        assert np.mean(predictions == data.y_test) > 0.8

    def test_subset(self):
        data = make_mnist_like(size=6, num_classes=3, train_per_class=4, test_per_class=2)
        subset = data.subset(train=5, test=3)
        assert subset.x_train.shape[0] == 5
        assert subset.x_test.shape[0] == 3

    def test_invalid_num_classes(self):
        with pytest.raises(DatasetError):
            make_mnist_like(num_classes=1)


class TestGaussianMixture:
    def test_shapes_and_range(self):
        xs, ys = make_gaussian_mixture(num_samples=50, input_dim=4, num_classes=3, seed=0)
        assert xs.shape == (50, 4)
        assert ys.shape == (50,)
        assert xs.min() >= 0.0 and xs.max() <= 1.0

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            make_gaussian_mixture(num_classes=1)
        with pytest.raises(DatasetError):
            make_gaussian_mixture(num_samples=1, num_classes=3)


class TestHCAS:
    @pytest.fixture(scope="class")
    def grid(self):
        return HCASGrid(x_points=7, y_points=7, theta_points=5, horizon=12)

    def test_mdp_solution_shapes(self, grid):
        states, labels, q_values = solve_hcas_mdp(grid)
        assert states.shape == (7 * 7 * 5, 3)
        assert labels.shape == (states.shape[0],)
        assert q_values.shape == (states.shape[0], len(ACTION_NAMES))
        assert set(np.unique(labels)) <= set(range(len(ACTION_NAMES)))

    def test_far_away_intruder_gets_clear_of_conflict(self, grid):
        states, labels, _ = solve_hcas_mdp(grid)
        far = np.linalg.norm(states[:, :2], axis=1) > 20.0
        assert far.any()
        # Far-away encounters should overwhelmingly be "Clear of Conflict".
        assert np.mean(labels[far] == 0) > 0.8

    def test_alerts_exist_near_collision_course(self, grid):
        _, labels, _ = solve_hcas_mdp(grid)
        assert np.any(labels != 0)

    def test_dataset_normalisation_roundtrip(self, grid):
        dataset = make_hcas_dataset(grid, seed=0)
        assert dataset.features.min() >= 0.0 and dataset.features.max() <= 1.0
        recovered = dataset.denormalise(dataset.normalise(dataset.states[:5]))
        assert np.allclose(recovered, dataset.states[:5])

    def test_policy_slice_shape(self, grid):
        dataset = make_hcas_dataset(grid, seed=0)
        xs, ys, labels = dataset.policy_slice(theta=-90.0)
        assert labels.shape == (ys.shape[0], xs.shape[0])

    def test_invalid_grid(self):
        with pytest.raises(DatasetError):
            HCASGrid(x_points=1)
        with pytest.raises(DatasetError):
            HCASGrid(horizon=0)
