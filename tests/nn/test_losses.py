"""Unit tests for the loss functions and their gradients."""

import numpy as np
import pytest

from repro.nn.losses import cross_entropy_loss, margin_loss, softmax, targeted_margin_loss


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probabilities = softmax(rng.normal(size=(5, 4)))
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_numerical_stability(self):
        probabilities = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probabilities).all()


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0, -10.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0]))
        assert loss < 1e-6

    def test_gradient_matches_finite_differences(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        _, gradient = cross_entropy_loss(logits, labels)
        epsilon = 1e-6
        for i in range(3):
            for j in range(4):
                plus = logits.copy()
                plus[i, j] += epsilon
                minus = logits.copy()
                minus[i, j] -= epsilon
                numerical = (cross_entropy_loss(plus, labels)[0] - cross_entropy_loss(minus, labels)[0]) / (2 * epsilon)
                assert gradient[i, j] == pytest.approx(numerical, abs=1e-5)

    def test_uniform_logits_loss_is_log_classes(self):
        loss, _ = cross_entropy_loss(np.zeros((2, 5)), np.array([0, 3]))
        assert loss == pytest.approx(np.log(5))


class TestMarginLosses:
    def test_margin_sign_tracks_classification(self):
        correct = np.array([[3.0, 0.0]])
        wrong = np.array([[0.0, 3.0]])
        assert margin_loss(correct, np.array([0]))[0] < 0
        assert margin_loss(wrong, np.array([0]))[0] > 0

    def test_margin_gradient_structure(self):
        logits = np.array([[1.0, 2.0, 0.5]])
        _, gradient = margin_loss(logits, np.array([0]))
        assert gradient[0, 1] == pytest.approx(1.0)
        assert gradient[0, 0] == pytest.approx(-1.0)
        assert gradient[0, 2] == pytest.approx(0.0)

    def test_targeted_margin(self):
        logits = np.array([[2.0, 1.0, 0.0]])
        loss, gradient = targeted_margin_loss(logits, np.array([0]), np.array([2]))
        assert loss == pytest.approx(-2.0)
        assert gradient[0, 2] == pytest.approx(1.0)
        assert gradient[0, 0] == pytest.approx(-1.0)
