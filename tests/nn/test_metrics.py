"""Unit tests for the classification metrics."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_matrix


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), num_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4
