"""Unit tests for the SGD and Adam optimisers."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam


def _quadratic_gradients(parameters):
    """Gradients of 0.5 * ||w||^2 for every parameter."""
    return {name: value.copy() for name, value in parameters.items()}


class TestSGD:
    def test_plain_step(self):
        parameters = {"w": np.array([1.0, -2.0])}
        SGD(learning_rate=0.1).step(parameters, {"w": np.array([1.0, 1.0])})
        assert np.allclose(parameters["w"], [0.9, -2.1])

    def test_momentum_accumulates(self):
        parameters = {"w": np.array([0.0])}
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        for _ in range(3):
            optimizer.step(parameters, {"w": np.array([1.0])})
        plain = {"w": np.array([0.0])}
        for _ in range(3):
            SGD(learning_rate=0.1).step(plain, {"w": np.array([1.0])})
        assert parameters["w"][0] < plain["w"][0]

    def test_weight_decay(self):
        parameters = {"w": np.array([1.0])}
        SGD(learning_rate=0.1, weight_decay=1.0).step(parameters, {"w": np.array([0.0])})
        assert parameters["w"][0] == pytest.approx(0.9)

    def test_missing_parameter_skipped(self):
        parameters = {"w": np.array([1.0])}
        SGD(0.1).step(parameters, {"unknown": np.array([1.0])})
        assert parameters["w"][0] == 1.0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)


class TestAdam:
    def test_minimises_quadratic(self):
        parameters = {"w": np.array([5.0, -3.0])}
        optimizer = Adam(learning_rate=0.1)
        for _ in range(300):
            optimizer.step(parameters, _quadratic_gradients(parameters))
        assert np.allclose(parameters["w"], 0.0, atol=1e-2)

    def test_first_step_size_bounded_by_learning_rate(self):
        parameters = {"w": np.array([0.0])}
        Adam(learning_rate=0.5).step(parameters, {"w": np.array([123.0])})
        assert abs(parameters["w"][0]) <= 0.5 + 1e-9

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-1.0)
