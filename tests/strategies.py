"""Shared hypothesis strategies for the abstract-domain property tests.

Every abstract transformer in :mod:`repro.domains` carries an
over-approximation contract ("the image of every concrete point lies in the
abstract image"); the strategies here generate the raw material — centres,
generator matrices, Box radii, weights — those contract tests are driven
with.  Keeping them in one place guarantees that the CH-Zonotope, Zonotope,
Interval, Parallelotope and order-reduction soundness tests all sample the
same distribution of elements.
"""

import numpy as np
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

FINITE = {"allow_nan": False, "allow_infinity": False}

DIM = 3


def centers(dim=DIM, bound=5.0):
    """Centre vectors with entries in ``[-bound, bound]``."""
    return arrays(np.float64, (dim,), elements=st.floats(-bound, bound, **FINITE))


def generator_matrices(dim=DIM, count=4, bound=2.0):
    """Generator matrices ``(dim, count)`` with entries in ``[-bound, bound]``."""
    return arrays(np.float64, (dim, count), elements=st.floats(-bound, bound, **FINITE))


def box_vectors(dim=DIM, bound=1.5):
    """Non-negative Box radii in ``[0, bound]``."""
    return arrays(np.float64, (dim,), elements=st.floats(0, bound, **FINITE))


def weight_matrices(rows=2, cols=DIM, bound=3.0):
    """Affine weights ``(rows, cols)`` with entries in ``[-bound, bound]``."""
    return arrays(np.float64, (rows, cols), elements=st.floats(-bound, bound, **FINITE))


def invertible_matrices(dim=DIM, bound=2.0):
    """Strictly diagonally dominant (hence invertible) ``(dim, dim)`` matrices."""
    margin = bound * dim + 1.0
    return arrays(
        np.float64, (dim, dim), elements=st.floats(-bound, bound, **FINITE)
    ).map(lambda matrix: matrix + margin * np.eye(dim))


def unit_floats():
    """Floats in ``[0, 1]`` (ReLU slopes, interpolation weights)."""
    return st.floats(0, 1, **FINITE)


def sample_points(element, count=24, seed=0):
    """Deterministic concretisation samples of an abstract element."""
    return element.sample(count, np.random.default_rng(seed))
