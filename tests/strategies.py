"""Shared hypothesis strategies for the abstract-domain property tests.

Every abstract transformer in :mod:`repro.domains` carries an
over-approximation contract ("the image of every concrete point lies in the
abstract image"); the strategies here generate the raw material — centres,
generator matrices, Box radii, weights — those contract tests are driven
with.  Keeping them in one place guarantees that the CH-Zonotope, Zonotope,
Interval, Parallelotope and order-reduction soundness tests all sample the
same distribution of elements.
"""

import numpy as np
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

FINITE = {"allow_nan": False, "allow_infinity": False}

DIM = 3


def centers(dim=DIM, bound=5.0):
    """Centre vectors with entries in ``[-bound, bound]``."""
    return arrays(np.float64, (dim,), elements=st.floats(-bound, bound, **FINITE))


def generator_matrices(dim=DIM, count=4, bound=2.0):
    """Generator matrices ``(dim, count)`` with entries in ``[-bound, bound]``."""
    return arrays(np.float64, (dim, count), elements=st.floats(-bound, bound, **FINITE))


def box_vectors(dim=DIM, bound=1.5):
    """Non-negative Box radii in ``[0, bound]``."""
    return arrays(np.float64, (dim,), elements=st.floats(0, bound, **FINITE))


def weight_matrices(rows=2, cols=DIM, bound=3.0):
    """Affine weights ``(rows, cols)`` with entries in ``[-bound, bound]``."""
    return arrays(np.float64, (rows, cols), elements=st.floats(-bound, bound, **FINITE))


def invertible_matrices(dim=DIM, bound=2.0):
    """Strictly diagonally dominant (hence invertible) ``(dim, dim)`` matrices."""
    margin = bound * dim + 1.0
    return arrays(
        np.float64, (dim, dim), elements=st.floats(-bound, bound, **FINITE)
    ).map(lambda matrix: matrix + margin * np.eye(dim))


def unit_floats():
    """Floats in ``[0, 1]`` (ReLU slopes, interpolation weights)."""
    return st.floats(0, 1, **FINITE)


def sample_points(element, count=24, seed=0):
    """Deterministic concretisation samples of an abstract element."""
    return element.sample(count, np.random.default_rng(seed))


# ----------------------------------------------------------------------
# Differential-fuzzing strategies: whole models, input regions and
# verifier configurations (tests/engine/test_differential.py).
# ----------------------------------------------------------------------


def mondeq_models(max_input_dim=5, max_latent_dim=8, max_output_dim=4):
    """Random monotone DEQs with small, varied shapes.

    Strong monotonicity keeps the fixpoint iterations contracting quickly,
    so a fuzzing example costs milliseconds rather than the full phase-one
    budget.
    """
    from repro.mondeq.model import MonDEQ

    return st.builds(
        lambda input_dim, latent_dim, output_dim, monotonicity, seed: MonDEQ.random(
            input_dim=input_dim,
            latent_dim=latent_dim,
            output_dim=output_dim,
            monotonicity=monotonicity,
            seed=seed,
        ),
        input_dim=st.integers(2, max_input_dim),
        latent_dim=st.integers(3, max_latent_dim),
        output_dim=st.integers(2, max_output_dim),
        monotonicity=st.floats(6.0, 14.0, **FINITE),
        seed=st.integers(0, 2**16),
    )


def input_regions(input_dim, count=4, bound=1.5):
    """``count`` region centres for a model of the given input dimension."""
    return arrays(
        np.float64, (count, input_dim), elements=st.floats(-bound, bound, **FINITE)
    )


def epsilons():
    """Perturbation radii spanning trivially-certifiable to hopeless."""
    return st.sampled_from([1e-4, 0.01, 0.05, 0.15, 0.3])


def domain_ladders():
    """Random escalation ladders: ascending subsequences of the domain
    precision order with at least two stages.

    Ladders are drawn from the Box/Zonotope/CH-Zonotope rungs — the
    domains whose engine parity contract is bit-level (1e-9 bounds), so
    the differential suite can assert strict agreement.  The parallelotope
    rung's every-step SVD reduction amplifies last-ulp BLAS differences
    between the stacked and sequential pipelines (see
    ``BatchedParallelotope._reduce_order``), so its ladder coverage lives
    in the dedicated verdict-level tests
    (``tests/engine/test_escalation.py``).
    """
    rungs = ("box", "zonotope", "chzonotope")
    subsets = [
        tuple(name for keep, name in zip(mask, rungs) if keep)
        for mask in [(1, 1, 0), (1, 0, 1), (0, 1, 1), (1, 1, 1)]
    ]
    return st.sampled_from(subsets)


def backends():
    """Array backends usable in this process, for cross-backend fuzzing.

    Always contains ``"numpy"``; ``"torch"`` joins when torch is
    importable (the CI torch leg), so the differential suite fuzzes
    torch-CPU configurations exactly where they can run and the core
    matrix stays green without torch.
    """
    from repro.backend import available_backends

    return st.sampled_from(available_backends())


def acceleration_configs():
    """Acceleration knobs for the differential fuzz: off half the time,
    and when on, varied window / margin / proposal budgets so the fuzz
    covers both the proposer firing and it staying silent.  Whatever is
    drawn, verdicts must not move — acceleration may only shortcut the
    search, never the proof."""
    from repro.core.config import AccelerationConfig

    return st.builds(
        AccelerationConfig,
        enabled=st.booleans(),
        window=st.sampled_from([2, 3, 5]),
        margin=st.sampled_from([0.25, 1.0, 2.0]),
        max_proposals=st.sampled_from([1, 3]),
    )


def craft_configs():
    """Verifier configurations exercising the engines' distinct code paths.

    Budgets are kept small (fuzzing wants many examples, not deep runs) and
    the invalid fb-then-pr solver combination is never generated.  The
    phase-two consolidation cadence is drawn too, so the differential suite
    pins sequential/batched/sharded agreement with consolidation on, and
    the abstract domain is drawn from all three batched stacks
    (CH-Zonotope, Box, plain Zonotope) — the domain-generic engine must
    agree with the sequential reference for every one of them.

    ``consolidation_basis`` is drawn from ``per_sample``/``auto``: on the
    single-domain configs this strategy produces, ``auto`` *resolves* to
    the per-sample basis (a single-domain sweep is its own final stage),
    so the strict three-way parity assertions stay valid while the
    resolution logic itself gets fuzzed.  The batch-composition-dependent
    ``shared`` mode has its own dedicated suite
    (``tests/engine/test_consolidation_basis.py``) — its iterates are
    *designed* to differ across engines' batch shapes, so it has no place
    in a bit-parity fuzz.
    """
    from repro.core.config import ContractionSettings, CraftConfig

    def build(
        domain,
        solvers,
        consolidate_every,
        same_iteration,
        use_box,
        slope_mode,
        basis,
        acceleration,
        backend,
    ):
        solver1, solver2 = solvers
        return CraftConfig(
            domain=domain,
            solver1=solver1,
            alpha1=0.1 if solver1 == "pr" else 0.04,
            solver2=solver2,
            alpha2_grid=(0.05, 0.15, 0.5),
            contraction=ContractionSettings(
                max_iterations=60, consolidate_every=3, history_size=4
            ),
            slope_optimization=slope_mode,
            slope_candidates_reduced=(-0.1, 0.1),
            same_iteration_containment=same_iteration,
            use_box_component=use_box,
            tighten_max_iterations=12,
            tighten_patience=5,
            tighten_consolidate_every=consolidate_every,
            consolidation_basis=basis,
            acceleration=acceleration,
            backend=backend,
        )

    return st.builds(
        build,
        # chzonotope drawn twice: it has the most distinct code paths.
        domain=st.sampled_from(["chzonotope", "chzonotope", "box", "zonotope"]),
        solvers=st.sampled_from([("pr", "fb"), ("pr", "pr"), ("fb", "fb")]),
        consolidate_every=st.sampled_from([0, 3, 5]),
        same_iteration=st.booleans(),
        use_box=st.booleans(),
        slope_mode=st.sampled_from(["none", "none", "reduced"]),
        basis=st.sampled_from(["per_sample", "per_sample", "auto"]),
        acceleration=acceleration_configs(),
        # The batched engines run on every available array backend; the
        # sequential reference is backend-independent, so the parity
        # assertions double as cross-backend verdict-parity assertions
        # wherever torch is importable (torch-CPU in CI).
        backend=backends(),
    )
