"""Unit tests for the Kleene-iteration baseline."""

import numpy as np
import pytest

from repro.core.config import KleeneSettings
from repro.core.kleene import KleeneEngine
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import DomainError


def contraction_step(factor=0.5, offset=1.0):
    def step(element):
        dim = element.dim
        return element.affine(factor * np.eye(dim), offset * np.ones(dim))

    return step


class TestKleeneEngine:
    def test_post_fixpoint_found_for_contraction(self):
        engine = KleeneEngine(KleeneSettings(max_iterations=200, semantic_unrolling=0))
        result = engine.run(contraction_step(), Interval.from_point([0.0]))
        assert result.converged
        # Without semantic unrolling the Kleene result must contain the
        # fixpoint 2.0 *and* every intermediate loop-head state down to the
        # first propagated one (1.0).
        assert result.state.contains_point(np.array([2.0]), tol=1e-6)
        assert result.state.contains_point(np.array([1.0]), tol=1e-6)

    def test_kleene_looser_than_fixpoint_set(self):
        engine = KleeneEngine(KleeneSettings(max_iterations=200, semantic_unrolling=0))
        result = engine.run(contraction_step(), Interval.from_point([0.0]))
        assert result.converged
        # the fixpoint set is the single point {2.0}; Kleene covers [0, 2].
        assert result.state.width[0] >= 1.9

    def test_join_counter_increases(self):
        engine = KleeneEngine(KleeneSettings(max_iterations=50, semantic_unrolling=3))
        result = engine.run(contraction_step(), Interval.from_point([0.0]))
        assert result.joins > 0
        assert len(result.width_trace) == result.iterations

    def test_divergence_detected(self):
        def expanding(element):
            return element.affine(2.0 * np.eye(element.dim), np.ones(element.dim))

        engine = KleeneEngine(KleeneSettings(max_iterations=100, abort_width=1e3, semantic_unrolling=0))
        result = engine.run(expanding, Interval.from_center_radius([0.0], 1.0))
        assert result.diverged

    def test_widening_guarantees_termination(self):
        def drifting(element):
            return element.translate(np.ones(element.dim))

        settings = KleeneSettings(
            max_iterations=500, semantic_unrolling=0, widen_after=5,
            widening_threshold=1e4, abort_width=1e9,
        )
        result = KleeneEngine(settings).run(drifting, Interval.from_point([0.0]))
        assert result.converged
        assert result.widenings > 0
        assert result.iterations < 500

    def test_zonotope_domain_supported(self):
        engine = KleeneEngine(KleeneSettings(max_iterations=100, semantic_unrolling=1))
        result = engine.run(contraction_step(0.3, 0.7), Zonotope.from_point([0.0, 0.0]))
        assert result.converged
        assert result.state.contains_point(np.array([1.0, 1.0]), tol=1e-6)

    def test_domain_without_join_rejected(self):
        from repro.domains.parallelotope import Parallelotope

        engine = KleeneEngine()
        element = object()
        with pytest.raises(DomainError):
            engine.run(lambda e: e, element)
        del Parallelotope

    def test_default_settings_used_when_none(self):
        engine = KleeneEngine()
        result = engine.run(contraction_step(), Interval.from_point([0.0]))
        assert result.converged
