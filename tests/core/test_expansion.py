"""Unit tests for the expansion schedules (Eq. 10, Appendix D.2)."""

import pytest

from repro.core.config import CraftConfig
from repro.core.expansion import ExpansionSchedule
from repro.exceptions import ConfigurationError


class TestSchedules:
    def test_constant_schedule_is_constant(self):
        schedule = ExpansionSchedule("const", w_mul=1e-3, w_add=1e-2)
        first = schedule.step()
        for _ in range(5):
            assert schedule.step() == first

    def test_none_schedule_is_zero(self):
        schedule = ExpansionSchedule("none", w_mul=1e-3, w_add=1e-2)
        assert schedule.step() == (0.0, 0.0)
        assert schedule.step() == (0.0, 0.0)

    def test_exponential_growth_every_second_consolidation(self):
        schedule = ExpansionSchedule("exp", w_mul=1e-3, w_add=1e-2, mul_growth=1.1, add_growth=1.2)
        first = schedule.step()
        second = schedule.step()
        third = schedule.step()
        assert first == second == (1e-3, 1e-2)
        assert third[0] == pytest.approx(1.1e-3)
        assert third[1] == pytest.approx(1.2e-2)

    def test_reset(self):
        schedule = ExpansionSchedule("exp", w_mul=1e-3, w_add=1e-2)
        for _ in range(6):
            schedule.step()
        schedule.reset()
        assert schedule.consolidations == 0
        assert schedule.step() == (1e-3, 1e-2)

    def test_from_config(self):
        config = CraftConfig(expansion="exp", w_mul=0.5, w_add=0.25)
        schedule = ExpansionSchedule.from_config(config)
        assert schedule.mode == "exp"
        assert schedule.current == (0.5, 0.25)

    def test_invalid_mode_and_parameters(self):
        with pytest.raises(ConfigurationError):
            ExpansionSchedule("bogus")
        with pytest.raises(ConfigurationError):
            ExpansionSchedule("const", w_mul=-1.0)
        with pytest.raises(ConfigurationError):
            ExpansionSchedule("const", growth_every=0)
