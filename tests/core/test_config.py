"""Unit tests for the configuration dataclasses."""

import pytest

from repro.core.config import ContractionSettings, CraftConfig, KleeneSettings
from repro.exceptions import ConfigurationError


class TestContractionSettings:
    def test_defaults_follow_paper(self):
        settings = ContractionSettings()
        assert settings.max_iterations == 500
        assert settings.consolidate_every == 3
        assert settings.basis_recompute_every == 30
        assert settings.history_size == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"consolidate_every": 0},
            {"basis_recompute_every": 0},
            {"history_size": 0},
            {"abort_width": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ContractionSettings(**kwargs)


class TestKleeneSettings:
    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            KleeneSettings(max_iterations=0)
        with pytest.raises(ConfigurationError):
            KleeneSettings(semantic_unrolling=-1)


class TestCraftConfig:
    def test_defaults_are_valid(self):
        config = CraftConfig()
        assert config.domain == "chzonotope"
        assert config.solver1 == "pr"
        assert config.solver2 == "fb"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"domain": "polyhedra"},
            {"solver1": "newton"},
            {"expansion": "quadratic"},
            {"slope_optimization": "full"},
            {"alpha1": 0.0},
            {"alpha2": 1.5},
            {"w_mul": -1.0},
            {"tighten_max_iterations": 0},
            {"tighten_patience": 0},
            {"alpha2_grid": ()},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CraftConfig(**kwargs)

    def test_with_updates_returns_copy(self):
        config = CraftConfig()
        updated = config.with_updates(alpha1=0.05)
        assert updated.alpha1 == 0.05
        assert config.alpha1 == 0.1


class TestEscalationLadderConfig:
    def test_domain_is_a_singleton_ladder_alias(self):
        config = CraftConfig(domain="box")
        assert config.domains == ("box",)
        assert not config.is_ladder
        assert CraftConfig().domains == ("chzonotope",)

    def test_ladder_sets_domain_to_final_stage(self):
        config = CraftConfig(domains=("box", "zonotope", "chzonotope"))
        assert config.domain == "chzonotope"
        assert config.is_ladder
        assert CraftConfig.escalation().domains == ("box", "zonotope", "chzonotope")

    def test_ladder_order_is_validated(self):
        with pytest.raises(ConfigurationError, match="ascending"):
            CraftConfig(domains=("chzonotope", "box"))
        with pytest.raises(ConfigurationError, match="ascending"):
            CraftConfig(domains=("box", "box"))
        with pytest.raises(ConfigurationError):
            CraftConfig(domains=())
        with pytest.raises(ConfigurationError):
            CraftConfig(domains=("box", "octagon"))

    def test_conflicting_alias_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicts"):
            CraftConfig(domain="box", domains=("box", "chzonotope"))
        # A consistent alias is accepted.
        config = CraftConfig(domain="chzonotope", domains=("box", "chzonotope"))
        assert config.domains == ("box", "chzonotope")

    def test_with_updates_realigns_alias_and_ladder(self):
        ladder = CraftConfig.escalation()
        assert ladder.with_updates(domain="box").domains == ("box",)
        widened = CraftConfig(domain="box").with_updates(
            domains=("zonotope", "chzonotope")
        )
        assert widened.domain == "chzonotope"

    def test_stage_configs_are_singletons_sharing_everything_else(self):
        ladder = CraftConfig.escalation(alpha1=0.2)
        stages = ladder.stage_configs()
        assert [stage.domain for stage in stages] == ["box", "zonotope", "chzonotope"]
        for stage in stages:
            assert not stage.is_ladder
            assert stage.alpha1 == 0.2
        with pytest.raises(ConfigurationError, match="not a stage"):
            ladder.stage_config("parallelotope")

    def test_parallelotope_is_a_valid_domain(self):
        config = CraftConfig(domain="parallelotope")
        assert config.domains == ("parallelotope",)

    def test_reference_configuration(self):
        assert CraftConfig.reference().slope_optimization == "reference"

    @pytest.mark.parametrize(
        "name, attribute, value",
        [
            ("no_zono_component", "domain", "box"),
            ("no_box_component", "use_box_component", False),
            ("only_pr", "solver2", "pr"),
            ("only_fb", "solver1", "fb"),
            ("no_lambda_optimization", "slope_optimization", "none"),
            ("reduced_lambda_optimization", "slope_optimization", "reduced"),
            ("same_iteration_containment", "same_iteration_containment", True),
            ("no_expansion", "expansion", "none"),
        ],
    )
    def test_ablation_configurations(self, name, attribute, value):
        assert getattr(CraftConfig.ablation(name), attribute) == value

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ConfigurationError):
            CraftConfig.ablation("no_such_ablation")


class TestConsolidationBasisConfig:
    def test_default_is_per_sample(self):
        config = CraftConfig()
        assert config.consolidation_basis == "per_sample"
        assert config.resolved_consolidation_basis() == "per_sample"

    def test_invalid_mode_and_guard_rejected(self):
        with pytest.raises(ConfigurationError, match="consolidation_basis"):
            CraftConfig(consolidation_basis="pooled")
        with pytest.raises(ConfigurationError, match="shared_basis_max_inflation"):
            CraftConfig(shared_basis_max_inflation=0.5)

    def test_auto_resolves_per_stage(self):
        """"auto" = shared on interim stages, per-sample on the final one."""
        ladder = CraftConfig.escalation(consolidation_basis="auto")
        stages = ladder.stage_configs()
        assert [s.consolidation_basis for s in stages] == [
            "shared",
            "shared",
            "per_sample",
        ]
        # A single-domain config is its own final stage.
        assert CraftConfig(consolidation_basis="auto").resolved_consolidation_basis() == (
            "per_sample"
        )
        # Explicit modes pass through to every stage unchanged.
        explicit = CraftConfig.escalation(consolidation_basis="shared")
        assert {s.consolidation_basis for s in explicit.stage_configs()} == {"shared"}

    def test_mode_is_verdict_relevant_for_the_cache(self):
        from repro.engine.scheduler import config_fingerprint

        base = CraftConfig()
        assert config_fingerprint(base) != config_fingerprint(
            base.with_updates(consolidation_basis="shared")
        )


class TestStagePhaseOneBudgets:
    def test_budgets_validated_against_ladder_length(self):
        with pytest.raises(ConfigurationError, match="one budget per ladder stage"):
            CraftConfig.escalation(stage_phase_one_budgets=(10, 20))
        with pytest.raises(ConfigurationError, match="positive"):
            CraftConfig.escalation(stage_phase_one_budgets=(0, None, None))
        with pytest.raises(ConfigurationError, match="positive"):
            CraftConfig.escalation(stage_phase_one_budgets=(10.5, None, None))

    def test_stage_configs_apply_their_budget(self):
        ladder = CraftConfig.escalation(stage_phase_one_budgets=(20, None, 400))
        box, zono, chz = ladder.stage_configs()
        assert box.contraction.max_iterations == 20
        # None inherits the shared contraction settings.
        assert zono.contraction.max_iterations == ladder.contraction.max_iterations
        assert chz.contraction.max_iterations == 400
        # Stage configs are singleton ladders; their own budget field is
        # cleared so they validate standalone.
        assert box.stage_phase_one_budgets is None

    def test_ladder_change_drops_stale_budgets(self):
        ladder = CraftConfig.escalation(stage_phase_one_budgets=(20, 50, None))
        assert ladder.with_updates(domain="box").stage_phase_one_budgets is None
        assert (
            ladder.with_updates(domains=("box", "chzonotope")).stage_phase_one_budgets
            is None
        )

    def test_budgets_are_verdict_relevant_for_the_cache(self):
        from repro.engine.scheduler import config_fingerprint

        base = CraftConfig.escalation()
        budgeted = CraftConfig.escalation(stage_phase_one_budgets=(25, None, None))
        assert config_fingerprint(base) != config_fingerprint(budgeted)
