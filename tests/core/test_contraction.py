"""Unit tests for the contraction-based termination engine (Theorem 3.1 / B.1)."""

import numpy as np
import pytest

from repro.core.config import ContractionSettings
from repro.core.contraction import ContractionEngine, DomainOps, domain_ops_for
from repro.core.expansion import ExpansionSchedule
from repro.domains.chzonotope import CHZonotope
from repro.domains.interval import Interval
from repro.domains.zonotope import Zonotope
from repro.exceptions import ConfigurationError


def affine_contraction_step(factor=0.5, offset=1.0):
    """A linear contraction ``x -> factor * x + offset`` with fixpoint offset/(1-factor)."""

    def step(element):
        dim = element.dim
        return element.affine(factor * np.eye(dim), offset * np.ones(dim))

    return step


def expanding_step(element):
    dim = element.dim
    return element.affine(1.5 * np.eye(dim))


class TestDomainOps:
    def test_known_domains(self):
        for name in ("chzonotope", "box", "zonotope"):
            assert isinstance(domain_ops_for(name), DomainOps)

    def test_unknown_domain(self):
        with pytest.raises(ConfigurationError):
            domain_ops_for("octagon")

    def test_interval_ops_consolidate_expands(self):
        ops = domain_ops_for("box")
        box = Interval([-1.0], [1.0])
        expanded = ops.consolidate(box, None, 0.1, 0.05)
        assert expanded.width[0] == pytest.approx(2.0 * 1.1 + 0.1)
        assert ops.contains(expanded, box)

    def test_zonotope_ops_consolidate_stays_plain(self):
        """Zonotope consolidation lifts through CH-Zonotope space but hands
        back a plain (type-stable) Zonotope, so the pipeline's transformers
        keep plain-zonotope semantics (fresh ReLU errors become generator
        columns, and Minkowski sums with Zonotope injections stay legal)."""
        ops = domain_ops_for("zonotope")
        z = Zonotope(np.zeros(2), np.array([[1.0, 0.5], [0.0, 1.0]]))
        proper = ops.consolidate(z, None, 0.0, 0.0)
        assert isinstance(proper, Zonotope)
        assert not isinstance(proper, CHZonotope)
        # The consolidated element is a proper parallelotope containing z.
        assert proper.num_generators == proper.dim
        assert ops.contains(proper, z)

    def test_zonotope_pipeline_step_after_consolidation(self):
        """Regression: a consolidated zonotope state must still compose
        with a plain-Zonotope input injection (affine + Minkowski sum) —
        the exact shape of one abstract solver step."""
        ops = domain_ops_for("zonotope")
        state = ops.consolidate(Zonotope(np.zeros(2), np.eye(2)), None, 0.0, 0.0)
        injection = Zonotope(np.ones(2), 0.1 * np.eye(2))
        stepped = state.affine(0.5 * np.eye(2)).sum(injection).relu()
        assert isinstance(stepped, Zonotope)


class TestEngine:
    def _engine(self, domain="box", **kwargs):
        settings = ContractionSettings(
            max_iterations=kwargs.pop("max_iterations", 100),
            consolidate_every=kwargs.pop("consolidate_every", 2),
            basis_recompute_every=kwargs.pop("basis_recompute_every", 2),
            history_size=kwargs.pop("history_size", 5),
            abort_width=kwargs.pop("abort_width", 1e6),
        )
        expansion = ExpansionSchedule("const", w_mul=1e-3, w_add=1e-3)
        return ContractionEngine(settings, domain_ops_for(domain), expansion)

    def test_contraction_detected_for_contractive_map_box(self):
        engine = self._engine("box")
        result = engine.run(affine_contraction_step(), Interval.from_center_radius([0.0, 0.0], 0.5))
        assert result.contained
        assert not result.diverged
        # The abstraction must contain the true fixpoint 2.0 in each dimension.
        assert result.state.contains_point(np.array([2.0, 2.0]))

    def test_contraction_detected_for_chzonotope(self):
        engine = self._engine("chzonotope")
        initial = CHZonotope.from_center_radius([0.0, 0.0], 0.25)
        result = engine.run(affine_contraction_step(0.4, 0.6), initial)
        assert result.contained
        assert result.state.contains_point(np.array([1.0, 1.0]))

    def test_divergence_detected(self):
        engine = self._engine("box", abort_width=100.0)
        result = engine.run(expanding_step, Interval.from_center_radius([0.0], 1.0))
        assert result.diverged
        assert not result.contained

    def test_budget_exhaustion_without_contraction(self):
        # A rotation neither contracts nor diverges: the engine must stop at
        # the iteration budget and report no containment.
        angle = 0.3
        rotation = np.array([[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]])

        def rotate(element):
            return element.affine(rotation)

        engine = self._engine("box", max_iterations=20)
        result = engine.run(rotate, Interval.from_center_radius([1.0, 0.0], 0.1))
        assert not result.contained
        assert result.iterations == 20

    def test_width_trace_recorded(self):
        engine = self._engine("box")
        result = engine.run(affine_contraction_step(), Interval.from_center_radius([0.0], 1.0))
        assert len(result.width_trace) == result.iterations
        assert result.consolidations >= 1

    def test_soundness_of_contained_state_via_simulation(self, rng):
        """Concrete fixpoints of sampled affine maps lie inside the contained state."""
        engine = self._engine("chzonotope", consolidate_every=1, basis_recompute_every=1)
        factor, offset = 0.6, 0.8
        initial = CHZonotope.from_center_radius([0.0, 0.0], 0.3)
        result = engine.run(affine_contraction_step(factor, offset), initial)
        assert result.contained
        fixpoint = offset / (1 - factor) * np.ones(2)
        assert result.state.contains_point(fixpoint, tol=1e-7)
