"""Unit tests for the Craft verifier core (Algorithm 1) on synthetic problems."""

import numpy as np
import pytest

from repro.core.config import ContractionSettings, CraftConfig
from repro.core.craft import CraftVerifier, FixpointProblem
from repro.core.results import PostconditionCheck, VerificationOutcome
from repro.domains.chzonotope import CHZonotope
from repro.exceptions import VerificationError


def _affine_problem(factor=0.5, offset=1.0, radius=0.3, threshold=1.5, diverge=False):
    """A synthetic fixpoint problem: x -> factor*x + offset on a 2-d state.

    The unique fixpoint is ``offset / (1 - factor)`` per dimension; the
    postcondition asks whether every fixpoint coordinate exceeds ``threshold``.
    """
    dim = 2
    fixpoint = offset / (1.0 - factor)
    rate = 1.5 if diverge else factor

    def step(element):
        return element.affine(rate * np.eye(dim), offset * np.ones(dim))

    def factory(solver, alpha, slope_delta):
        del solver, alpha, slope_delta
        return step

    def postcondition(element):
        lower, _ = element.concretize_bounds()
        margin = float(lower.min() - threshold)
        return PostconditionCheck(holds=margin > 0, margin=margin, lower_bounds=lower)

    initial = CHZonotope.from_center_radius([fixpoint, fixpoint], radius)
    return FixpointProblem(
        input_element=initial,
        initial_state=initial,
        contraction_step=step,
        tightening_step_factory=factory,
        extract_output=lambda element: element,
        postcondition=postcondition,
        description="synthetic affine fixpoint",
    )


def _config(**kwargs):
    defaults = dict(
        slope_optimization="none",
        contraction=ContractionSettings(max_iterations=100, consolidate_every=1, basis_recompute_every=1),
    )
    defaults.update(kwargs)
    return CraftConfig(**defaults)


class TestCraftVerifier:
    def test_verifies_true_property(self):
        verifier = CraftVerifier(_config())
        result = verifier.solve(_affine_problem(threshold=1.5))
        assert result.outcome is VerificationOutcome.VERIFIED
        assert result.contained and result.certified
        assert result.margin > 0

    def test_unknown_for_false_property(self):
        # fixpoint is exactly 2.0; requiring > 2.5 cannot be certified.
        verifier = CraftVerifier(_config())
        result = verifier.solve(_affine_problem(threshold=2.5))
        assert result.outcome is VerificationOutcome.UNKNOWN
        assert result.contained and not result.certified
        assert result.margin < 0

    def test_divergence_reported(self):
        verifier = CraftVerifier(_config(contraction=ContractionSettings(max_iterations=50, abort_width=1e3)))
        result = verifier.solve(_affine_problem(diverge=True))
        assert result.outcome in (VerificationOutcome.DIVERGED, VerificationOutcome.NO_CONTAINMENT)
        assert not result.certified

    def test_missing_postcondition_rejected(self):
        problem = _affine_problem()
        problem.postcondition = None
        with pytest.raises(VerificationError):
            CraftVerifier(_config()).solve(problem)

    def test_compute_fixpoint_set_contains_true_fixpoint(self):
        verifier = CraftVerifier(_config())
        abstraction = verifier.compute_fixpoint_set(_affine_problem(), tighten_iterations=10)
        assert abstraction.contained
        assert abstraction.element.contains_point(np.array([2.0, 2.0]), tol=1e-7)
        assert abstraction.iterations_phase2 == 10

    def test_phase_two_improves_margin(self):
        verifier = CraftVerifier(_config())
        problem = _affine_problem(threshold=1.9)
        contraction = verifier.find_fixpoint_abstraction(problem)
        loose_margin = problem.postcondition(contraction.state).margin
        result = verifier.solve(problem)
        assert result.margin >= loose_margin

    def test_result_summary_format(self):
        result = CraftVerifier(_config()).solve(_affine_problem())
        text = result.summary()
        assert "verified" in text
        assert "margin" in text

    def test_candidate_parameters_respect_solver_choice(self):
        pr_config = _config(solver2="pr", alpha1=0.07)
        assert CraftVerifier(pr_config)._candidate_parameters() == [("pr", 0.07)]
        fixed_fb = _config(solver2="fb", alpha2=0.3)
        assert CraftVerifier(fixed_fb)._candidate_parameters() == [("fb", 0.3)]
        searched = _config(solver2="fb", alpha2=None)
        assert len(CraftVerifier(searched)._candidate_parameters()) == len(searched.alpha2_grid)

    def test_slope_deltas_by_mode(self):
        assert CraftVerifier(_config())._slope_deltas() == ()
        assert len(CraftVerifier(_config(slope_optimization="reduced"))._slope_deltas()) == 4
        assert len(CraftVerifier(_config(slope_optimization="reference"))._slope_deltas()) == 8
