"""Iteration-accounting regressions for the acceleration proposer.

The tentpole's ledger: acceleration must *pay for itself in iterations*
on a pinned deterministic corpus without moving a single verdict, the
measured error-term peaks must stay inside the analytic working-set bound
(trial states included), cached accelerated verdicts must replay without
re-iterating, and every accounting surface — ``StageStats`` rows,
``RobustnessReport.as_row`` and the cache signature — must carry the new
counters.
"""

import tempfile

import numpy as np
import pytest

from repro.core.config import (
    AccelerationConfig,
    ContractionSettings,
    CraftConfig,
)
from repro.engine import BatchedCraft
from repro.engine.cache import _config_signature
from repro.engine.working_set import max_error_terms
from repro.experiments.model_zoo import get_model

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _corpus():
    """Pinned deterministic corpus where the proposer demonstrably fires."""
    for name, epsilon, count in [("HCAS-FCx100", 0.3, 4), ("FCx40", 0.1, 4)]:
        model, data = get_model(name, "smoke")
        xs = data.x_test[:count]
        labels = data.y_test[:count].astype(int)
        yield name, model, xs, labels, epsilon


def _config(enabled: bool) -> CraftConfig:
    return CraftConfig(
        domain="chzonotope",
        slope_optimization="none",
        acceleration=AccelerationConfig(enabled=enabled),
    )


class TestIterationAccounting:
    def test_accelerated_iterations_never_exceed_plain(self):
        """Per-sample phase-one iterations with the proposer on are bounded
        by the plain run's, verdicts are identical, and the corpus is not
        vacuous: at least one proposal is accepted on every model."""
        for name, model, xs, labels, epsilon in _corpus():
            plain = BatchedCraft(model, _config(False)).certify(xs, labels, epsilon)
            fast = BatchedCraft(model, _config(True)).certify(xs, labels, epsilon)
            accepted = 0
            for off, on in zip(plain, fast):
                assert off.outcome == on.outcome, name
                assert off.contained == on.contained, name
                assert off.certified == on.certified, name
                # Accepted proposals leave the batch *before* the plain
                # step of their consolidation event, so the accelerated
                # trajectory can only be a prefix-plus-shortcut.
                assert on.iterations_phase1 <= off.iterations_phase1, name
                assert off.accelerated is False and off.accel_proposals == 0, name
                accepted += int(on.accelerated)
            assert accepted > 0, f"{name}: proposer never accepted — vacuous corpus"
            total_off = sum(r.iterations_phase1 for r in plain)
            total_on = sum(r.iterations_phase1 for r in fast)
            assert total_on < total_off, f"{name}: no aggregate iteration saving"

    def test_unaccelerated_results_carry_zero_counters(self):
        """With the knob off the result encoding is the pre-acceleration
        one: flags false, counters zero (the bit-identical off-path)."""
        for _, model, xs, labels, epsilon in _corpus():
            for result in BatchedCraft(model, _config(False)).certify(xs, labels, epsilon):
                assert result.accelerated is False
                assert result.accel_proposals == 0

    def test_peak_error_terms_within_estimate_with_acceleration(self):
        """Trial states of rejected/accepted proposals count toward the
        measured peak, and the analytic working-set bound must still hold:
        dilation adds no generator columns, so a proposal's unrolled steps
        grow exactly like plain post-consolidation steps."""
        for seed in range(3):
            from repro.mondeq.model import MonDEQ

            rng = np.random.default_rng(200 + seed)
            model = MonDEQ.random(
                input_dim=3 + seed % 3, latent_dim=4 + seed % 4, output_dim=3,
                monotonicity=9.0 + seed, seed=seed,
            )
            xs = rng.uniform(-1.0, 1.0, size=(4, model.input_dim))
            labels = np.array([int(model.predict(x)) for x in xs])
            config = CraftConfig(
                domain="chzonotope",
                slope_optimization="none",
                contraction=ContractionSettings(max_iterations=60, history_size=4),
                tighten_max_iterations=12,
                tighten_patience=5,
                acceleration=AccelerationConfig(enabled=True),
            )
            results = BatchedCraft(model, config).certify(xs, labels, 0.03)
            measured = max((r.peak_error_terms or 0) for r in results)
            assert 0 < measured <= max_error_terms(model, config)


class TestCachedReplay:
    def test_accelerated_verdicts_replay_without_reiterating(self):
        """A warm sweep answers entirely from the cache — no batches run —
        and the replayed verdicts keep the acceleration provenance."""
        from repro.engine import BatchCertificationScheduler

        name, model, xs, labels, epsilon = next(iter(_corpus()))
        config = _config(True)
        with tempfile.TemporaryDirectory() as cache_dir:
            scheduler = BatchCertificationScheduler(
                model, config, batch_size=2, cache_dir=cache_dir
            )
            cold = scheduler.certify(xs, labels, epsilon)
            warm = scheduler.certify(xs, labels, epsilon)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(xs)
        assert warm.num_batches == 0
        accepted = 0
        for fresh, cached in zip(cold.results, warm.results):
            assert cached.cached and "[cached]" in cached.notes
            assert cached.accelerated == fresh.accelerated
            assert cached.accel_proposals == fresh.accel_proposals
            assert cached.iterations_phase1 == fresh.iterations_phase1
            accepted += int(fresh.accelerated)
        assert accepted > 0, "replay test never exercised an accelerated verdict"

    def test_acceleration_knobs_participate_in_cache_signature(self):
        """Any knob that can change a proposal decision invalidates cached
        verdicts by construction (the counters stored with a verdict
        depend on it, even though the verdicts provably agree)."""
        base = _config(False)
        signatures = {_config_signature(base)}
        for changed in [
            base.with_updates(acceleration=AccelerationConfig(enabled=True)),
            base.with_updates(
                acceleration=AccelerationConfig(enabled=True, margin=2.0)
            ),
            base.with_updates(
                acceleration=AccelerationConfig(enabled=True, max_proposals=1)
            ),
        ]:
            signatures.add(_config_signature(changed))
        assert len(signatures) == 4


class TestAccountingSurfaces:
    def test_stage_stats_fold_acceleration_counters(self):
        from repro.engine import EscalationLadder

        name, model, xs, labels, epsilon = next(iter(_corpus()))
        config = _config(True).with_updates(domains=("chzonotope",))
        ladder = EscalationLadder(model, config)
        results = ladder.certify(xs, labels, epsilon)
        rows = [stats.as_row() for stats in ladder.stage_stats]
        assert rows, "ladder produced no stage rows"
        row = rows[-1]
        assert row["phase1_iterations"] == sum(
            r.iterations_phase1 for r in results
        )
        assert row["accel_accepted"] == sum(int(r.accelerated) for r in results)
        assert row["accel_proposals"] == sum(r.accel_proposals for r in results)
        assert row["accel_accepted"] > 0
        assert row["accel_proposals"] >= row["accel_accepted"]

    def test_robustness_report_surfaces_counters(self):
        from repro.verify.robustness import RobustnessVerifier

        name, model, xs, labels, epsilon = next(iter(_corpus()))
        report = RobustnessVerifier(model, _config(True)).evaluate(
            xs, labels, epsilon, run_attack=False
        )
        row = report.as_row()
        assert row["phase1_iterations"] == report.phase1_iterations > 0
        assert row["accel_accepted"] == report.accel_accepted > 0
        assert row["accel_proposals"] == report.accel_proposals >= row["accel_accepted"]
