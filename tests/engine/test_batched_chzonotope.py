"""Unit tests for the batched CH-Zonotope: per-sample parity with the
sequential domain, property-based soundness, and stack bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import box_vectors, centers, generator_matrices, sample_points, weight_matrices

from repro.domains.chzonotope import CHZonotope
from repro.engine.batched_chzonotope import BatchedCHZonotope
from repro.exceptions import DimensionMismatchError, DomainError, ImproperZonotopeError


def _random_stack(rng, batch=5, dim=4, k=6, with_box=True):
    elements = [
        CHZonotope(
            rng.normal(size=dim),
            rng.normal(size=(dim, k)),
            rng.uniform(0, 0.5, size=dim) if with_box else None,
        )
        for _ in range(batch)
    ]
    return elements, BatchedCHZonotope.from_elements(elements)


def _assert_bounds_match(batched, elements, tol=1e-12):
    lower, upper = batched.concretize_bounds()
    for index, element in enumerate(elements):
        e_lower, e_upper = element.concretize_bounds()
        np.testing.assert_allclose(lower[index], e_lower, atol=tol)
        np.testing.assert_allclose(upper[index], e_upper, atol=tol)


class TestStackBookkeeping:
    def test_round_trip(self, rng):
        elements, batched = _random_stack(rng)
        assert batched.batch_size == len(elements)
        for index, element in enumerate(elements):
            restored = batched.element(index)
            np.testing.assert_allclose(restored.center, element.center)
            np.testing.assert_allclose(restored.box, element.box)
            np.testing.assert_allclose(restored.generators, element.generators)

    def test_from_elements_pads_ragged_generator_counts(self, rng):
        elements = [
            CHZonotope(rng.normal(size=3), rng.normal(size=(3, k)), None)
            for k in (0, 2, 5)
        ]
        batched = BatchedCHZonotope.from_elements(elements)
        assert batched.num_generators == 5
        _assert_bounds_match(batched, elements)

    def test_select_gathers_rows(self, rng):
        elements, batched = _random_stack(rng)
        selected = batched.select([3, 1])
        _assert_bounds_match(selected, [elements[3], elements[1]])

    def test_compress_drops_dead_columns(self, rng):
        elements, batched = _random_stack(rng, k=3)
        padded = BatchedCHZonotope(
            batched.center,
            np.concatenate([batched.generators, np.zeros((5, 4, 2))], axis=2),
            batched.box,
        )
        compressed = padded.compress()
        assert compressed.num_generators == 3
        _assert_bounds_match(compressed, elements)

    def test_dimension_mismatch_rejected(self, rng):
        elements, batched = _random_stack(rng)
        other = BatchedCHZonotope.from_points(rng.normal(size=(4, 4)))
        with pytest.raises(DimensionMismatchError):
            batched.sum(other)
        with pytest.raises(DomainError):
            BatchedCHZonotope(np.zeros((2, 3)), box=-np.ones((2, 3)))


class TestTransformerParity:
    """Sample ``i`` of every batched transformer equals the sequential one."""

    def test_affine_shared_weight(self, rng):
        elements, batched = _random_stack(rng)
        weight = rng.normal(size=(3, 4))
        bias = rng.normal(size=3)
        _assert_bounds_match(
            batched.affine(weight, bias),
            [element.affine(weight, bias) for element in elements],
        )

    def test_affine_per_sample_weights(self, rng):
        elements, batched = _random_stack(rng)
        weights = rng.normal(size=(5, 2, 4))
        _assert_bounds_match(
            batched.affine(weights),
            [element.affine(weights[i]) for i, element in enumerate(elements)],
        )

    @pytest.mark.parametrize("box_new_errors", [True, False])
    def test_relu(self, rng, box_new_errors):
        elements, batched = _random_stack(rng)
        _assert_bounds_match(
            batched.relu(box_new_errors=box_new_errors),
            [element.relu(box_new_errors=box_new_errors) for element in elements],
        )

    def test_relu_pass_through(self, rng):
        elements, batched = _random_stack(rng)
        mask = np.array([True, False, True, False])
        _assert_bounds_match(
            batched.relu(pass_through=mask),
            [element.relu(pass_through=mask) for element in elements],
        )

    def test_sum(self, rng):
        elements, batched = _random_stack(rng)
        others, batched_others = _random_stack(rng, k=2)
        _assert_bounds_match(
            batched.sum(batched_others),
            [element.sum(other) for element, other in zip(elements, others)],
        )

    def test_scale_and_translate(self, rng):
        elements, batched = _random_stack(rng)
        offset = rng.normal(size=4)
        _assert_bounds_match(
            batched.scale(-1.5).translate(offset),
            [element.scale(-1.5).translate(offset) for element in elements],
        )

    def test_consolidate_with_expansion(self, rng):
        elements, batched = _random_stack(rng)
        consolidated = batched.consolidate(w_mul=1e-3, w_add=1e-2)
        reference = [element.consolidate(w_mul=1e-3, w_add=1e-2) for element in elements]
        _assert_bounds_match(consolidated, reference, tol=1e-9)
        for index, element in enumerate(reference):
            assert consolidated.element(index).is_proper
            for point in sample_points(elements[index], count=8, seed=index):
                assert consolidated.element(index).contains_point(point, tol=1e-6)

    def test_containment_margin(self, rng):
        elements, batched = _random_stack(rng)
        outers = [element.consolidate(w_add=0.1) for element in elements]
        batched_outer = BatchedCHZonotope.from_elements(outers)
        inners = [element.scale(0.5) for element in elements]
        batched_inner = BatchedCHZonotope.from_elements(inners)
        margins = batched_outer.containment_margin(batched_inner)
        flags = batched_outer.contains(batched_inner)
        for index, (outer, inner) in enumerate(zip(outers, inners)):
            np.testing.assert_allclose(
                margins[index], outer.containment_margin(inner), atol=1e-9
            )
            assert bool(flags[index]) == outer.contains(inner)

    def test_containment_requires_proper_outer(self, rng):
        _, batched = _random_stack(rng, k=6)
        with pytest.raises(ImproperZonotopeError):
            batched.containment_margin(batched)

    def test_pca_basis_matches_sequential(self, rng):
        elements, batched = _random_stack(rng)
        bases = batched.pca_basis()
        for index, element in enumerate(elements):
            np.testing.assert_allclose(bases[index], element.pca_basis(), atol=1e-9)

    def test_pca_basis_identity_for_degenerate_rows(self):
        batched = BatchedCHZonotope.from_points(np.zeros((3, 4)))
        np.testing.assert_allclose(batched.pca_basis(), np.broadcast_to(np.eye(4), (3, 4, 4)))


class TestBatchedSoundness:
    """Property-based: batched transformers over-approximate on samples."""

    @settings(max_examples=25, deadline=None)
    @given(
        center=centers(),
        generators=generator_matrices(),
        box=box_vectors(),
        weight=weight_matrices(),
    )
    def test_affine_then_relu_sound(self, center, generators, box, weight):
        element = CHZonotope(center, generators, box)
        batched = BatchedCHZonotope.from_elements([element, element.scale(0.5)])
        image = batched.affine(weight).relu()
        for index, source in enumerate([element, element.scale(0.5)]):
            restored = image.element(index)
            for point in sample_points(source, count=10):
                assert restored.contains_point(np.maximum(weight @ point, 0.0), tol=1e-6)

    def test_samples_lie_within_bounds(self, rng):
        _, batched = _random_stack(rng)
        lower, upper = batched.concretize_bounds()
        points = batched.sample(50, rng)
        assert np.all(points >= lower[:, None, :] - 1e-9)
        assert np.all(points <= upper[:, None, :] + 1e-9)
