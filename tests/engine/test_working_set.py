"""Cache-aware batch sizing and phase-two consolidation coverage.

Unit-tests the working-set estimator against known model shapes — the
small-input HCAS regime where batching wins and the input-dim-64 FC regime
where a 64-wide stack spills the last-level cache — and pins that periodic
phase-two consolidation (``tighten_consolidate_every``) keeps the
error-term count bounded across ≥50 tightening steps while the abstraction
stays sound (sampled concrete fixpoints remain inside it).
"""

import numpy as np
import pytest

from repro.core.config import CraftConfig
from repro.engine.working_set import (
    DEFAULT_LLC_BYTES,
    MAX_AUTO_BATCH,
    MIN_AUTO_BATCH,
    auto_batch_size,
    detect_llc_bytes,
    error_growth_per_step,
    max_error_terms,
    phase2_working_set_bytes,
    state_dim,
)
from repro.mondeq.model import MonDEQ
from repro.mondeq.solvers import solve_fixpoint
from repro.verify.robustness import fixpoint_set_abstraction

# Structural stand-ins for the two regimes of ROADMAP's measurements (at
# the smoke scale those measurements used): the HCAS FCx100 monDEQ (3
# inputs, latent 6) and an MNIST-like FCx40 (8x8 images, latent 10).  The
# wide *input* is what dominates the error-term growth and flips the
# batching economics.
HCAS_LIKE = dict(input_dim=3, latent_dim=6, output_dim=5)
WIDE_INPUT = dict(input_dim=64, latent_dim=10, output_dim=5)


def _model(**shape):
    return MonDEQ.random(monotonicity=8.0, seed=1, **shape)


class TestWorkingSetEstimator:
    def test_state_dim_tracks_solver_layout(self):
        model = _model(**HCAS_LIKE)
        assert state_dim(model, CraftConfig()) == 2 * 6  # PR carries aux block
        assert state_dim(model, CraftConfig(solver1="fb", alpha1=0.04)) == 6

    def test_growth_rate_matches_roadmap_model(self):
        """Error terms grow by ~(input_dim + state_dim) per tightening step."""
        config = CraftConfig()
        assert error_growth_per_step(_model(**HCAS_LIKE), config) == 12 + 3
        assert error_growth_per_step(_model(**WIDE_INPUT), config) == 20 + 64

    def test_wide_input_model_has_much_larger_working_set(self):
        config = CraftConfig()
        hcas = phase2_working_set_bytes(_model(**HCAS_LIKE), config, batch_size=64)
        wide = phase2_working_set_bytes(_model(**WIDE_INPUT), config, batch_size=64)
        # Per ROADMAP, the input-dim-64 net goes DRAM-bound at batch 64
        # while HCAS does not: the estimator must reproduce that ordering
        # (per-step growth 84 vs 51 over a 150-step horizon, but the wide
        # model's k is dominated by input_dim).
        assert wide > hcas
        assert wide > DEFAULT_LLC_BYTES  # batch 64 spills a 32 MiB LLC

    def test_consolidation_bounds_the_estimate(self):
        model = _model(**WIDE_INPUT)
        free = CraftConfig()
        bounded = CraftConfig(tighten_consolidate_every=5)
        assert max_error_terms(model, bounded) < max_error_terms(model, free)
        assert phase2_working_set_bytes(model, bounded, 64) < phase2_working_set_bytes(
            model, free, 64
        )

    def test_auto_batch_prefers_smaller_batches_for_wide_inputs(self):
        config = CraftConfig()
        budget = 32 * 2**20
        hcas = auto_batch_size(_model(**HCAS_LIKE), config, budget_bytes=budget)
        wide = auto_batch_size(_model(**WIDE_INPUT), config, budget_bytes=budget)
        assert hcas > wide
        # The wide-input model must be pushed well below the fixed batch 64
        # that ROADMAP measured collapsing to ~1x.
        assert wide < 32

    def test_auto_batch_respects_budget_monotonically(self):
        model = _model(**WIDE_INPUT)
        config = CraftConfig()
        sizes = [
            auto_batch_size(model, config, budget_bytes=budget)
            for budget in (2**20, 2**24, 2**28, 2**32)
        ]
        assert sizes == sorted(sizes)
        assert all(MIN_AUTO_BATCH <= size <= MAX_AUTO_BATCH for size in sizes)

    def test_explicit_overrides_win(self):
        model = _model(**WIDE_INPUT)
        assert auto_batch_size(model, CraftConfig(engine_batch_size=7)) == 7
        pinned = auto_batch_size(model, CraftConfig(cache_budget_bytes=2**20))
        assert pinned == auto_batch_size(model, CraftConfig(), budget_bytes=2**20)

    def test_stage_layout_clamps_the_estimate(self):
        """Per-stage sizing: the Box stage has no generator stack, the
        parallelotope stage has a constant-order one, and the zonotope
        family grows per step — a ladder must not shrink its cheap stages
        to the CH-Zonotope batch size."""
        model = _model(**WIDE_INPUT)
        ladder = CraftConfig(domains=("box", "zonotope", "parallelotope", "chzonotope"))
        assert max_error_terms(model, ladder, domain="box") == 1
        assert (
            max_error_terms(model, ladder, domain="parallelotope")
            < max_error_terms(model, ladder, domain="zonotope")
        )
        # Default (no override) sizes for the final, most precise stage.
        assert max_error_terms(model, ladder) == max_error_terms(
            model, ladder, domain="chzonotope"
        )
        budget = 32 * 2**20
        box = auto_batch_size(model, ladder, budget_bytes=budget, domain="box")
        chz = auto_batch_size(model, ladder, budget_bytes=budget, domain="chzonotope")
        assert box == MAX_AUTO_BATCH
        assert box > chz

    def test_stage_batch_sizes_cover_the_ladder(self):
        from repro.engine.working_set import stage_batch_sizes

        model = _model(**WIDE_INPUT)
        ladder = CraftConfig(domains=("box", "zonotope", "chzonotope"))
        sizes = stage_batch_sizes(model, ladder, budget_bytes=32 * 2**20)
        assert set(sizes) == set(ladder.domains)
        assert sizes["box"] >= sizes["zonotope"] >= sizes["chzonotope"]
        # An explicit engine_batch_size pins every stage.
        pinned = stage_batch_sizes(
            model, ladder.with_updates(engine_batch_size=9), budget_bytes=32 * 2**20
        )
        assert set(pinned.values()) == {9}

    def test_llc_detection_has_a_floor(self, monkeypatch):
        assert detect_llc_bytes() > 0
        # Without sysfs (macOS, masked /sys) the default must come through.
        import repro.engine.working_set as ws

        monkeypatch.setattr(ws.glob, "glob", lambda pattern: [])
        assert detect_llc_bytes(default=123) == 123

    def test_working_set_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            phase2_working_set_bytes(_model(**HCAS_LIKE), CraftConfig(), 0)


class TestPhase2Consolidation:
    @pytest.fixture(scope="class")
    def sample(self, trained_mondeq, toy_data):
        xs, ys = toy_data
        for x, y in zip(xs[120:], ys[120:]):
            if trained_mondeq.predict(x) == int(y):
                return x
        pytest.skip("no correctly classified sample")

    def test_error_terms_bounded_across_50_steps(self, trained_mondeq, sample):
        """≥50 tightening steps: unbounded growth without consolidation,
        a cadence-sized bound with it."""
        steps = 55
        cadence = 5
        free = CraftConfig(slope_optimization="none")
        bounded = free.with_updates(tighten_consolidate_every=cadence)

        free_abs, _ = fixpoint_set_abstraction(
            trained_mondeq, sample, 0.05, free, tighten_iterations=steps
        )
        bounded_abs, _ = fixpoint_set_abstraction(
            trained_mondeq, sample, 0.05, bounded, tighten_iterations=steps
        )
        assert free_abs.contained and bounded_abs.contained

        model_growth = error_growth_per_step(trained_mondeq, bounded)
        n = state_dim(trained_mondeq, bounded)
        # Between consolidations at most `cadence` steps accumulate fresh
        # columns on top of the n square consolidated generators.
        bound = n + (cadence + 1) * model_growth
        assert bounded_abs.element.num_generators <= bound
        assert free_abs.element.num_generators > bound
        assert free_abs.element.num_generators > 2 * bounded_abs.element.num_generators

    def test_consolidated_abstraction_stays_sound(self, trained_mondeq, sample):
        """Concrete fixpoints of perturbed inputs stay inside the
        consolidated abstraction (the soundness property the suite's
        domain tests pin, checked end-to-end with consolidation on)."""
        config = CraftConfig(slope_optimization="none", tighten_consolidate_every=5)
        abstraction, extract_z = fixpoint_set_abstraction(
            trained_mondeq, sample, 0.05, config, tighten_iterations=52
        )
        assert abstraction.contained
        z_element = extract_z(abstraction.element)
        lower, upper = z_element.concretize_bounds()

        rng = np.random.default_rng(0)
        for _ in range(12):
            delta = rng.uniform(-0.05, 0.05, size=sample.shape)
            x = np.clip(sample + delta, 0.0, 1.0)
            z = solve_fixpoint(trained_mondeq, x, method="pr", tol=1e-11).z
            assert np.all(z >= lower - 1e-7)
            assert np.all(z <= upper + 1e-7)

    def test_consolidation_cadence_validation(self):
        with pytest.raises(Exception):
            CraftConfig(tighten_consolidate_every=-1)


class TestEstimateCalibration:
    """The analytic peak-error-term estimate vs the measured peaks the
    engines now record (``VerificationResult.peak_error_terms``) — the
    ROADMAP "calibrate the working-set estimate" follow-on."""

    def test_stage_error_term_estimates_cover_the_ladder(self):
        from repro.engine.working_set import stage_error_term_estimates

        model = _model(**WIDE_INPUT)
        ladder = CraftConfig(domains=("box", "zonotope", "chzonotope"))
        estimates = stage_error_term_estimates(model, ladder)
        assert set(estimates) == set(ladder.domains)
        assert estimates["box"] == 1
        assert estimates["zonotope"] == max_error_terms(model, ladder, domain="zonotope")

    def test_phase_one_cadence_raises_a_too_tight_phase_two_horizon(self):
        """A per-step phase-two cadence must not shrink the estimate below
        what phase one's consolidate-every-3 iterates actually stream."""
        model = _model(**WIDE_INPUT)
        per_step = CraftConfig(tighten_consolidate_every=1)
        assert max_error_terms(model, per_step) == max_error_terms(
            model, CraftConfig(tighten_consolidate_every=3)
        )

    @pytest.mark.parametrize("domain", ["chzonotope", "zonotope"])
    @pytest.mark.parametrize("cadence", [3, 5])
    def test_estimate_within_2x_of_measured_on_fuzzed_models(self, domain, cadence):
        """Across the fuzz-style model corpus the analytic estimate must be
        an upper bound on the measured peak and stay within 2x of it —
        looser would mis-size batches, tighter would risk unsoundness of
        the LLC fit."""
        from repro.core.config import ContractionSettings
        from repro.engine import BatchedCraft
        from repro.mondeq.model import MonDEQ

        for seed in range(3):
            rng = np.random.default_rng(100 + seed)
            model = MonDEQ.random(
                input_dim=3 + seed % 3, latent_dim=4 + seed % 4, output_dim=3,
                monotonicity=9.0 + seed, seed=seed,
            )
            xs = rng.uniform(-1.0, 1.0, size=(4, model.input_dim))
            labels = np.array([int(model.predict(x)) for x in xs])
            config = CraftConfig(
                domain=domain,
                slope_optimization="none",
                contraction=ContractionSettings(max_iterations=60, history_size=4),
                tighten_max_iterations=12,
                tighten_patience=5,
                tighten_consolidate_every=cadence,
            )
            results = BatchedCraft(model, config).certify(xs, labels, 0.03)
            measured = max((r.peak_error_terms or 0) for r in results)
            estimate = max_error_terms(model, config)
            assert measured > 0, "corpus sweep never grew an error term"
            assert measured <= estimate <= 2 * measured, (
                f"seed {seed}: estimate {estimate} vs measured {measured}"
            )

    def test_report_surfaces_estimate_vs_measured(self, trained_mondeq, toy_data):
        from repro.verify.robustness import RobustnessVerifier

        xs, ys = toy_data
        report = RobustnessVerifier(
            trained_mondeq,
            CraftConfig(slope_optimization="none", tighten_consolidate_every=4),
        ).evaluate(xs[120:126], ys[120:126].astype(int), 0.05, run_attack=False)
        row = report.as_row()
        calibration = row["error_terms"]["chzonotope"]
        assert calibration["estimated"] >= calibration["measured"] > 0
