"""Unit tests for the domain-generic stacking layer (engine/batched_domains).

Three layers of coverage:

* **Transformer parity** — every stacked transformer of ``BatchedBox`` and
  ``BatchedZonotope`` must equal its sequential counterpart applied per
  sample (the engine parity contract, here at the granularity of single
  operations rather than whole verification runs).
* **Dispatch** — ``batched_domain_for`` resolves every repo domain and
  fails loudly (``ConfigurationError``) for unknown names.
* **Front-end behaviour** — the engine choice is logged exactly once per
  (engine, domain) pair, and multi-domain sweeps return identical verdicts
  across all three engines (`certify_local_robustness` smoke).
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.config import CraftConfig
from repro.domains.interval import Interval
from repro.domains.parallelotope import ParallelotopeZonotope
from repro.domains.zonotope import Zonotope
from repro.engine import (
    BatchedBox,
    BatchedCHZonotope,
    BatchedDomain,
    BatchedParallelotope,
    BatchedZonotope,
    batched_domain_for,
)
from repro.exceptions import ConfigurationError, DomainError
from strategies import box_vectors, centers, generator_matrices, weight_matrices

ATOL = 1e-12


def _boxes(count=4, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    lower = rng.uniform(-2.0, 1.0, size=(count, dim))
    return [Interval(lo, lo + rng.uniform(0.0, 2.0, size=dim)) for lo in lower]


def _zonotopes(count=4, dim=3, k=4, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Zonotope(
            rng.uniform(-2.0, 2.0, size=dim),
            rng.uniform(-1.0, 1.0, size=(dim, rng.integers(0, k + 1))),
        )
        for _ in range(count)
    ]


def _assert_bounds_match(stack, elements):
    __tracebackhide__ = True
    lower, upper = stack.concretize_bounds()
    for index, element in enumerate(elements):
        seq_lower, seq_upper = element.concretize_bounds()
        np.testing.assert_allclose(lower[index], seq_lower, atol=ATOL)
        np.testing.assert_allclose(upper[index], seq_upper, atol=ATOL)


class TestDispatch:
    def test_known_domains(self):
        assert batched_domain_for("chzonotope") is BatchedCHZonotope
        assert batched_domain_for("box") is BatchedBox
        assert batched_domain_for("zonotope") is BatchedZonotope
        assert batched_domain_for("parallelotope") is BatchedParallelotope

    def test_unknown_domain_raises(self):
        with pytest.raises(ConfigurationError, match="octagon"):
            batched_domain_for("octagon")

    def test_stacks_satisfy_protocol(self):
        for cls, elements in (
            (BatchedBox, _boxes()),
            (BatchedZonotope, _zonotopes()),
        ):
            stack = cls.from_elements(elements)
            assert isinstance(stack, BatchedDomain)
            for name in (
                "from_elements", "from_points", "element", "select", "affine",
                "relu", "sum", "relu_slopes", "consolidate", "contains",
                "pca_basis", "concretize_bounds",
            ):
                assert callable(getattr(cls, name)), name


class TestBatchedBoxParity:
    def test_roundtrip(self):
        elements = _boxes()
        stack = BatchedBox.from_elements(elements)
        assert stack.batch_size == len(elements)
        _assert_bounds_match(stack, elements)
        for index, element in enumerate(elements):
            extracted = stack.element(index)
            np.testing.assert_allclose(extracted.lower, element.lower, atol=ATOL)
            np.testing.assert_allclose(extracted.upper, element.upper, atol=ATOL)

    @settings(max_examples=25, deadline=None)
    @given(weight=weight_matrices(rows=2), bias=centers(dim=2))
    def test_affine_matches_sequential(self, weight, bias):
        elements = _boxes()
        stack = BatchedBox.from_elements(elements).affine(weight, bias)
        _assert_bounds_match(stack, [e.affine(weight, bias) for e in elements])

    def test_per_sample_affine(self):
        elements = _boxes()
        rng = np.random.default_rng(1)
        weights = rng.uniform(-2.0, 2.0, size=(len(elements), 2, 3))
        stack = BatchedBox.from_elements(elements).affine(weights)
        _assert_bounds_match(stack, [e.affine(w) for e, w in zip(elements, weights)])

    def test_relu_matches_sequential_and_ignores_slopes(self):
        elements = _boxes(seed=3)
        pass_through = np.array([False, True, False])
        stack = BatchedBox.from_elements(elements)
        batched = stack.relu(slopes=np.full(3, 0.5), pass_through=pass_through)
        _assert_bounds_match(batched, [e.relu(pass_through=pass_through) for e in elements])

    def test_sum_matches_sequential(self):
        left, right = _boxes(seed=4), _boxes(seed=5)
        stack = BatchedBox.from_elements(left).sum(BatchedBox.from_elements(right))
        _assert_bounds_match(stack, [a.sum(b) for a, b in zip(left, right)])

    def test_consolidate_matches_domain_ops(self):
        from repro.core.contraction import domain_ops_for

        ops = domain_ops_for("box")
        elements = _boxes(seed=6)
        for w_mul, w_add in ((0.0, 0.0), (1e-3, 1e-2)):
            stack = BatchedBox.from_elements(elements).consolidate(None, w_mul, w_add)
            _assert_bounds_match(
                stack, [ops.consolidate(e, None, w_mul, w_add) for e in elements]
            )

    def test_contains_matches_subset_check(self):
        outer = _boxes(seed=7)
        inner = [
            Interval(e.lower + 0.3 * e.radius, e.upper - 0.3 * e.radius) for e in outer
        ]
        flags = BatchedBox.from_elements(outer).contains(BatchedBox.from_elements(inner))
        assert flags.shape == (len(outer),)
        for index, (o, i) in enumerate(zip(outer, inner)):
            assert flags[index] == i.is_subset_of(o)
        # Shift one inner element outside to exercise the negative branch.
        shifted = list(inner)
        shifted[0] = shifted[0].translate(10.0 * np.ones(3))
        flags = BatchedBox.from_elements(outer).contains(BatchedBox.from_elements(shifted))
        assert not flags[0] and flags[1:].all()

    def test_pca_basis_is_none(self):
        assert BatchedBox.from_elements(_boxes()).pca_basis() is None

    def test_invalid_bounds_rejected(self):
        with pytest.raises(DomainError):
            BatchedBox(np.ones((2, 3)), np.zeros((2, 3)))


class TestBatchedZonotopeParity:
    def test_roundtrip_and_zero_box(self):
        elements = _zonotopes()
        stack = BatchedZonotope.from_elements(elements)
        _assert_bounds_match(stack, elements)
        assert not np.any(stack.box > 0)
        for index, element in enumerate(elements):
            extracted = stack.element(index)
            assert isinstance(extracted, Zonotope)
            got_lower, got_upper = extracted.concretize_bounds()
            want_lower, want_upper = element.concretize_bounds()
            np.testing.assert_allclose(got_lower, want_lower, atol=ATOL)
            np.testing.assert_allclose(got_upper, want_upper, atol=ATOL)

    def test_box_component_rejected(self):
        with pytest.raises(DomainError):
            BatchedZonotope(np.zeros((2, 3)), np.zeros((2, 3, 1)), np.ones((2, 3)))

    @settings(max_examples=25, deadline=None)
    @given(weight=weight_matrices(rows=3), bias=centers())
    def test_affine_matches_sequential(self, weight, bias):
        elements = _zonotopes(seed=8)
        stack = BatchedZonotope.from_elements(elements).affine(weight, bias)
        assert isinstance(stack, BatchedZonotope)
        _assert_bounds_match(stack, [e.affine(weight, bias) for e in elements])

    @settings(max_examples=25, deadline=None)
    @given(center=centers(), generators=generator_matrices(), radius=box_vectors())
    def test_relu_fresh_errors_become_columns(self, center, generators, radius):
        """The zonotope ReLU must never populate the Box component — fresh
        error terms become generator columns, per-sample identical to
        ``Zonotope.relu`` (even when the driver asks for box errors)."""
        element = Zonotope(center, generators)
        stack = BatchedZonotope.from_elements([element, element.translate(radius)])
        batched = stack.relu(box_new_errors=True)
        assert isinstance(batched, BatchedZonotope)
        assert not np.any(batched.box > 0)
        _assert_bounds_match(batched, [element.relu(), element.translate(radius).relu()])

    def test_transformers_preserve_type(self):
        stack = BatchedZonotope.from_elements(_zonotopes(seed=9))
        for result in (
            stack.affine(np.eye(3)),
            stack.relu(),
            stack.sum(stack),
            stack.scale(0.5),
            stack.translate(np.ones(3)),
            stack.consolidate(None, 0.0, 0.0),
            stack.select(np.array([0, 1])),
            stack.compress(),
        ):
            assert isinstance(result, BatchedZonotope)
            assert not np.any(result.box > 0)

    def test_consolidate_and_contains_match_domain_ops(self):
        from repro.core.contraction import domain_ops_for

        ops = domain_ops_for("zonotope")
        elements = _zonotopes(seed=10)
        stack = BatchedZonotope.from_elements(elements)
        consolidated = stack.consolidate(None, 1e-3, 1e-2)
        sequential = [ops.consolidate(e, None, 1e-3, 1e-2) for e in elements]
        _assert_bounds_match(consolidated, sequential)
        flags = consolidated.contains(stack)
        for index, (outer, inner) in enumerate(zip(sequential, elements)):
            assert flags[index] == ops.contains(outer, inner)


class TestBatchedParallelotope:
    """Soundness of the order-bounded stack, via the shared hypothesis
    strategies — same over-approximation contract as the sequential domain
    property tests, here at the stack granularity."""

    def test_roundtrip_and_zero_box(self):
        elements = _zonotopes(seed=11)
        stack = BatchedParallelotope.from_elements(elements)
        _assert_bounds_match(stack, elements)
        assert not np.any(stack.box > 0)

    @settings(max_examples=25, deadline=None)
    @given(center=centers(), generators=generator_matrices(count=6))
    def test_relu_reduces_order_and_encloses(self, center, generators):
        """The parallelotope ReLU is the zonotope ReLU followed by an
        enclosing reduction: the result is square (``k == dim``) and
        contains the unreduced zonotope ReLU image per sample."""
        element = Zonotope(center, generators)
        stack = BatchedParallelotope.from_elements([element, element.scale(0.5)])
        reduced = stack.relu()
        assert isinstance(reduced, BatchedParallelotope)
        assert reduced.num_generators == reduced.dim
        unreduced = BatchedZonotope.from_elements([element, element.scale(0.5)]).relu()
        assert reduced.contains(unreduced, tol=1e-7).all()

    @settings(max_examples=25, deadline=None)
    @given(center=centers(), generators=generator_matrices(count=5))
    def test_relu_sound_on_sampled_points(self, center, generators):
        """Over-approximation contract: the concrete ReLU image of every
        sampled point stays inside the reduced stack's concretisation."""
        element = Zonotope(center, generators)
        stack = BatchedParallelotope.from_elements([element])
        points = stack.sample(32, np.random.default_rng(0))[0]
        lower, upper = stack.relu().concretize_bounds()
        images = np.maximum(points, 0.0)
        assert np.all(images >= lower[0] - 1e-7)
        assert np.all(images <= upper[0] + 1e-7)

    def test_transformers_preserve_type(self):
        stack = BatchedParallelotope.from_elements(_zonotopes(seed=12))
        for result in (
            stack.affine(np.eye(3)),
            stack.relu(),
            stack.sum(stack),
            stack.consolidate(None, 0.0, 0.0),
            stack.select(np.array([0, 1])),
        ):
            assert isinstance(result, BatchedParallelotope)
            assert not np.any(result.box > 0)

    def test_single_sample_matches_sequential_element(self):
        """A one-sample stack has no batch padding, so the reduction must
        match the sequential ``ParallelotopeZonotope`` bit-for-bit."""
        for seed in range(3):
            rng = np.random.default_rng(seed)
            center = rng.normal(size=3)
            generators = rng.normal(size=(3, 5))
            sequential = ParallelotopeZonotope(center, generators).relu()
            batched = BatchedParallelotope.from_elements(
                [Zonotope(center, generators)]
            ).relu()
            seq_lower, seq_upper = sequential.concretize_bounds()
            lower, upper = batched.concretize_bounds()
            np.testing.assert_allclose(lower[0], seq_lower, atol=ATOL)
            np.testing.assert_allclose(upper[0], seq_upper, atol=ATOL)

    def test_sequential_pipeline_element_is_type_stable(self):
        element = ParallelotopeZonotope(np.zeros(3), np.eye(3))
        for result in (
            element.affine(np.eye(3)),
            element.sum(element),
            element.relu(),
            element.scale(0.5),
            element.translate(np.ones(3)),
        ):
            assert isinstance(result, ParallelotopeZonotope)
        assert element.relu().num_generators == element.dim


class TestFrontEndDispatch:
    def test_engine_choice_logged_once(self, trained_mondeq, toy_data, caplog):
        from repro.verify import robustness

        xs, ys = toy_data
        exs, eys = xs[120:122], ys[120:122].astype(int)
        config = CraftConfig(domain="box", slope_optimization="none")
        robustness._LOGGED_ENGINE_CHOICES.discard(("batched", "box"))
        with caplog.at_level(logging.INFO, logger="repro.verify.robustness"):
            robustness.certify_local_robustness(
                trained_mondeq, exs, eys, 0.01, config, engine="batched"
            )
            robustness.certify_local_robustness(
                trained_mondeq, exs, eys, 0.01, config, engine="batched"
            )
        records = [
            record
            for record in caplog.records
            if "dispatching to engine='batched' for domain='box'" in record.getMessage()
        ]
        assert len(records) == 1

    @pytest.mark.tier1
    def test_hcas_scale_multi_domain_parity(self):
        """Blocking HCAS-smoke parity: the bench job that also asserts this
        is continue-on-error (timing noise must not block merges), but
        verdict parity is correctness, so it is re-checked here in tier 1
        at the same model scale."""
        from repro.experiments.model_zoo import get_model
        from repro.verify.robustness import certify_local_robustness

        model, dataset = get_model("HCAS-FCx100", "smoke")
        xs, ys = dataset.x_test[:6], dataset.y_test[:6].astype(int)
        for domain in ("chzonotope", "box", "zonotope"):
            config = CraftConfig(domain=domain, slope_optimization="none")
            sequential = certify_local_robustness(
                model, xs, ys, 0.03, config, engine="sequential"
            )
            batched = certify_local_robustness(model, xs, ys, 0.03, config, engine="batched")
            for seq, bat in zip(sequential, batched):
                assert seq.outcome == bat.outcome
                assert seq.contained == bat.contained
                assert seq.certified == bat.certified
                if np.isfinite(seq.margin):
                    assert seq.margin == pytest.approx(bat.margin, abs=1e-9)

    @pytest.mark.parametrize("domain", ["box", "zonotope"])
    def test_sharded_engine_covers_domain(self, trained_mondeq, toy_data, domain):
        """Box/Zonotope sweeps run through the sharded scheduler with
        verdicts identical to the batched engine."""
        from repro.engine import ShardedScheduler
        from repro.verify.robustness import certify_local_robustness

        xs, ys = toy_data
        exs, eys = xs[120:126], ys[120:126].astype(int)
        config = CraftConfig(domain=domain, slope_optimization="none")
        batched = certify_local_robustness(
            trained_mondeq, exs, eys, 0.05, config, engine="batched"
        )
        with ShardedScheduler(
            trained_mondeq, config, num_workers=2, batch_size=2, start_method="inline"
        ) as scheduler:
            sharded = scheduler.certify(exs, eys, 0.05).results
        for bat, sha in zip(batched, sharded):
            assert bat.outcome == sha.outcome
            assert bat.certified == sha.certified
            if np.isfinite(bat.margin):
                assert bat.margin == pytest.approx(sha.margin, abs=1e-9)
