"""Unit tests for the batch scheduler and the on-disk fixpoint cache."""

import numpy as np
import pytest

from repro.core.config import CraftConfig
from repro.engine.results import EngineReport
from repro.engine.scheduler import BatchCertificationScheduler, FixpointCache, weights_hash
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def eval_set(toy_data):
    xs, ys = toy_data
    return xs[120:128], ys[120:128].astype(int)


@pytest.fixture(scope="module")
def config():
    return CraftConfig(slope_optimization="none")


class TestWeightsHash:
    def test_stable_across_copies(self, trained_mondeq):
        assert weights_hash(trained_mondeq) == weights_hash(trained_mondeq.copy())

    def test_sensitive_to_weight_changes(self, trained_mondeq):
        perturbed = trained_mondeq.copy()
        perturbed.u_weight[0, 0] += 1e-9
        assert weights_hash(trained_mondeq) != weights_hash(perturbed)


class TestFixpointCache:
    def test_key_depends_on_query_and_config(self, trained_mondeq, config):
        digest = weights_hash(trained_mondeq)
        center = np.zeros(trained_mondeq.input_dim)
        base = FixpointCache.query_key(digest, center, 0.05, 1, config, 0.0, 1.0)
        assert base == FixpointCache.query_key(digest, center, 0.05, 1, config, 0.0, 1.0)
        assert base != FixpointCache.query_key(digest, center, 0.06, 1, config, 0.0, 1.0)
        assert base != FixpointCache.query_key(digest, center + 1e-12, 0.05, 1, config, 0.0, 1.0)
        assert base != FixpointCache.query_key(digest, center, 0.05, 2, config, 0.0, 1.0)
        other_config = config.with_updates(alpha1=0.2)
        assert base != FixpointCache.query_key(digest, center, 0.05, 1, other_config, 0.0, 1.0)

    def test_missing_key_loads_none(self, tmp_path):
        cache = FixpointCache(str(tmp_path))
        assert cache.load("0" * 64) is None


class TestScheduler:
    def test_batch_size_validation(self, trained_mondeq, config):
        with pytest.raises(ConfigurationError):
            BatchCertificationScheduler(trained_mondeq, config, batch_size=0)

    def test_chunking_counts_batches(self, trained_mondeq, config, eval_set):
        xs, ys = eval_set
        scheduler = BatchCertificationScheduler(trained_mondeq, config, batch_size=3)
        report = scheduler.certify(xs, ys, 0.01)
        # Misclassified queries short-circuit in the shared prediction pass;
        # only the correctly classified residue is chunked into batches.
        queued = sum(
            trained_mondeq.predict(x) == y for x, y in zip(xs, ys.astype(int))
        )
        assert report.num_batches == -(-queued // 3)  # ceil(queued / 3)
        assert report.num_regions == len(xs)
        assert report.cache_hits == 0
        assert report.throughput > 0
        # Single-domain sweeps report a one-stage waterfall.
        assert [row["domain"] for row in report.stages] == [config.domain]
        assert report.stages[0]["attempted"] == queued

    def test_cache_round_trip(self, trained_mondeq, config, eval_set, tmp_path):
        xs, ys = eval_set
        cold = BatchCertificationScheduler(
            trained_mondeq, config, batch_size=8, cache_dir=str(tmp_path)
        )
        first = cold.certify(xs, ys, 0.01)
        assert first.cache_hits == 0

        warm = BatchCertificationScheduler(
            trained_mondeq, config, batch_size=8, cache_dir=str(tmp_path)
        )
        second = warm.certify(xs, ys, 0.01)
        assert second.cache_hits == len(xs)
        assert second.num_batches == 0
        for fresh, cached in zip(first.results, second.results):
            assert fresh.outcome == cached.outcome
            assert fresh.certified == cached.certified
            assert fresh.contained == cached.contained
            assert fresh.margin == pytest.approx(cached.margin, abs=1e-12) or (
                fresh.margin == -np.inf and cached.margin <= -1e300
            )
            assert "[cached]" in cached.notes

    def test_cache_misses_after_weight_update(self, trained_mondeq, config, eval_set, tmp_path):
        xs, ys = eval_set
        BatchCertificationScheduler(
            trained_mondeq, config, batch_size=8, cache_dir=str(tmp_path)
        ).certify(xs, ys, 0.01)
        perturbed = trained_mondeq.copy()
        perturbed.bias[0] += 1e-6
        report = BatchCertificationScheduler(
            perturbed, config, batch_size=8, cache_dir=str(tmp_path)
        ).certify(xs, ys, 0.01)
        assert report.cache_hits == 0

    def test_report_row(self, trained_mondeq, config, eval_set):
        xs, ys = eval_set
        scheduler = BatchCertificationScheduler(trained_mondeq, config, batch_size=8)
        row = scheduler.certify(xs, ys, 0.01).as_row()
        assert set(row) >= {"regions", "contained", "certified", "cache_hits", "batches", "time"}

    def test_empty_report(self):
        report = EngineReport()
        assert report.num_regions == 0
        assert report.throughput == 0.0
        assert np.isnan(report.mean_margin)
