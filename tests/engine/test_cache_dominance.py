"""Property battery for the dominance-aware quantised fixpoint cache.

The cache may now answer queries it was never literally asked — from a
certified superset region, from a cached falsifying point, or from a
quantised bucket entry — so its soundness contract is no longer "replay
what was stored" but "never serve a verdict the cacheless engine could
refute".  Hypothesis pins that contract directly against the cacheless
:class:`~repro.engine.craft.BatchedCraft` and against concrete
point-sampling oracles:

* a cached *certified* outer region must never answer ``VERIFIED`` for a
  contained query the cacheless engine falsifies — and every sampled
  point of a dominance-served query must actually classify as the target;
* the falsifying dual: a served ``MISCLASSIFIED`` must come with a
  concrete witness point inside the query region that the network really
  mislabels;
* quantised keys must never let two regions with differing cacheless
  verdicts answer each other — a bucket collision whose payload does not
  provably dominate the query falls through to a miss.

The deterministic classes below pin the supporting machinery: epsilon
quantisation directions, clipped-region containment, the LRU tier's
entry/byte eviction, the dominance index's incremental refresh, the
legacy-payload (pre-1.5.0) fall-through, and the scheduler-level
``cache_dominance_hits`` accounting.
"""

import json
import os
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import CacheConfig, ContractionSettings, CraftConfig
from repro.core.results import VerificationOutcome
from repro.engine import BatchCertificationScheduler, ShardedScheduler
from repro.engine.cache import (
    FixpointCache,
    RegionQuery,
    TieredVerdictCache,
    config_fingerprint,
    payload_region,
    payload_supports_dominance,
    quantize_epsilon,
    snap_center,
    weights_hash,
)
from repro.engine.cache_dominance import DominanceIndex
from repro.engine.cache_lru import LRUTier, payload_bytes
from repro.engine.craft import BatchedCraft
from repro.exceptions import ConfigurationError
from repro.verify.specs import ClassificationSpec, LinfBall

from strategies import FINITE, epsilons, mondeq_models

FUZZ = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Small budgets: the battery wants many examples, not deep runs.
FAST = CraftConfig(
    slope_optimization="none",
    contraction=ContractionSettings(max_iterations=50, history_size=4),
    tighten_max_iterations=10,
    tighten_patience=4,
)


def _unit_centers(dim):
    """Centres inside the [0, 1] clip box (keeps clipping non-degenerate)."""
    return arrays(np.float64, (dim,), elements=st.floats(0.05, 0.95, **FINITE))


def _sample_oracle(model, query, target, count=24, seed=0):
    """Concrete soundness oracle: every sampled point of the (clipped)
    query region must classify as ``target``."""
    lower, upper = query.bounds()
    rng = np.random.default_rng(seed)
    points = rng.uniform(lower, upper, size=(count, query.dim))
    return all(int(model.predict(point)) == target for point in points)


class TestDominanceSoundness:
    """The tentpole battery: dominance serves vs the cacheless engine."""

    @FUZZ
    @given(
        model=mondeq_models(),
        outer_epsilon=epsilons(),
        shrink=st.floats(0.2, 0.8, **FINITE),
        data=st.data(),
    )
    def test_certified_superset_serves_are_sound(
        self, model, outer_epsilon, shrink, data
    ):
        """A cached certified outer region answers a contained query
        VERIFIED — and that answer must survive both the point-sampling
        oracle and the cacheless engine's own verdict on the subquery."""
        center = data.draw(_unit_centers(model.input_dim))
        target = int(model.predict(center))
        outer = BatchedCraft(model, FAST).certify(
            center[None, :], np.array([target]), outer_epsilon
        )[0]

        inner_epsilon = outer_epsilon * shrink
        slack = (outer_epsilon - inner_epsilon) * 0.9
        offset = data.draw(
            arrays(
                np.float64, (model.input_dim,),
                elements=st.floats(-slack, slack, **FINITE),
            )
        )
        inner = RegionQuery(
            center=center + offset, epsilon=inner_epsilon, target=target
        )

        with tempfile.TemporaryDirectory() as directory:
            cache = TieredVerdictCache(directory, FAST, weights_hash(model))
            cache.admit(RegionQuery(center=center, epsilon=outer_epsilon,
                                    target=target), outer)
            served = cache.lookup(inner)

        if outer.certified:
            # Completeness: the index must find the superset certificate.
            assert served is not None
            assert served.certified
            assert served.cache_tier == "dominance"
            assert served.stage == outer.stage
            # Soundness oracle 1: concrete points of the subquery.
            assert _sample_oracle(model, inner, target)
            # Soundness oracle 2: the cacheless engine never falsifies a
            # query the cache marked VERIFIED.
            fresh = BatchedCraft(model, FAST).certify(
                inner.center[None, :], np.array([target]), inner_epsilon
            )[0]
            assert fresh.outcome != VerificationOutcome.MISCLASSIFIED
        else:
            # The centre classifies correctly, so the outer verdict is
            # UNKNOWN-family — which dominates nothing: the contained
            # query must miss, never replay an unresolved verdict.
            assert served is None

    @FUZZ
    @given(
        model=mondeq_models(),
        point_epsilon=st.sampled_from([1e-4, 1e-3]),
        query_epsilon=st.sampled_from([0.05, 0.15, 0.3]),
        data=st.data(),
    )
    def test_falsifying_point_refutes_containing_regions(
        self, model, point_epsilon, query_epsilon, data
    ):
        """The dual: a cached MISCLASSIFIED entry refutes every region
        containing its witness point — with the witness checkable."""
        center = data.draw(_unit_centers(model.input_dim))
        target = (int(model.predict(center)) + 1) % model.output_dim
        falsified = BatchedCraft(model, FAST).certify(
            center[None, :], np.array([target]), point_epsilon
        )[0]
        assert falsified.outcome == VerificationOutcome.MISCLASSIFIED

        slack = query_epsilon * 0.9
        offset = data.draw(
            arrays(
                np.float64, (model.input_dim,),
                elements=st.floats(-slack, slack, **FINITE),
            )
        )
        query = RegionQuery(
            center=center + offset, epsilon=query_epsilon, target=target
        )

        with tempfile.TemporaryDirectory() as directory:
            cache = TieredVerdictCache(directory, FAST, weights_hash(model))
            key = cache.admit(
                RegionQuery(center=center, epsilon=point_epsilon, target=target),
                falsified,
            )
            witness = np.asarray(
                cache.disk.load_payload(key)["center"], dtype=float
            )
            served = cache.lookup(query)

        assert served is not None
        assert served.outcome == VerificationOutcome.MISCLASSIFIED
        assert served.cache_tier == "dominance"
        # The witness really is inside the query region, and the network
        # really mislabels it — refutation by concrete counterexample.
        assert query.contains_point(witness)
        assert int(model.predict(witness)) != target

    @FUZZ
    @given(
        model=mondeq_models(),
        decimals=st.integers(1, 3),
        epsilon=epsilons(),
        data=st.data(),
    )
    def test_quantized_collisions_never_serve_unsound_verdicts(
        self, model, decimals, epsilon, data
    ):
        """Two nearby regions sharing a quantised bucket: any served
        answer must be provably dominated by the stored entry's exact
        region, and must be consistent with the cacheless verdict of the
        colliding query."""
        center_a = data.draw(_unit_centers(model.input_dim))
        # A sub-grid jitter: both centres snap to the same bucket, but the
        # regions are distinct, so any serve is a genuine collision.
        grid = 10.0 ** (-decimals)
        jitter = data.draw(
            arrays(
                np.float64, (model.input_dim,),
                elements=st.floats(grid * 0.01, grid * 0.4, **FINITE),
            )
        )
        center_b = center_a + jitter
        target = int(model.predict(center_a))
        region_a = RegionQuery(center=center_a, epsilon=epsilon, target=target)
        region_b = RegionQuery(center=center_b, epsilon=epsilon, target=target)

        fresh_a = BatchedCraft(model, FAST).certify(
            center_a[None, :], np.array([target]), epsilon
        )[0]
        with tempfile.TemporaryDirectory() as directory:
            cache = TieredVerdictCache(
                directory, FAST, weights_hash(model),
                cache_config=CacheConfig(
                    key_mode="quantized", quantize_decimals=decimals
                ),
            )
            cache.admit(region_a, fresh_a)
            served = cache.lookup(region_b)

        if served is None:
            return  # collision fell through to a miss: always sound
        assert not region_a.same_region(region_b)
        if served.certified:
            # Only a provably dominating certificate may answer.
            assert fresh_a.certified
            assert region_a.contains(region_b)
            assert _sample_oracle(model, region_b, target)
        elif served.outcome == VerificationOutcome.MISCLASSIFIED:
            assert fresh_a.outcome == VerificationOutcome.MISCLASSIFIED
            assert region_b.contains_point(region_a.center)
        else:
            # Non-certified, non-falsified payloads may only replay for
            # the literal region — which region_b is not.
            pytest.fail(f"unresolved verdict served across buckets: {served}")

    @FUZZ
    @given(
        model=mondeq_models(),
        decimals=st.integers(1, 3),
        query_epsilon=st.sampled_from([0.05, 0.15, 0.3]),
        data=st.data(),
    )
    def test_materialised_collisions_never_serve_unsound_verdicts(
        self, model, decimals, query_epsilon, data
    ):
        """Bucket collisions against *derived* (materialised) LRU entries:
        a derived payload records the dominated query's centre, which is
        not a verified witness, so any MISCLASSIFIED the cache serves a
        colliding query must still trace to the one genuinely falsifying
        point ever admitted."""
        center = data.draw(_unit_centers(model.input_dim))
        target = (int(model.predict(center)) + 1) % model.output_dim
        falsified = BatchedCraft(model, FAST).certify(
            center[None, :], np.array([target]), 1e-4
        )[0]
        assert falsified.outcome == VerificationOutcome.MISCLASSIFIED

        # Q1 contains the witness, so its lookup is served and
        # materialised; Q2 sits a sub-grid jitter away — same buckets,
        # but it need not contain the witness.
        slack = query_epsilon * 0.9
        offset = data.draw(
            arrays(
                np.float64, (model.input_dim,),
                elements=st.floats(-slack, slack, **FINITE),
            )
        )
        query_1 = RegionQuery(
            center=center + offset, epsilon=query_epsilon, target=target
        )
        grid = 10.0 ** (-decimals)
        jitter = data.draw(
            arrays(
                np.float64, (model.input_dim,),
                elements=st.floats(grid * 0.01, grid * 0.4, **FINITE),
            )
        )
        query_2 = RegionQuery(
            center=query_1.center + jitter, epsilon=query_epsilon, target=target
        )

        with tempfile.TemporaryDirectory() as directory:
            cache = TieredVerdictCache(
                directory, FAST, weights_hash(model),
                cache_config=CacheConfig(
                    key_mode="quantized", quantize_decimals=decimals
                ),
            )
            key = cache.admit(
                RegionQuery(center=center, epsilon=1e-4, target=target),
                falsified,
            )
            witness = np.asarray(
                cache.disk.load_payload(key)["center"], dtype=float
            )
            first = cache.lookup(query_1)
            assert first is not None
            assert first.outcome == VerificationOutcome.MISCLASSIFIED
            served = cache.lookup(query_2)

        if served is None:
            # Sound and complete only when the witness really is outside.
            assert not query_2.contains_point(witness)
            return
        assert served.outcome == VerificationOutcome.MISCLASSIFIED
        # Refutation by concrete counterexample, never by a materialised
        # centre: the served verdict implies the admitted witness lies in
        # the query region and the network really mislabels it.
        assert query_2.contains_point(witness)
        assert int(model.predict(witness)) != target


class TestQuantisation:
    def test_on_grid_epsilons_are_fixed_points(self):
        """Grid-resident radii map to themselves in both directions — the
        binary-artefact guard (0.05 * 1000 == 50.000000000000007)."""
        for epsilon in (1e-4, 0.01, 0.05, 0.15, 0.3, 0.123):
            for decimals in (3, 4, 6):
                if round(epsilon * 10**decimals) != epsilon * 10**decimals:
                    floor = quantize_epsilon(epsilon, decimals, "floor")
                    ceil = quantize_epsilon(epsilon, decimals, "ceil")
                    assert floor == pytest.approx(epsilon, abs=10.0**-decimals)
                    assert ceil == pytest.approx(epsilon, abs=10.0**-decimals)
                else:
                    assert quantize_epsilon(epsilon, decimals, "floor") == (
                        quantize_epsilon(epsilon, decimals, "ceil")
                    )

    def test_rounding_directions(self):
        assert quantize_epsilon(0.0503, 2, "floor") == pytest.approx(0.05)
        assert quantize_epsilon(0.0503, 2, "ceil") == pytest.approx(0.06)
        assert quantize_epsilon(0.05, 2, "floor") == pytest.approx(0.05)
        assert quantize_epsilon(0.05, 2, "ceil") == pytest.approx(0.05)
        with pytest.raises(ValueError):
            quantize_epsilon(0.05, 2, "round")

    def test_snap_center_normalises_negative_zero(self):
        snapped = snap_center(np.array([-1e-9, 1e-9, 0.0]), 3)
        assert snapped.tobytes() == np.zeros(3).tobytes()

    @FUZZ
    @given(
        epsilon=st.floats(1e-6, 1.0, **FINITE),
        decimals=st.integers(0, 6),
    )
    def test_floor_below_ceil_brackets_epsilon(self, epsilon, decimals):
        floor = quantize_epsilon(epsilon, decimals, "floor")
        ceil = quantize_epsilon(epsilon, decimals, "ceil")
        tick = 10.0**-decimals
        assert floor <= ceil
        assert epsilon - tick <= floor <= epsilon + 1e-12
        assert epsilon - 1e-12 <= ceil <= epsilon + tick


class TestRegionQuery:
    def test_containment_uses_clipped_bounds(self):
        """Dominance is decided on the region the engine actually
        certifies — the clipped ball, not the raw one."""
        outer = RegionQuery(center=np.array([0.9, 0.5]), epsilon=0.3, target=1)
        inner = RegionQuery(center=np.array([0.95, 0.5]), epsilon=0.2, target=1)
        # Unclipped, inner's upper edge (1.15) exceeds outer's (1.2)? No —
        # but its right edge would poke out without the shared clip at 1.0.
        assert outer.contains(inner)
        unclipped_outer = RegionQuery(
            center=np.array([0.9, 0.5]), epsilon=0.3, target=1,
            clip_min=None, clip_max=None,
        )
        unclipped_inner = RegionQuery(
            center=np.array([0.95, 0.5]), epsilon=0.3, target=1,
            clip_min=None, clip_max=None,
        )
        assert not unclipped_outer.contains(unclipped_inner)

    def test_target_mismatch_never_dominates(self):
        outer = RegionQuery(center=np.zeros(2), epsilon=0.5, target=0)
        inner = RegionQuery(center=np.zeros(2), epsilon=0.1, target=1)
        assert not outer.contains(inner)
        assert not outer.same_region(inner)

    def test_from_ball_mirrors_linf_ball_bounds(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            center = rng.uniform(-0.5, 1.5, size=4)
            epsilon = float(rng.uniform(0.0, 0.6))
            ball = LinfBall(center=center, epsilon=epsilon)
            spec = ClassificationSpec(target=2, num_classes=3)
            query = RegionQuery.from_ball(ball, spec)
            ball_lower, ball_upper = ball.bounds()
            query_lower, query_upper = query.bounds()
            np.testing.assert_array_equal(ball_lower, query_lower)
            np.testing.assert_array_equal(ball_upper, query_upper)
            assert query.target == 2

    def test_same_region_is_bit_exact(self):
        base = RegionQuery(center=np.array([0.25, 0.5]), epsilon=0.1, target=0)
        assert base.same_region(
            RegionQuery(center=np.array([0.25, 0.5]), epsilon=0.1, target=0)
        )
        nudged = RegionQuery(
            center=np.array([0.25 + 1e-16, 0.5]), epsilon=0.1, target=0
        )
        assert base.same_region(nudged) == (
            base.center.tobytes() == nudged.center.tobytes()
        )
        assert not base.same_region(
            RegionQuery(center=np.array([0.25, 0.5]), epsilon=0.1, target=0,
                        clip_max=None)
        )


class TestCacheConfigValidation:
    def test_invalid_fields_raise(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(key_mode="fuzzy")
        with pytest.raises(ConfigurationError):
            CacheConfig(quantize_decimals=-1)
        with pytest.raises(ConfigurationError):
            CacheConfig(quantize_decimals=13)
        with pytest.raises(ConfigurationError):
            CacheConfig(lru_entries=-1)
        with pytest.raises(ConfigurationError):
            CacheConfig(lru_bytes=0)
        with pytest.raises(ConfigurationError):
            CraftConfig(cache={"key_mode": "exact"})

    def test_cache_layout_never_invalidates_entries(self):
        """Key mode, grid, LRU bounds and the dominance switch change how
        verdicts are stored and found — never what they are — so the
        config fingerprint must ignore all of them."""
        base = CraftConfig(slope_optimization="none")
        for cache in (
            CacheConfig(key_mode="quantized", quantize_decimals=2),
            CacheConfig(dominance=False),
            CacheConfig(lru_entries=0),
            CacheConfig(lru_entries=7, lru_bytes=1024),
        ):
            assert config_fingerprint(base) == config_fingerprint(
                base.with_updates(cache=cache)
            )


class TestLRUTier:
    def _payload(self, tag, pad=0):
        return {"outcome": "verified", "tag": tag, "pad": "x" * pad}

    def test_entry_capacity_evicts_least_recent(self):
        tier = LRUTier(max_entries=2, max_bytes=1 << 20)
        tier.put("a", self._payload("a"))
        tier.put("b", self._payload("b"))
        assert tier.get("a") is not None  # refresh a's recency
        tier.put("c", self._payload("c"))
        assert "b" not in tier  # least recent after the refresh
        assert "a" in tier and "c" in tier
        assert tier.evictions == 1

    def test_byte_budget_evicts(self):
        small = self._payload("s")
        budget = payload_bytes(small) * 2 + 1
        tier = LRUTier(max_entries=64, max_bytes=budget)
        tier.put("a", small)
        tier.put("b", self._payload("b"))
        tier.put("c", self._payload("c"))
        assert len(tier) == 2
        assert tier.current_bytes <= budget

    def test_oversized_payload_is_rejected_whole(self):
        tier = LRUTier(max_entries=8, max_bytes=64)
        assert not tier.put("huge", self._payload("huge", pad=4096))
        assert len(tier) == 0
        assert tier.current_bytes == 0

    def test_replacement_updates_byte_accounting(self):
        tier = LRUTier(max_entries=8, max_bytes=1 << 20)
        tier.put("a", self._payload("a"))
        first = tier.current_bytes
        tier.put("a", self._payload("a", pad=100))
        assert len(tier) == 1
        assert tier.current_bytes == first + 100

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            LRUTier(max_entries=0)
        with pytest.raises(ConfigurationError):
            LRUTier(max_bytes=0)


def _store_entry(directory, config, model_digest, query, certified=True,
                 outcome=None, legacy=False, signature=None):
    """Hand-write one cache entry the way the engine would (or, with
    ``legacy=True``, the way a pre-1.5.0 writer did: no region fields, no
    stage/peak_error_terms calibration)."""
    signature = signature if signature is not None else config_fingerprint(config)
    outcome = outcome or ("verified" if certified else "unknown")
    payload = {
        "outcome": outcome,
        "contained": True,
        "certified": certified,
        "margin": 0.5 if certified else float("-inf"),
        "iterations_phase1": 3,
        "iterations_phase2": 2,
        "time_seconds": 0.01,
        "selected_alpha2": None,
        "selected_solver2": None,
        "slope_optimized": False,
        "notes": "",
        "signature": signature,
    }
    if not legacy:
        payload.update(
            stage="chzonotope",
            peak_error_terms=12,
            model_digest=model_digest,
            center=[float(v) for v in query.center],
            epsilon=query.epsilon,
            target=query.target,
            clip_min=query.clip_min,
            clip_max=query.clip_max,
        )
    key = FixpointCache.query_key(
        model_digest, query.center, query.epsilon, query.target, config,
        query.clip_min, query.clip_max,
    )
    with open(os.path.join(directory, f"{key}.json"), "w", encoding="utf-8") as f:
        json.dump(payload, f)
    return key, payload


class TestDominanceIndex:
    def test_refresh_ingests_foreign_writes_incrementally(self, tmp_path):
        """Entries another worker publishes after construction are picked
        up by refresh() without a rebuild; foreign scopes are skipped."""
        config = FAST
        digest = "modelA"
        outer = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.2, target=1)
        _store_entry(str(tmp_path), config, digest, outer)
        index = DominanceIndex(
            str(tmp_path), signature=config_fingerprint(config), model_digest=digest
        )
        assert len(index) == 1

        late = RegionQuery(center=np.array([0.3, 0.3]), epsilon=0.25, target=1)
        _store_entry(str(tmp_path), config, digest, late)
        foreign = RegionQuery(center=np.array([0.7, 0.7]), epsilon=0.25, target=1)
        _store_entry(str(tmp_path), config, "other-model", foreign)
        assert index.refresh() == 1  # the foreign-model entry is skipped
        assert len(index) == 2
        assert index.skipped == 1
        assert index.refresh() == 0  # nothing new: incremental, not a rescan

        inner = RegionQuery(center=np.array([0.3, 0.3]), epsilon=0.1, target=1)
        served = index.query(inner)
        assert served is not None
        assert np.allclose(payload_region(served[1]).center, late.center)

    def test_falsifying_points_win_over_certificates(self, tmp_path):
        """Fail-closed ordering: a region containing a known misclassified
        input is refuted even when a certified entry claims to cover it."""
        config = FAST
        digest = "m"
        big = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.4, target=0)
        _store_entry(str(tmp_path), config, digest, big, certified=True)
        point = RegionQuery(center=np.array([0.52, 0.52]), epsilon=1e-4, target=0)
        _store_entry(
            str(tmp_path), config, digest, point,
            certified=False, outcome="misclassified",
        )
        index = DominanceIndex(
            str(tmp_path), signature=config_fingerprint(config), model_digest=digest
        )
        served = index.query(
            RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.1, target=0)
        )
        assert served is not None
        assert served[1]["outcome"] == "misclassified"

    def test_unresolved_verdicts_are_not_indexed(self, tmp_path):
        config = FAST
        query = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.2, target=1)
        _store_entry(str(tmp_path), config, "m", query, certified=False)
        index = DominanceIndex(
            str(tmp_path), signature=config_fingerprint(config), model_digest="m"
        )
        assert len(index) == 0
        assert index.query(
            RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.1, target=1)
        ) is None


class TestLegacyPayloadFallThrough:
    """Regression for the stale-entry edge: a dominance hit resolved from
    an entry missing the 1.5.0 calibration fields must fall through to a
    miss instead of KeyError-ing in report aggregation."""

    def test_pre_150_payload_is_never_served_by_dominance(self, tmp_path):
        config = FAST
        digest = "legacy-model"
        outer = RegionQuery(center=np.array([0.5, 0.5, 0.5]), epsilon=0.3, target=2)
        key, payload = _store_entry(
            str(tmp_path), config, digest, outer, legacy=True
        )
        assert not payload_supports_dominance(payload)
        assert payload_region(payload) is None

        cache = TieredVerdictCache(str(tmp_path), config, digest)
        inner = RegionQuery(center=np.array([0.5, 0.5, 0.5]), epsilon=0.1, target=2)
        assert cache.lookup(inner) is None  # miss, not KeyError
        assert cache.stats.misses == 1
        assert cache.index.skipped == 1

    def test_legacy_payload_still_replays_verbatim_by_exact_key(self, tmp_path):
        """The pre-1.6 contract survives: an exact-key hit on a legacy
        payload replays fine (the key pins the whole query)."""
        config = FAST
        digest = "legacy-model"
        query = RegionQuery(center=np.array([0.5, 0.5, 0.5]), epsilon=0.3, target=2)
        _store_entry(str(tmp_path), config, digest, query, legacy=True)
        cache = TieredVerdictCache(str(tmp_path), config, digest)
        served = cache.lookup(query)
        assert served is not None
        assert served.certified
        assert served.cache_tier == "disk"
        assert served.stage is None
        assert served.peak_error_terms is None

    def test_region_fields_without_calibration_fall_through(self, tmp_path):
        """A payload with region fields but no stage/peak_error_terms (a
        hand-rolled or truncated entry) is likewise dominance-inert."""
        config = FAST
        digest = "m"
        outer = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.3, target=1)
        key, payload = _store_entry(str(tmp_path), config, digest, outer)
        del payload["stage"], payload["peak_error_terms"]
        with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as handle:
            json.dump(payload, handle)
        assert not payload_supports_dominance(payload)
        cache = TieredVerdictCache(str(tmp_path), config, digest)
        inner = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.1, target=1)
        assert cache.lookup(inner) is None


class TestTieredLookup:
    def test_dominance_answers_are_materialised_into_the_lru(self, tmp_path):
        config = FAST
        digest = "m"
        outer = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.3, target=1)
        _store_entry(str(tmp_path), config, digest, outer)
        cache = TieredVerdictCache(str(tmp_path), config, digest)
        inner = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.1, target=1)

        first = cache.lookup(inner)
        assert first.cache_tier == "dominance"
        assert cache.stats.dominance_hits == 1
        # The replay is O(1) from the LRU — still accounted as dominance
        # (the verdict was never computed for this query), but no second
        # index walk and no disk read.
        second = cache.lookup(inner)
        assert second.cache_tier == "dominance"
        assert cache.stats.dominance_hits == 2
        assert cache.stats.lookups == 2
        assert cache.stats.misses == 0
        assert cache.stats.hit_rate == 1.0
        # Derived payloads never reach disk.
        disk_names = [n for n in os.listdir(str(tmp_path)) if n.endswith(".json")]
        assert len(disk_names) == 1

    def test_disabled_tiers(self, tmp_path):
        config = FAST.with_updates(
            cache=CacheConfig(dominance=False, lru_entries=0)
        )
        digest = "m"
        outer = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.3, target=1)
        _store_entry(str(tmp_path), config, digest, outer)
        cache = TieredVerdictCache(str(tmp_path), config, digest)
        assert cache.lru is None and cache.index is None
        inner = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.1, target=1)
        assert cache.lookup(inner) is None  # no dominance tier: a miss
        assert cache.lookup(outer) is not None  # exact replay still works


class TestMaterialisedEntryCollisions:
    """Regressions for the REVIEW.md unsound-serve finding: a derived
    (materialised) LRU payload carries the dominated query's centre with
    the source's MISCLASSIFIED outcome, so letting it answer a
    bucket-colliding query would report a possibly-robust region as
    falsified by a point that was never a witness."""

    def _falsifying_setup(self, tmp_path):
        config = FAST
        digest = "m"
        # Witness sits just inside Q1's right edge; Q2 shares Q1's
        # quantised bucket (grid 0.01) but excludes the witness.
        witness = RegionQuery(
            center=np.array([0.5499, 0.5]), epsilon=1e-4, target=0
        )
        _store_entry(
            str(tmp_path), config, digest, witness,
            certified=False, outcome="misclassified",
        )
        cache = TieredVerdictCache(
            str(tmp_path), config, digest,
            cache_config=CacheConfig(key_mode="quantized", quantize_decimals=2),
        )
        query_1 = RegionQuery(
            center=np.array([0.503, 0.5]), epsilon=0.05, target=0
        )
        query_2 = RegionQuery(
            center=np.array([0.497, 0.5]), epsilon=0.05, target=0
        )
        assert query_1.contains_point(witness.center)
        assert query_2.contains_point(query_1.center)
        assert not query_2.contains_point(witness.center)
        assert cache.candidate_keys(query_1) == cache.candidate_keys(query_2)
        return cache, witness, query_1, query_2

    def test_derived_entries_answer_only_their_own_query(self, tmp_path):
        cache, witness, query_1, query_2 = self._falsifying_setup(tmp_path)
        first = cache.lookup(query_1)
        assert first is not None
        assert first.outcome == VerificationOutcome.MISCLASSIFIED
        # The serve was materialised under the bucket key Q2 also probes…
        derived = cache.lru.get(cache.candidate_keys(query_2)[0])
        assert derived is not None and derived["derived"]
        # …but Q2 holds no witness, so it must miss, not inherit the
        # MISCLASSIFIED verdict from Q1's recorded centre.
        assert cache.lookup(query_2) is None
        assert cache.stats.misses == 1
        # The derived entry still replays verbatim for Q1 itself.
        again = cache.lookup(query_1)
        assert again is not None
        assert again.outcome == VerificationOutcome.MISCLASSIFIED
        assert again.cache_tier == "dominance"

    def test_failed_lru_payload_falls_through_to_disk_same_key(self, tmp_path):
        """An LRU entry that cannot answer (here: a derived materialised
        payload squatting on the bucket key) must not shadow the on-disk
        entry under the same key."""
        config = FAST
        digest = "m"
        query = RegionQuery(center=np.array([0.5, 0.5]), epsilon=0.2, target=1)
        key, payload = _store_entry(str(tmp_path), config, digest, query)
        cache = TieredVerdictCache(str(tmp_path), config, digest)
        shadow = dict(payload)
        shadow["epsilon"] = 0.05  # a different region: never exact for `query`
        shadow["derived"] = True
        cache.lru.put(cache.candidate_keys(query)[0], shadow)

        served = cache.lookup(query)
        assert served is not None
        assert served.certified
        assert served.cache_tier == "disk"
        assert cache.stats.disk_hits == 1
        assert cache.stats.misses == 0


class TestSchedulerDominanceAccounting:
    def test_children_served_by_dominance_with_stage_attribution(
        self, trained_mondeq, toy_data, tmp_path
    ):
        xs, ys = toy_data
        sel = np.arange(120, 126)
        labels = ys[sel].astype(int)
        config = CraftConfig(slope_optimization="none")
        scheduler = BatchCertificationScheduler(
            trained_mondeq, config, batch_size=4, cache_dir=str(tmp_path)
        )
        parents = scheduler.certify(xs[sel], labels, 0.05)
        assert parents.cache_hits == 0
        certified_parents = sum(r.certified for r in parents.results)
        assert certified_parents > 0  # the trained model certifies these

        children = scheduler.certify(xs[sel], labels, 0.02)
        assert children.cache_dominance_hits >= certified_parents
        assert children.cache_hits >= children.cache_dominance_hits
        served = [r for r in children.results if r.cache_tier == "dominance"]
        assert len(served) == children.cache_dominance_hits
        for result in served:
            # Two serve families: a certified superset parent, or — for
            # the mislabelled samples — the parent's own falsifying point.
            if result.certified:
                assert result.stage is not None
            else:
                assert result.outcome == VerificationOutcome.MISCLASSIFIED
            assert "[dominance" in result.notes
        # Stage rows attribute the saved work to the serving stage (the
        # stageless falsifying serves have no row to land in).
        folded = sum(row["cache_dominance_hits"] for row in children.stages)
        assert folded == sum(r.stage is not None for r in served)
        assert children.as_row()["cache_dominance_hits"] == (
            children.cache_dominance_hits
        )

    def test_sharded_scheduler_counts_dominance_hits(
        self, trained_mondeq, toy_data, tmp_path
    ):
        xs, ys = toy_data
        sel = np.arange(126, 132)
        labels = ys[sel].astype(int)
        config = CraftConfig(slope_optimization="none")
        with ShardedScheduler(
            trained_mondeq, config, num_workers=2, batch_size=3,
            start_method="inline", cache_dir=str(tmp_path),
        ) as scheduler:
            parents = scheduler.certify(xs[sel], labels, 0.05)
            children = scheduler.certify(xs[sel], labels, 0.02)
        certified_parents = sum(r.certified for r in parents.results)
        assert certified_parents > 0
        assert children.cache_dominance_hits >= certified_parents
        served = [r for r in children.results if r.cache_tier == "dominance"]
        folded = sum(row["cache_dominance_hits"] for row in children.stages)
        assert folded == sum(r.stage is not None for r in served)
